"""Unit tests for temporal down-sampling (Section V, Figures 2-3)."""

import numpy as np
import pytest

from repro.algorithms.sampling import (
    SamplingTechnique,
    run_sampling_job,
    sample_array,
    sample_dataset,
    sample_trail,
)
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


def _array(timestamps, user="u", lat=None):
    ts = np.asarray(timestamps, dtype=float)
    lat = np.asarray(lat, dtype=float) if lat is not None else np.zeros(len(ts))
    return TraceArray.from_columns([user], lat, np.zeros(len(ts)), ts)


class TestTechniqueParsing:
    def test_parse_strings(self):
        assert SamplingTechnique.parse("upper") is SamplingTechnique.UPPER
        assert SamplingTechnique.parse(" MIDDLE ") is SamplingTechnique.MIDDLE
        assert SamplingTechnique.parse(SamplingTechnique.UPPER) is SamplingTechnique.UPPER

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown sampling technique"):
            SamplingTechnique.parse("median")


class TestSampleArray:
    def test_one_representative_per_window(self):
        arr = _array([1, 5, 20, 61, 62, 125])
        out = sample_array(arr, 60.0)
        # Windows [0,60), [60,120), [120,180) -> 3 representatives.
        assert len(out) == 3

    def test_upper_takes_closest_to_window_end(self):
        # Window [0, 60): reference 60 -> 59 wins over 1 and 30 (Fig. 2).
        arr = _array([1, 30, 59])
        out = sample_array(arr, 60.0, "upper")
        assert list(out.timestamp) == [59.0]

    def test_middle_takes_closest_to_window_center(self):
        # Window [0, 60): reference 30 -> 28 wins (Fig. 3).
        arr = _array([1, 28, 59])
        out = sample_array(arr, 60.0, "middle")
        assert list(out.timestamp) == [28.0]

    def test_techniques_differ_on_same_input(self):
        arr = _array([1, 28, 59])
        upper = sample_array(arr, 60.0, "upper")
        middle = sample_array(arr, 60.0, "middle")
        assert list(upper.timestamp) != list(middle.timestamp)

    def test_windows_are_per_user(self):
        arr = TraceArray.from_columns(
            ["a", "a", "b", "b"],
            np.zeros(4),
            np.zeros(4),
            np.array([1.0, 59.0, 2.0, 58.0]),
        )
        out = sample_array(arr, 60.0)
        assert len(out) == 2  # one per user in the same window
        assert sorted(out.user_ids()) == ["a", "b"]

    def test_empty_array(self):
        out = sample_array(TraceArray.empty(), 60.0)
        assert len(out) == 0

    def test_single_trace(self):
        out = sample_array(_array([42.0]), 60.0)
        assert len(out) == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            sample_array(_array([1.0]), 0.0)

    def test_representative_is_original_trace(self):
        arr = _array([3, 17, 42], lat=[1.0, 2.0, 3.0])
        out = sample_array(arr, 60.0)
        # Whatever wins must be one of the input traces, not an average.
        assert out.latitude[0] in (1.0, 2.0, 3.0)

    def test_larger_window_fewer_traces(self, small_array):
        n60 = len(sample_array(small_array, 60.0))
        n300 = len(sample_array(small_array, 300.0))
        n600 = len(sample_array(small_array, 600.0))
        assert n60 > n300 > n600

    def test_dense_data_reduces_drastically(self, small_array):
        """Table I's qualitative claim: 1-minute sampling on 1-5 s logs
        shrinks the dataset by an order of magnitude."""
        out = sample_array(small_array, 60.0)
        assert len(out) < len(small_array) / 10

    def test_idempotent_at_same_window(self):
        arr = _array(np.arange(0, 600, 2.0))
        once = sample_array(arr, 60.0)
        twice = sample_array(once, 60.0)
        assert len(once) == len(twice)
        assert np.array_equal(once.timestamp, twice.timestamp)


class TestTrailAndDataset:
    def test_sample_trail_keeps_user(self):
        trail = Trail("alice", _array([1, 30, 61], user="alice"))
        out = sample_trail(trail, 60.0)
        assert out.user_id == "alice"
        assert len(out) == 2

    def test_sample_dataset_all_users(self):
        ds = GeolocatedDataset(
            [
                Trail("a", _array([1, 5, 70], user="a")),
                Trail("b", _array([2, 80], user="b")),
            ]
        )
        out = sample_dataset(ds, 60.0)
        assert out.user_ids == ["a", "b"]
        assert len(out) == 4


class TestMapReduceJob:
    def test_mr_equals_sequential_on_single_chunk(self, small_array, runner):
        hdfs = runner.hdfs
        # One chunk per the whole dataset: no window-boundary artifacts.
        hdfs.chunk_size = 64 * len(small_array) + 64
        hdfs.put_trace_array("traces", small_array)
        run_sampling_job(runner, "traces", "out", 60.0, "upper")
        mr = hdfs.read_trace_array("out").sort_by_time()
        seq = sample_array(small_array, 60.0, "upper").sort_by_time()
        assert len(mr) == len(seq)
        assert np.allclose(mr.timestamp, seq.timestamp)
        assert np.allclose(mr.latitude, seq.latitude)

    def test_chunk_boundary_artifact_bounded(self, small_array, runner):
        """Multi-chunk sampling may emit at most one extra representative
        per (chunk boundary, user)."""
        hdfs = runner.hdfs
        hdfs.chunk_size = 64 * 1000  # ~1000 traces per chunk
        hdfs.put_trace_array("traces", small_array)
        n_chunks = len(hdfs.chunks("traces"))
        run_sampling_job(runner, "traces", "out", 60.0)
        mr = hdfs.read_trace_array("out")
        seq = sample_array(small_array, 60.0)
        assert len(seq) <= len(mr) <= len(seq) + n_chunks

    def test_job_parameters_validated(self, runner):
        runner.hdfs.put_records("traces", [(0, 0)])
        with pytest.raises(ValueError):
            run_sampling_job(runner, "traces", "out", -5.0)
        with pytest.raises(ValueError):
            run_sampling_job(runner, "traces", "out", 60.0, technique="mean")

    def test_counters_reflect_reduction(self, small_array, runner):
        hdfs = runner.hdfs
        hdfs.chunk_size = 64 * 2000
        hdfs.put_trace_array("traces", small_array)
        res = run_sampling_job(runner, "traces", "out", 300.0)
        from repro.mapreduce.counters import STANDARD

        read = res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS)
        written = res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS)
        assert read == len(small_array)
        assert written == hdfs.file_records("out")
        assert written < read / 10
