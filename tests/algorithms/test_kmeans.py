"""Unit tests for k-means (Section VI, Figure 4, Tables II-III)."""

import numpy as np
import pytest

from repro.algorithms.kmeans import (
    assign_points,
    kmeans_sequential,
    run_kmeans_mapreduce,
)
from repro.geo.trace import TraceArray


def three_blobs(n_per=100, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[39.90, 116.40], [39.95, 116.50], [39.85, 116.30]])
    pts = np.vstack(
        [c + rng.normal(0, 0.004, (n_per, 2)) for c in centers]
    )
    return pts, centers


class TestAssign:
    def test_assigns_to_nearest(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts = np.array([[1.0, 1.0], [9.0, 9.0]])
        assert list(assign_points(pts, centroids, "squared_euclidean")) == [0, 1]

    def test_tie_breaks_to_lowest_index(self):
        centroids = np.array([[0.0, 0.0], [2.0, 0.0]])
        pts = np.array([[1.0, 0.0]])
        assert assign_points(pts, centroids, "euclidean")[0] == 0

    def test_haversine_and_euclidean_can_agree_on_blobs(self):
        pts, centers = three_blobs()
        a = assign_points(pts, centers, "haversine")
        b = assign_points(pts, centers, "squared_euclidean")
        # Tight, well-separated blobs: both metrics give the same answer.
        assert np.array_equal(a, b)


class TestSequential:
    def test_recovers_blob_centers(self):
        pts, centers = three_blobs()
        res = kmeans_sequential(pts, 3, seed=7, max_iter=100)
        assert res.converged
        # Each true centre has a recovered centroid within ~0.002 degrees.
        d = np.abs(res.centroids[:, None, :] - centers[None, :, :]).sum(axis=2)
        assert d.min(axis=0).max() < 0.002

    def test_respects_max_iter(self):
        pts, _ = three_blobs()
        res = kmeans_sequential(pts, 3, seed=1, max_iter=2, convergence_delta=0.0)
        assert res.n_iterations <= 2

    def test_convergence_delta_zero_runs_until_stable(self):
        pts, _ = three_blobs(n_per=50)
        res = kmeans_sequential(pts, 3, seed=3, convergence_delta=0.0, max_iter=300)
        assert res.converged

    def test_initial_centroids_respected(self):
        pts, centers = three_blobs()
        res = kmeans_sequential(pts, 3, initial_centroids=centers, max_iter=50)
        assert res.converged
        assert res.n_iterations < 10  # warm start converges fast

    def test_k_larger_than_points_rejected(self):
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros((2, 2)), 5)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros(10), 2)
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros((10, 2)), 2, initial_centroids=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            kmeans_sequential(np.zeros((10, 2)), 2, max_iter=0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            kmeans_sequential(np.zeros((10, 2)), 2, metric="cosine")

    def test_empty_cluster_keeps_centroid(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0]])
        far = np.array([[0.0, 0.0], [50.0, 50.0]])
        res = kmeans_sequential(pts, 2, initial_centroids=far, max_iter=5)
        # The far centroid attracts nothing and must survive unchanged.
        assert np.allclose(res.centroids[1], [50.0, 50.0])

    def test_inertia_decreases_with_more_clusters(self):
        pts, _ = three_blobs()
        r1 = kmeans_sequential(pts, 1, seed=0)
        r3 = kmeans_sequential(pts, 3, seed=0)
        assert r3.inertia < r1.inertia

    def test_deterministic_given_seed(self):
        pts, _ = three_blobs()
        a = kmeans_sequential(pts, 3, seed=5)
        b = kmeans_sequential(pts, 3, seed=5)
        assert np.array_equal(a.centroids, b.centroids)


class TestKMeansPlusPlus:
    def test_deterministic_and_valid(self):
        pts, _ = three_blobs()
        a = kmeans_sequential(pts, 3, seed=5, init="kmeans++")
        b = kmeans_sequential(pts, 3, seed=5, init="kmeans++")
        assert np.array_equal(a.centroids, b.centroids)
        assert a.converged

    def test_seeds_spread_across_blobs(self):
        from repro.algorithms.kmeans import _init_centroids, assign_points

        pts, centers = three_blobs(n_per=200, seed=1)
        # With k=3 on three well-separated blobs, D^2-seeding lands one
        # seed per blob in the vast majority of draws.
        hits = 0
        for seed in range(20):
            init = _init_centroids(pts, 3, seed, "kmeans++")
            blob_of_seed = assign_points(init, centers, "squared_euclidean")
            hits += len(set(blob_of_seed.tolist())) == 3
        assert hits >= 16

    def test_no_worse_than_random_on_average(self):
        pts, _ = three_blobs(n_per=100, seed=2)
        rand = np.mean(
            [kmeans_sequential(pts, 3, seed=s, max_iter=30).inertia for s in range(12)]
        )
        pp = np.mean(
            [
                kmeans_sequential(pts, 3, seed=s, max_iter=30, init="kmeans++").inertia
                for s in range(12)
            ]
        )
        assert pp <= rand * 1.05

    def test_degenerate_duplicate_points(self):
        pts = np.zeros((10, 2))
        res = kmeans_sequential(pts, 3, seed=0, init="kmeans++", max_iter=5)
        assert res.centroids.shape == (3, 2)

    def test_unknown_init_rejected(self):
        pts, _ = three_blobs()
        with pytest.raises(ValueError, match="unknown init"):
            kmeans_sequential(pts, 3, init="farthest")

    def test_mr_driver_accepts_init(self, kmeans_env):
        runner, pts, _ = kmeans_env
        res = run_kmeans_mapreduce(
            runner, "traces", 3, seed=7, init="kmeans++", max_iter=5, workdir="w/pp"
        )
        assert res.centroids.shape == (3, 2)


@pytest.fixture()
def kmeans_env(runner):
    pts, centers = three_blobs(n_per=200, seed=4)
    arr = TraceArray.from_columns(
        ["u"], pts[:, 0], pts[:, 1], np.arange(len(pts), dtype=float)
    )
    runner.hdfs.chunk_size = 64 * 150  # 4 chunks
    runner.hdfs.put_trace_array("traces", arr)
    return runner, pts, centers


class TestMapReduce:
    def test_matches_sequential_exactly(self, kmeans_env):
        runner, pts, centers = kmeans_env
        init = pts[[0, 200, 400]]
        seq = kmeans_sequential(
            pts, 3, "squared_euclidean", 1e-12, 50, initial_centroids=init
        )
        mr = run_kmeans_mapreduce(
            runner, "traces", 3, "squared_euclidean", 1e-12, 50, initial_centroids=init
        )
        assert mr.converged == seq.converged
        assert mr.n_iterations == seq.n_iterations
        assert np.abs(mr.centroids - seq.centroids).max() < 1e-9

    def test_combiner_preserves_centroids(self, kmeans_env):
        runner, pts, _ = kmeans_env
        init = pts[[0, 200, 400]]
        plain = run_kmeans_mapreduce(
            runner, "traces", 3, initial_centroids=init, workdir="w/plain"
        )
        combined = run_kmeans_mapreduce(
            runner, "traces", 3, initial_centroids=init, use_combiner=True, workdir="w/comb"
        )
        assert np.abs(plain.centroids - combined.centroids).max() < 1e-9

    def test_combiner_shrinks_shuffle(self, kmeans_env):
        runner, pts, _ = kmeans_env
        init = pts[[0, 200, 400]]
        plain = run_kmeans_mapreduce(
            runner, "traces", 3, initial_centroids=init, max_iter=1, workdir="w/p"
        )
        combined = run_kmeans_mapreduce(
            runner, "traces", 3, initial_centroids=init, max_iter=1,
            use_combiner=True, workdir="w/c",
        )
        assert combined.history[0].shuffle_bytes < plain.history[0].shuffle_bytes / 10

    def test_iteration_history_recorded(self, kmeans_env):
        runner, pts, _ = kmeans_env
        res = run_kmeans_mapreduce(
            runner, "traces", 3, seed=2, max_iter=5, convergence_delta=0.0, workdir="w/h"
        )
        assert len(res.history) == res.n_iterations
        for i, stats in enumerate(res.history, start=1):
            assert stats.iteration == i
            assert stats.sim_seconds > 0
            assert stats.map_tasks == 4
        assert res.total_sim_seconds == pytest.approx(
            sum(s.sim_seconds for s in res.history)
        )

    def test_clusters_files_written_per_iteration(self, kmeans_env):
        """Figure 4's workflow: each iteration writes a clusters-i dir."""
        runner, pts, _ = kmeans_env
        res = run_kmeans_mapreduce(
            runner, "traces", 3, seed=2, max_iter=4, convergence_delta=0.0, workdir="w/f"
        )
        for i in range(1, res.n_iterations + 1):
            assert runner.hdfs.exists(f"w/f/clusters-{i}")
        records = runner.hdfs.read_records(f"w/f/clusters-{res.n_iterations}")
        assert {int(k) for k, _ in records} <= {0, 1, 2}
        for _, (lat, lon, count) in records:
            assert count > 0

    def test_haversine_iteration_costs_more_sim_time(self, kmeans_env):
        """Table III's metric effect, reproduced via the cost model."""
        runner, pts, _ = kmeans_env
        init = pts[[0, 200, 400]]
        sq = run_kmeans_mapreduce(
            runner, "traces", 3, "squared_euclidean", initial_centroids=init,
            max_iter=1, workdir="w/sq",
        )
        hv = run_kmeans_mapreduce(
            runner, "traces", 3, "haversine", initial_centroids=init,
            max_iter=1, workdir="w/hv",
        )
        assert hv.history[0].sim_seconds > sq.history[0].sim_seconds

    def test_unknown_distance_rejected(self, kmeans_env):
        runner, _, _ = kmeans_env
        with pytest.raises(KeyError):
            run_kmeans_mapreduce(runner, "traces", 3, distance="cosine")
