"""Unit tests for DJ-Cluster (Section VII, Figure 5, Table IV)."""

import numpy as np
import pytest

from repro.algorithms.djcluster import (
    DJClusterParams,
    djcluster_sequential,
    filter_moving_traces,
    preprocess_array,
    remove_redundant_traces,
    run_djcluster_mapreduce,
    run_preprocessing_pipeline,
    trace_speeds,
    _merge_neighborhoods,
    _UnionFind,
)
from repro.geo.trace import TraceArray


def _array(lat, lon, ts, user="u"):
    return TraceArray.from_columns(
        [user], np.asarray(lat, float), np.asarray(lon, float), np.asarray(ts, float)
    )


def _cluster_blob(center_lat, center_lon, n, t0, rng, jitter=2e-5):
    return (
        center_lat + rng.normal(0, jitter, n),
        center_lon + rng.normal(0, jitter, n),
        t0 + np.arange(n) * 60.0,
    )


class TestParams:
    def test_defaults_match_paper_epsilon(self):
        p = DJClusterParams()
        # 0.2 m/s == 0.72 km/h, the threshold quoted in Section VII-A.
        assert p.speed_threshold_ms == pytest.approx(0.2)
        assert p.speed_threshold_ms * 3.6 == pytest.approx(0.72)

    def test_validation(self):
        with pytest.raises(ValueError):
            DJClusterParams(radius_m=0)
        with pytest.raises(ValueError):
            DJClusterParams(min_pts=0)
        with pytest.raises(ValueError):
            DJClusterParams(speed_threshold_ms=-1)
        with pytest.raises(ValueError):
            DJClusterParams(dedup_tolerance_m=-1)


class TestSpeeds:
    def test_stationary_traces_have_low_speed(self):
        # Same point logged each minute: only jitterless zero movement.
        arr = _array([39.9] * 5, [116.4] * 5, np.arange(5) * 60.0)
        speeds = trace_speeds(arr)
        assert np.all(speeds == 0.0)

    def test_moving_trace_speed_estimate(self):
        # ~111 m per minute northward ~ 1.85 m/s.
        lat = 39.9 + np.arange(5) * 0.001
        arr = _array(lat, [116.4] * 5, np.arange(5) * 60.0)
        speeds = trace_speeds(arr)
        assert np.all(speeds[1:-1] > 1.5)
        # Interior speeds use the (prev, next) window.
        assert speeds[2] == pytest.approx(111.19 * 2 / 120.0, rel=0.01)

    def test_endpoints_use_one_sided_window(self):
        lat = 39.9 + np.arange(3) * 0.001
        arr = _array(lat, [116.4] * 3, np.arange(3) * 60.0)
        speeds = trace_speeds(arr)
        assert speeds[0] > 0 and speeds[-1] > 0

    def test_per_user_boundaries_respected(self):
        # Two users far apart; the user boundary must not create a
        # phantom "jump" speed.
        arr = TraceArray.from_columns(
            ["a", "a", "b", "b"],
            np.array([39.9, 39.9, 45.0, 45.0]),
            np.array([116.4, 116.4, 10.0, 10.0]),
            np.array([0.0, 60.0, 0.0, 60.0]),
        )
        speeds = trace_speeds(arr.sort_by_time())
        assert np.all(speeds == 0.0)

    def test_single_trace_is_stationary(self):
        arr = _array([39.9], [116.4], [0.0])
        assert trace_speeds(arr)[0] == 0.0

    def test_empty(self):
        assert len(trace_speeds(TraceArray.empty())) == 0


class TestSpeedFilter:
    def test_keeps_stationary_drops_moving(self):
        rng = np.random.default_rng(0)
        dwell = _cluster_blob(39.9, 116.4, 10, 0.0, rng)
        move_lat = 39.9 + 0.001 + np.arange(5) * 0.002  # fast movement
        arr = _array(
            np.concatenate([dwell[0], move_lat]),
            np.concatenate([dwell[1], np.full(5, 116.4)]),
            np.concatenate([dwell[2], 600.0 + np.arange(5) * 60.0]),
        )
        kept = filter_moving_traces(arr, 0.2)
        assert 8 <= len(kept) <= 12  # the dwell survives, the trip mostly not

    def test_threshold_zero_keeps_only_exact_repeats(self):
        arr = _array([39.9, 39.9, 39.9001], [116.4] * 3, [0.0, 60.0, 120.0])
        kept = filter_moving_traces(arr, 0.0)
        assert len(kept) < 3


class TestDedup:
    def test_collapses_redundant_run_to_first(self):
        arr = _array([39.9, 39.9, 39.9, 39.95], [116.4] * 4, [0, 60, 120, 180])
        out = remove_redundant_traces(arr, tolerance_m=2.0)
        assert len(out) == 2
        assert list(out.timestamp) == [0.0, 180.0]

    def test_tolerance_controls_aggressiveness(self):
        lat = 39.9 + np.arange(5) * 1e-5  # ~1.1 m steps
        arr = _array(lat, [116.4] * 5, np.arange(5) * 60.0)
        assert len(remove_redundant_traces(arr, 0.5)) == 5
        assert len(remove_redundant_traces(arr, 2.0)) == 1

    def test_different_users_never_merged(self):
        arr = TraceArray.from_columns(
            ["a", "b"], np.array([39.9, 39.9]), np.array([116.4, 116.4]),
            np.array([0.0, 1.0]),
        )
        assert len(remove_redundant_traces(arr, 10.0)) == 2

    def test_short_arrays(self):
        assert len(remove_redundant_traces(TraceArray.empty(), 1.0)) == 0
        one = _array([39.9], [116.4], [0.0])
        assert len(remove_redundant_traces(one, 1.0)) == 1


class TestPreprocessTableIVShape:
    def test_both_stage_counts_reported(self, small_array):
        from repro.algorithms.sampling import sample_array

        sampled = sample_array(small_array, 60.0)
        params = DJClusterParams()
        stationary, deduped = preprocess_array(sampled, params)
        # Table IV shape: the speed filter removes a large moving share;
        # dedup shaves a much smaller extra slice.
        assert 0.3 < len(stationary) / len(sampled) < 0.9
        assert len(deduped) <= len(stationary)
        removed_by_filter = len(sampled) - len(stationary)
        removed_by_dedup = len(stationary) - len(deduped)
        assert removed_by_filter > removed_by_dedup


class TestUnionFind:
    def test_components(self):
        uf = _UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(10, 11)
        uf.find(99)
        comps = {frozenset(c.tolist()) for c in uf.components()}
        assert comps == {frozenset({1, 2, 3}), frozenset({10, 11}), frozenset({99})}

    def test_merge_neighborhoods_joinable(self):
        hoods = [np.array([1, 2, 3]), np.array([3, 4]), np.array([10, 11])]
        clusters = _merge_neighborhoods(hoods)
        sigs = {frozenset(c.tolist()) for c in clusters}
        assert sigs == {frozenset({1, 2, 3, 4}), frozenset({10, 11})}

    def test_merge_empty(self):
        assert _merge_neighborhoods([]) == []
        assert _merge_neighborhoods([np.array([], dtype=np.int64)]) == []


class TestSequentialClustering:
    def _two_poi_array(self, n=40, seed=1):
        rng = np.random.default_rng(seed)
        a = _cluster_blob(39.90, 116.40, n, 0.0, rng)
        b = _cluster_blob(39.95, 116.50, n, 1e5, rng)
        noise_lat = np.array([39.80])  # isolated point
        return _array(
            np.concatenate([a[0], b[0], noise_lat]),
            np.concatenate([a[1], b[1], [116.2]]),
            np.concatenate([a[2], b[2], [2e5]]),
        )

    def test_finds_two_clusters_and_noise(self):
        arr = self._two_poi_array()
        params = DJClusterParams(radius_m=50, min_pts=5)
        res = djcluster_sequential(arr, params, preprocess=False)
        assert res.n_clusters == 2
        assert len(res.noise_ids) == 1
        assert set(res.labels.tolist()) == {-1, 0, 1}

    def test_clusters_non_overlapping_and_min_size(self):
        arr = self._two_poi_array()
        params = DJClusterParams(radius_m=50, min_pts=5)
        res = djcluster_sequential(arr, params, preprocess=False)
        seen = set()
        for ids in res.clusters:
            assert len(ids) >= params.min_pts
            as_set = set(ids.tolist())
            assert not (seen & as_set)
            seen |= as_set

    def test_every_trace_clustered_or_noise(self):
        arr = self._two_poi_array()
        res = djcluster_sequential(arr, DJClusterParams(radius_m=50, min_pts=5), preprocess=False)
        clustered = {int(i) for ids in res.clusters for i in ids}
        noise = set(res.noise_ids.tolist())
        assert clustered | noise == set(range(len(res.preprocessed)))
        assert not clustered & noise

    def test_min_pts_sensitivity(self):
        arr = self._two_poi_array(n=8)
        loose = djcluster_sequential(arr, DJClusterParams(radius_m=50, min_pts=3), preprocess=False)
        strict = djcluster_sequential(arr, DJClusterParams(radius_m=50, min_pts=50), preprocess=False)
        assert loose.n_clusters == 2
        assert strict.n_clusters == 0

    def test_centroids_near_blob_centers(self):
        arr = self._two_poi_array()
        res = djcluster_sequential(arr, DJClusterParams(radius_m=50, min_pts=5), preprocess=False)
        cents = res.cluster_centroids()
        want = np.array([[39.90, 116.40], [39.95, 116.50]])
        d = np.abs(cents[:, None, :] - want[None, :, :]).sum(axis=2)
        assert d.min(axis=1).max() < 1e-3

    def test_empty_input(self):
        res = djcluster_sequential(TraceArray.empty())
        assert res.n_clusters == 0
        assert len(res.noise_ids) == 0

    def test_selfjoin_and_rtree_paths_identical(self):
        arr = self._two_poi_array()
        params = DJClusterParams(radius_m=50, min_pts=5)
        fast = djcluster_sequential(arr, params, preprocess=False)
        paper = djcluster_sequential(arr, params, preprocess=False, use_rtree=True)
        assert fast.cluster_signature() == paper.cluster_signature()
        assert np.array_equal(fast.noise_ids, paper.noise_ids)


class TestMapReduceClustering:
    def test_pipeline_stages_chain(self, small_array, runner):
        from repro.algorithms.sampling import sample_array

        sampled = sample_array(small_array, 60.0)
        runner.hdfs.chunk_size = 64 * 400
        runner.hdfs.put_trace_array("sampled", sampled)
        params = DJClusterParams()
        result = run_preprocessing_pipeline(runner, "sampled", params, workdir="w/pre")
        assert [s.job_name for s in result.stages] == [
            "dj-filter-moving",
            "dj-remove-duplicates",
        ]
        n_stage1 = runner.hdfs.file_records("w/pre/stationary")
        n_stage2 = runner.hdfs.file_records("w/pre/preprocessed")
        assert n_stage2 <= n_stage1 <= len(sampled)

    def test_mr_equals_sequential_single_chunk(self, small_array, runner):
        from repro.algorithms.sampling import sample_array

        sampled = sample_array(small_array, 300.0)
        runner.hdfs.chunk_size = 64 * (len(sampled) + 1)
        runner.hdfs.put_trace_array("sampled", sampled)
        params = DJClusterParams(radius_m=80, min_pts=5)
        seq = djcluster_sequential(sampled, params)
        mr = run_djcluster_mapreduce(runner, "sampled", params, workdir="w/dj")
        assert mr.cluster_signature() == seq.cluster_signature()
        assert set(mr.noise_ids.tolist()) == set(seq.noise_ids.tolist())

    def test_stage_timings_reported(self, small_array, runner):
        from repro.algorithms.sampling import sample_array

        sampled = sample_array(small_array, 300.0)
        runner.hdfs.chunk_size = 64 * 500
        runner.hdfs.put_trace_array("sampled", sampled)
        mr = run_djcluster_mapreduce(
            runner, "sampled", DJClusterParams(radius_m=80, min_pts=5), workdir="w/t"
        )
        assert set(mr.stage_sim_seconds) == {
            "preprocessing",
            "rtree_build",
            "neighborhood_merge",
        }
        assert mr.sim_seconds == pytest.approx(sum(mr.stage_sim_seconds.values()))

    def test_noise_counter_incremented(self, small_array, runner):
        from repro.algorithms.sampling import sample_array

        sampled = sample_array(small_array, 300.0)
        runner.hdfs.chunk_size = 64 * (len(sampled) + 1)
        runner.hdfs.put_trace_array("sampled", sampled)
        params = DJClusterParams(radius_m=30, min_pts=20)  # strict: most is noise
        mr = run_djcluster_mapreduce(runner, "sampled", params, workdir="w/n")
        assert len(mr.noise_ids) > 0
