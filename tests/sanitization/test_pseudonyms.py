"""Unit tests for pseudonymization."""

import numpy as np

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization.pseudonyms import ANONYMOUS_ID, Pseudonymizer


def _ds(users=("alice", "bob")):
    trails = []
    for i, user in enumerate(users):
        trails.append(
            Trail(
                user,
                TraceArray.from_columns(
                    [user],
                    np.full(5, 39.9 + i * 0.01),
                    np.full(5, 116.4),
                    np.arange(5.0),
                ),
            )
        )
    return GeolocatedDataset(trails)


class TestPseudonymizer:
    def test_identities_replaced_but_linkable(self):
        ds = _ds()
        out = Pseudonymizer(seed=1).sanitize_dataset(ds)
        assert out.num_users() == 2
        assert not set(out.user_ids) & {"alice", "bob"}
        # Within-release linkability: each pseudonym still owns a full trail.
        for user in out.user_ids:
            assert len(out.trail(user)) == 5

    def test_deterministic_and_seed_sensitive(self):
        p1 = Pseudonymizer(seed=1)
        p2 = Pseudonymizer(seed=2)
        assert p1.pseudonym_for("alice") == p1.pseudonym_for("alice")
        assert p1.pseudonym_for("alice") != p1.pseudonym_for("bob")
        assert p1.pseudonym_for("alice") != p2.pseudonym_for("alice")

    def test_coordinates_untouched(self):
        ds = _ds()
        out = Pseudonymizer(seed=3).sanitize_dataset(ds)
        assert len(out.flat()) == len(ds.flat())
        assert np.allclose(
            np.sort(out.flat().latitude), np.sort(ds.flat().latitude)
        )

    def test_anonymous_mode_merges_everyone(self):
        ds = _ds()
        out = Pseudonymizer(anonymous=True).sanitize_dataset(ds)
        assert out.user_ids == [ANONYMOUS_ID]
        assert len(out.flat()) == 10

    def test_chunk_invariant(self):
        arr = _ds().flat()
        p = Pseudonymizer(seed=5)
        whole = p.sanitize_array(arr)
        parts = [p.sanitize_array(arr[:4]), p.sanitize_array(arr[4:])]
        recombined = list(parts[0].user_ids()) + list(parts[1].user_ids())
        assert list(whole.user_ids()) == recombined

    def test_defeated_by_fingerprinting(self, small_corpus):
        """The paper's core claim: pseudonymization alone does not stop
        the linking attack."""
        from repro.algorithms.djcluster import DJClusterParams
        from repro.algorithms.sampling import sample_dataset
        from repro.attacks.deanonymization import deanonymization_attack

        dataset, _ = small_corpus
        sampled = sample_dataset(dataset, 60.0)
        pseudonymizer = Pseudonymizer(seed=9)
        released = pseudonymizer.sanitize_dataset(sampled)
        truth = {
            pseudonymizer.pseudonym_for(u): u for u in sampled.user_ids
        }
        result = deanonymization_attack(
            sampled, released, truth, DJClusterParams(radius_m=80, min_pts=5)
        )
        assert result.success_rate == 1.0
