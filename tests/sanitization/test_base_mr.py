"""Tests for the generic MapReduce sanitization job."""

import numpy as np
import pytest

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.sanitization import (
    GaussianMask,
    Pseudonymizer,
    RoundingMask,
    SpatialCloaking,
)
from repro.sanitization.base import run_sanitization_job


def _array(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return TraceArray.from_columns(
        ["u"],
        39.9 + rng.normal(0, 0.01, n),
        116.4 + rng.normal(0, 0.01, n),
        np.sort(rng.uniform(0, 1e5, n)),
    )


@pytest.fixture()
def env():
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 100, seed=0)
    hdfs.put_trace_array("in", _array())
    return hdfs, JobRunner(hdfs)


class TestSanitizationJob:
    @pytest.mark.parametrize(
        "sanitizer",
        [GaussianMask(120.0, seed=2), RoundingMask(300.0), Pseudonymizer(seed=4)],
    )
    def test_mr_equals_sequential(self, env, sanitizer):
        """Chunk-local sanitizers: MapReduce output == sequential output,
        regardless of chunking (the chunk-invariance contract)."""
        hdfs, runner = env
        arr = hdfs.read_trace_array("in")
        assert len(hdfs.chunks("in")) > 1
        run_sanitization_job(runner, sanitizer, "in", "out")
        mr = hdfs.read_trace_array("out").sort_by_time()
        seq = sanitizer.sanitize_array(arr).sort_by_time()
        assert len(mr) == len(seq)
        assert np.allclose(mr.latitude, seq.latitude)
        assert np.allclose(mr.longitude, seq.longitude)

    def test_non_chunk_local_mechanism_rejected(self, env):
        hdfs, runner = env
        with pytest.raises(ValueError, match="not chunk-local"):
            run_sanitization_job(runner, SpatialCloaking(k=2), "in", "out")
        # Hadoop semantics: the failed job must not leave output behind.
        assert not hdfs.exists("out")

    def test_job_records_counters(self, env):
        from repro.mapreduce.counters import STANDARD

        hdfs, runner = env
        res = run_sanitization_job(runner, GaussianMask(50.0), "in", "out")
        read = res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS)
        written = res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS)
        assert read == written == 400
