"""Unit tests for mix zones."""

import numpy as np
import pytest

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization.mixzones import MixZone, MixZoneSanitizer


ZONE = MixZone(latitude=39.92, longitude=116.45, radius_m=500.0)


def _commuter(user="u", reps=2):
    """A trail crossing the zone `reps` times: A -> zone -> B -> zone -> A..."""
    lat, lon, ts = [], [], []
    t = 0.0
    waypoints = []
    for _ in range(reps):
        waypoints += [(39.90, 116.40), (39.92, 116.45), (39.94, 116.50)]
    for wlat, wlon in waypoints:
        for _ in range(5):
            lat.append(wlat)
            lon.append(wlon)
            ts.append(t)
            t += 60.0
    return Trail(user, TraceArray.from_columns([user], np.array(lat), np.array(lon), np.array(ts)))


class TestMixZone:
    def test_contains(self):
        inside = ZONE.contains(np.array([39.92]), np.array([116.45]))
        outside = ZONE.contains(np.array([39.90]), np.array([116.40]))
        assert inside[0] and not outside[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            MixZone(0.0, 0.0, 0.0)


class TestSanitizer:
    def test_in_zone_traces_suppressed(self):
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(GeolocatedDataset([_commuter()]))
        flat = out.flat()
        assert not ZONE.contains(flat.latitude, flat.longitude).any()

    def test_pseudonym_changes_across_zone(self):
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(GeolocatedDataset([_commuter(reps=2)]))
        # 2 round trips x 2 crossings -> >= 3 segments -> >= 3 pseudonyms.
        assert out.num_users() >= 3
        assert all(u.startswith("pseud-") for u in out.user_ids)

    def test_segments_are_time_contiguous(self):
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(GeolocatedDataset([_commuter()]))
        spans = sorted(
            (t.traces.timestamp.min(), t.traces.timestamp.max()) for t in out.trails()
        )
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi < b_lo  # no pseudonym straddles a zone visit

    def test_no_zone_crossing_keeps_single_pseudonym(self):
        trail = Trail(
            "u",
            TraceArray.from_columns(
                ["u"], np.full(10, 39.90), np.full(10, 116.40), np.arange(10.0) * 60
            ),
        )
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(GeolocatedDataset([trail]))
        assert out.num_users() == 1
        assert len(out.flat()) == 10

    def test_deterministic_pseudonyms(self):
        ds = GeolocatedDataset([_commuter()])
        a = MixZoneSanitizer([ZONE], seed=9).sanitize_dataset(ds)
        b = MixZoneSanitizer([ZONE], seed=9).sanitize_dataset(ds)
        assert a.user_ids == b.user_ids

    def test_different_users_get_different_pseudonyms(self):
        ds = GeolocatedDataset([_commuter("a"), _commuter("b")])
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(ds)
        assert out.num_users() >= 6  # 3+ segments each, all distinct

    def test_entirely_inside_zone_suppressed(self):
        trail = Trail(
            "u",
            TraceArray.from_columns(
                ["u"], np.full(5, 39.92), np.full(5, 116.45), np.arange(5.0)
            ),
        )
        out = MixZoneSanitizer([ZONE]).sanitize_dataset(GeolocatedDataset([trail]))
        assert len(out.flat()) == 0

    def test_requires_zones(self):
        with pytest.raises(ValueError):
            MixZoneSanitizer([])
