"""Unit tests for geographical masks."""

import numpy as np
import pytest

from repro.geo.distance import haversine_m
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization.masks import (
    DonutMask,
    GaussianMask,
    PlanarLaplaceMask,
    RoundingMask,
    UniformNoiseMask,
)


def _array(n=500, seed=0):
    rng = np.random.default_rng(seed)
    return TraceArray.from_columns(
        ["u"],
        39.9 + rng.normal(0, 0.01, n),
        116.4 + rng.normal(0, 0.01, n),
        np.arange(n, dtype=float),
    )


def displacement(original, masked):
    return np.asarray(
        haversine_m(
            original.latitude, original.longitude, masked.latitude, masked.longitude
        )
    )


class TestGaussianMask:
    def test_displacement_scale(self):
        arr = _array(2000)
        masked = GaussianMask(sigma_m=100.0, seed=1).sanitize_array(arr)
        d = displacement(arr, masked)
        # 2-D isotropic Gaussian: mean displacement = sigma * sqrt(pi/2).
        assert d.mean() == pytest.approx(100.0 * np.sqrt(np.pi / 2), rel=0.1)

    def test_preserves_counts_users_timestamps(self):
        arr = _array()
        masked = GaussianMask(50.0, seed=2).sanitize_array(arr)
        assert len(masked) == len(arr)
        assert masked.users == arr.users
        assert np.array_equal(masked.timestamp, arr.timestamp)

    def test_zero_sigma_is_identity(self):
        arr = _array(10)
        masked = GaussianMask(0.0).sanitize_array(arr)
        assert np.array_equal(masked.latitude, arr.latitude)

    def test_deterministic_per_seed(self):
        arr = _array(50)
        a = GaussianMask(50.0, seed=3).sanitize_array(arr)
        b = GaussianMask(50.0, seed=3).sanitize_array(arr)
        c = GaussianMask(50.0, seed=4).sanitize_array(arr)
        assert np.array_equal(a.latitude, b.latitude)
        assert not np.array_equal(a.latitude, c.latitude)

    def test_chunk_invariant(self):
        """MapReduce contract: masking chunks separately must equal
        masking the whole array."""
        arr = _array(300)
        mask = GaussianMask(80.0, seed=5)
        whole = mask.sanitize_array(arr)
        split = [mask.sanitize_array(arr[:123]), mask.sanitize_array(arr[123:])]
        assert np.allclose(whole.latitude[:123], split[0].latitude)
        assert np.allclose(whole.latitude[123:], split[1].latitude)
        assert np.allclose(whole.longitude[123:], split[1].longitude)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianMask(-1.0)

    def test_empty_array(self):
        assert len(GaussianMask(10.0).sanitize_array(TraceArray.empty())) == 0


class TestUniformNoiseMask:
    def test_displacement_bounded_by_radius(self):
        arr = _array(2000)
        masked = UniformNoiseMask(radius_m=150.0, seed=1).sanitize_array(arr)
        d = displacement(arr, masked)
        assert d.max() <= 150.0 * 1.01
        # Uniform in a disc: mean displacement = 2R/3.
        assert d.mean() == pytest.approx(100.0, rel=0.1)

    def test_deterministic(self):
        arr = _array(50)
        a = UniformNoiseMask(100.0, seed=2).sanitize_array(arr)
        b = UniformNoiseMask(100.0, seed=2).sanitize_array(arr)
        assert np.array_equal(a.longitude, b.longitude)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformNoiseMask(-5.0)


class TestDonutMask:
    def test_displacement_within_annulus(self):
        arr = _array(2000)
        masked = DonutMask(100.0, 250.0, seed=1).sanitize_array(arr)
        d = displacement(arr, masked)
        assert d.min() >= 100.0 * 0.98
        assert d.max() <= 250.0 * 1.02

    def test_guaranteed_minimum_unlike_gaussian(self):
        """The donut's raison d'etre: no point stays nearly unmoved."""
        arr = _array(2000)
        donut = displacement(arr, DonutMask(100.0, 250.0, seed=2).sanitize_array(arr))
        gauss = displacement(arr, GaussianMask(150.0, seed=2).sanitize_array(arr))
        assert donut.min() > 90.0
        assert gauss.min() < 50.0  # Gaussian leaves some points near home

    def test_deterministic_and_chunk_invariant(self):
        arr = _array(200)
        mask = DonutMask(50.0, 120.0, seed=3)
        whole = mask.sanitize_array(arr)
        split = mask.sanitize_array(arr[:80])
        assert np.allclose(whole.latitude[:80], split.latitude)

    def test_validation(self):
        with pytest.raises(ValueError):
            DonutMask(-1.0, 10.0)
        with pytest.raises(ValueError):
            DonutMask(20.0, 10.0)

    def test_zero_rmax_is_identity(self):
        arr = _array(10)
        out = DonutMask(0.0, 0.0).sanitize_array(arr)
        assert np.array_equal(out.latitude, arr.latitude)


class TestRoundingMask:
    def test_snaps_to_grid(self):
        arr = _array(500)
        masked = RoundingMask(cell_m=1000.0).sanitize_array(arr)
        # Many traces collapse onto few distinct coordinates (the spread
        # is ~1 km sigma, so 1 km cells leave only a handful of cells).
        distinct = len(set(zip(masked.latitude.tolist(), masked.longitude.tolist())))
        assert distinct < len(arr) / 5

    def test_displacement_bounded_by_cell_diagonal(self):
        arr = _array(500)
        cell = 200.0
        masked = RoundingMask(cell_m=cell).sanitize_array(arr)
        d = displacement(arr, masked)
        assert d.max() <= cell * np.sqrt(2) / 2 * 1.05

    def test_deterministic_and_chunk_invariant(self):
        arr = _array(200)
        mask = RoundingMask(cell_m=100.0)
        whole = mask.sanitize_array(arr)
        split0 = mask.sanitize_array(arr[:77])
        assert np.array_equal(whole.latitude[:77], split0.latitude)

    def test_idempotent(self):
        arr = _array(100)
        mask = RoundingMask(cell_m=100.0)
        once = mask.sanitize_array(arr)
        twice = mask.sanitize_array(once)
        assert np.allclose(once.latitude, twice.latitude)
        assert np.allclose(once.longitude, twice.longitude)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundingMask(0.0)


class TestPlanarLaplaceMask:
    def test_expected_displacement_is_two_over_epsilon(self):
        arr = _array(5000)
        eps = 0.02  # expected displacement 100 m
        masked = PlanarLaplaceMask(eps, seed=1).sanitize_array(arr)
        d = displacement(arr, masked)
        assert d.mean() == pytest.approx(2.0 / eps, rel=0.08)

    def test_radius_distribution_is_polar_laplace(self):
        """The radius CDF is 1 - (1 + eps*r) * exp(-eps*r); check the
        median against its closed(ish) form via empirical quantiles."""
        arr = _array(20_000)
        eps = 0.01
        masked = PlanarLaplaceMask(eps, seed=2).sanitize_array(arr)
        d = np.sort(displacement(arr, masked))
        # CDF at r: evaluate empirically at a couple of radii.
        for r in (100.0, 300.0):
            want = 1.0 - (1.0 + eps * r) * np.exp(-eps * r)
            got = np.searchsorted(d, r) / len(d)
            assert got == pytest.approx(want, abs=0.02)

    def test_deterministic_and_chunk_invariant(self):
        arr = _array(300)
        mask = PlanarLaplaceMask(0.02, seed=3)
        whole = mask.sanitize_array(arr)
        split = mask.sanitize_array(arr[:123])
        assert np.allclose(whole.latitude[:123], split.latitude)

    def test_smaller_epsilon_more_noise(self):
        arr = _array(3000)
        strong = displacement(arr, PlanarLaplaceMask(0.005, seed=4).sanitize_array(arr))
        weak = displacement(arr, PlanarLaplaceMask(0.05, seed=4).sanitize_array(arr))
        assert strong.mean() > weak.mean() * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanarLaplaceMask(0.0)
        with pytest.raises(ValueError):
            PlanarLaplaceMask(-1.0)

    def test_metadata_untouched(self):
        arr = _array(50)
        masked = PlanarLaplaceMask(0.01, seed=5).sanitize_array(arr)
        assert np.array_equal(masked.timestamp, arr.timestamp)
        assert masked.users == arr.users


class TestDatasetLevel:
    def test_sanitize_dataset_keeps_structure(self):
        arr = _array(100)
        ds = GeolocatedDataset([Trail("u", arr)])
        out = GaussianMask(50.0, seed=1).sanitize_dataset(ds)
        assert out.user_ids == ["u"]
        assert len(out) == 100

    def test_callable_protocol(self):
        ds = GeolocatedDataset([Trail("u", _array(10))])
        out = GaussianMask(50.0)(ds)
        assert len(out) == 10
