"""Unit tests for spatial cloaking."""

import numpy as np
import pytest

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization.cloaking import SpatialCloaking


def _multi_user(n_users=5, n=60, spread=0.001, seed=0):
    """Users clustered around a shared block, same hour."""
    rng = np.random.default_rng(seed)
    trails = []
    for u in range(n_users):
        trails.append(
            Trail(
                f"u{u}",
                TraceArray.from_columns(
                    [f"u{u}"],
                    39.9 + rng.normal(0, spread, n),
                    116.4 + rng.normal(0, spread, n),
                    np.sort(rng.uniform(0, 3000, n)),
                ),
            )
        )
    return GeolocatedDataset(trails)


class TestCloaking:
    def test_dense_area_cloaked_not_suppressed(self):
        ds = _multi_user()
        out = SpatialCloaking(k=3, base_cell_m=500.0, window_s=3600.0).sanitize_dataset(ds)
        # All users share one cell-window: everything is released.
        assert len(out.flat()) == len(ds.flat())

    def test_lone_user_suppressed(self):
        ds = _multi_user(n_users=1)
        cloak = SpatialCloaking(k=2, base_cell_m=250.0, window_s=3600.0, max_levels=3)
        out = cloak.sanitize_dataset(ds)
        assert len(out.flat()) == 0

    def test_k1_releases_everything_at_base_cell(self):
        ds = _multi_user(n_users=1)
        out = SpatialCloaking(k=1, base_cell_m=250.0).sanitize_dataset(ds)
        assert len(out.flat()) == len(ds.flat())

    def test_reported_positions_shared_within_cell(self):
        ds = _multi_user()
        out = SpatialCloaking(k=3, base_cell_m=2000.0).sanitize_dataset(ds)
        flat = out.flat()
        coords = set(zip(flat.latitude.tolist(), flat.longitude.tolist()))
        # Strong coarsening: few distinct reported positions.
        assert len(coords) < 10

    def test_isolated_user_forces_coarser_cell(self):
        """A user far from the crowd either joins at a coarse level or is
        suppressed — never released at fine granularity alone."""
        ds = _multi_user(n_users=3)
        loner = Trail(
            "loner",
            TraceArray.from_columns(
                ["loner"],
                np.full(10, 39.93),  # ~3 km away
                np.full(10, 116.44),
                np.linspace(0, 3000, 10),
            ),
        )
        ds.add_trail(loner)
        cloak = SpatialCloaking(k=2, base_cell_m=250.0, window_s=3600.0, max_levels=6)
        out = cloak.sanitize_dataset(ds)
        if "loner" in out:
            from repro.geo.distance import haversine_m

            released = out.trail("loner").traces
            d = np.asarray(
                haversine_m(39.93, 116.44, released.latitude, released.longitude)
            )
            # The loner's reported position was pulled toward the crowd's
            # coarse cell centroid, far from its true fine position.
            assert d.mean() > 250.0

    def test_not_chunk_local(self):
        assert SpatialCloaking(k=2).chunk_local is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialCloaking(k=0)
        with pytest.raises(ValueError):
            SpatialCloaking(k=2, base_cell_m=0)
        with pytest.raises(ValueError):
            SpatialCloaking(k=2, max_levels=0)

    def test_empty_dataset(self):
        out = SpatialCloaking(k=2).sanitize_dataset(GeolocatedDataset())
        assert len(out.flat()) == 0
