"""Unit tests for aggregation sanitizers."""

import numpy as np
import pytest

from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray
from repro.sanitization.aggregation import SpatialAggregator, TemporalAggregator


def _array(n=300, seed=0):
    rng = np.random.default_rng(seed)
    return TraceArray.from_columns(
        ["u"],
        39.9 + rng.normal(0, 0.005, n),
        116.4 + rng.normal(0, 0.005, n),
        np.sort(rng.uniform(0, 3600, n)),
    )


class TestSpatialAggregator:
    def test_collapses_cells_to_shared_coordinate(self):
        arr = _array()
        out = SpatialAggregator(cell_m=300.0).sanitize_array(arr)
        assert len(out) == len(arr)
        distinct = len(set(zip(out.latitude.tolist(), out.longitude.tolist())))
        assert distinct < len(arr) / 3

    def test_aggregate_is_cell_centroid(self):
        # Two tight groups of traces -> each replaced by its own mean.
        lat = np.array([39.90000, 39.90002, 39.95000, 39.95002])
        lon = np.array([116.4, 116.4, 116.5, 116.5])
        arr = TraceArray.from_columns(["u"], lat, lon, np.arange(4.0))
        out = SpatialAggregator(cell_m=500.0).sanitize_array(arr)
        assert out.latitude[0] == pytest.approx(lat[:2].mean())
        assert out.latitude[2] == pytest.approx(lat[2:].mean())

    def test_distortion_bounded_by_cell(self):
        arr = _array()
        out = SpatialAggregator(cell_m=300.0).sanitize_array(arr)
        d = np.asarray(haversine_m(arr.latitude, arr.longitude, out.latitude, out.longitude))
        assert d.max() <= 300.0 * np.sqrt(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialAggregator(0.0)

    def test_empty(self):
        assert len(SpatialAggregator(100.0).sanitize_array(TraceArray.empty())) == 0


class TestTemporalAggregator:
    def test_equivalent_to_sampling(self):
        from repro.algorithms.sampling import sample_array

        arr = _array()
        out = TemporalAggregator(window_s=300.0).sanitize_array(arr)
        ref = sample_array(arr, 300.0, "upper")
        assert len(out) == len(ref)
        assert np.array_equal(out.timestamp, ref.timestamp)

    def test_technique_forwarded(self):
        arr = _array()
        upper = TemporalAggregator(300.0, "upper").sanitize_array(arr)
        middle = TemporalAggregator(300.0, "middle").sanitize_array(arr)
        assert not np.array_equal(upper.timestamp, middle.timestamp)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalAggregator(0.0)
        with pytest.raises(ValueError):
            TemporalAggregator(60.0, "bogus")
