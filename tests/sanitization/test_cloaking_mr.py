"""Tests for MapReduced spatial cloaking."""

import numpy as np
import pytest

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.sanitization.cloaking import SpatialCloaking
from repro.sanitization.cloaking_mr import run_cloaking_mapreduce


def _population(n_users=6, n=40, seed=0):
    """Users in two distinct districts, same hours."""
    rng = np.random.default_rng(seed)
    trails = []
    for u in range(n_users):
        # Half the users downtown, half in the suburb (~5 km away).
        base = (39.90, 116.40) if u % 2 == 0 else (39.945, 116.45)
        trails.append(
            Trail(
                f"u{u}",
                TraceArray.from_columns(
                    [f"u{u}"],
                    base[0] + rng.normal(0, 0.001, n),
                    base[1] + rng.normal(0, 0.001, n),
                    np.sort(rng.uniform(0, 7200, n)),
                ),
            )
        )
    return GeolocatedDataset(trails)


CLOAK = SpatialCloaking(k=3, base_cell_m=400.0, window_s=3600.0, max_levels=4)


def _signature(array: TraceArray) -> set:
    return {
        (u, round(float(lat), 9), round(float(lon), 9), float(ts))
        for u, lat, lon, ts in zip(
            array.user_ids(), array.latitude, array.longitude, array.timestamp
        )
    }


class TestExactness:
    @pytest.mark.parametrize("chunk_traces", [10_000, 37])
    @pytest.mark.parametrize("num_reducers", [1, 4])
    def test_mr_equals_sequential(self, chunk_traces, num_reducers):
        """The quadtree buckets are closed worlds: MR == sequential for
        any chunking and any reducer count."""
        ds = _population()
        seq = CLOAK.sanitize_dataset(ds).flat()
        hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * chunk_traces, seed=0)
        hdfs.put_trace_array("in", ds.flat().sort_by_time())
        runner = JobRunner(hdfs)
        run_cloaking_mapreduce(runner, CLOAK, "in", "out", num_reducers=num_reducers)
        mr = hdfs.read_trace_array("out")
        assert _signature(mr) == _signature(seq)

    def test_shuffle_carries_all_traces(self):
        ds = _population()
        hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * 50, seed=0)
        hdfs.put_trace_array("in", ds.flat().sort_by_time())
        runner = JobRunner(hdfs)
        res = run_cloaking_mapreduce(runner, CLOAK, "in", "out")
        mapped = res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS)
        assert mapped == len(ds.flat())
        assert res.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES) > 0


class TestCloakingSemanticsThroughMR:
    def test_lone_users_suppressed(self):
        """One user alone in their district with k=3 must be suppressed."""
        ds = _population(n_users=1)
        hdfs = SimulatedHDFS(paper_cluster(4), seed=0)
        hdfs.put_trace_array("in", ds.flat())
        runner = JobRunner(hdfs)
        run_cloaking_mapreduce(runner, CLOAK, "in", "out")
        assert len(hdfs.read_trace_array("out")) == 0

    def test_dense_district_released(self):
        ds = _population(n_users=6)
        hdfs = SimulatedHDFS(paper_cluster(4), seed=0)
        hdfs.put_trace_array("in", ds.flat().sort_by_time())
        runner = JobRunner(hdfs)
        run_cloaking_mapreduce(runner, CLOAK, "in", "out")
        out = hdfs.read_trace_array("out")
        # 3 users per district >= k: everything is released (cloaked).
        assert len(out) == len(ds.flat())
