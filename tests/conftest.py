"""Shared fixtures: small synthetic corpora and simulated deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic synthetic corpus (4 users, 2 days)."""
    cfg = SyntheticConfig(n_users=4, days=2, seed=42)
    dataset, users = generate_dataset(cfg)
    return dataset, users


@pytest.fixture(scope="session")
def small_array(small_corpus) -> TraceArray:
    dataset, _ = small_corpus
    return dataset.flat().sort_by_time()


@pytest.fixture()
def cluster():
    return paper_cluster(n_workers=5)


@pytest.fixture()
def hdfs(cluster) -> SimulatedHDFS:
    return SimulatedHDFS(cluster, chunk_size=256 * 1024, seed=1)


@pytest.fixture()
def runner(hdfs) -> JobRunner:
    return JobRunner(hdfs)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


def city_points(n: int, seed: int = 0, spread: float = 0.05) -> np.ndarray:
    """Random (lat, lon) points around Beijing, for index tests."""
    gen = np.random.default_rng(seed)
    return np.column_stack(
        [39.9 + gen.normal(0, spread, n), 116.4 + gen.normal(0, spread, n)]
    )
