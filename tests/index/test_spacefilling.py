"""Unit tests for space-filling curves."""

import numpy as np
import pytest

from repro.index.spacefilling import (
    CURVES,
    get_curve,
    hilbert_key,
    hilbert_xy_from_key,
    morton_interleave,
    normalize_to_grid,
    zorder_key,
)


def _full_grid(order):
    n = 1 << order
    xs, ys = np.meshgrid(np.arange(n), np.arange(n))
    bounds = (0.0, 0.0, float(n - 1), float(n - 1))
    return xs.ravel().astype(float), ys.ravel().astype(float), bounds, n


class TestNormalizeToGrid:
    def test_corners_map_to_extremes(self):
        gx, gy = normalize_to_grid(
            np.array([0.0, 10.0]), np.array([0.0, 10.0]), (0, 0, 10, 10), order=4
        )
        assert gx[0] == 0 and gy[0] == 0
        assert gx[1] == 15 and gy[1] == 15

    def test_degenerate_extent_collapses(self):
        gx, gy = normalize_to_grid(
            np.array([5.0, 5.0]), np.array([1.0, 2.0]), (5, 0, 5, 2), order=4
        )
        assert np.all(gx == 0)
        assert gy[0] != gy[1]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            normalize_to_grid(np.zeros(1), np.zeros(1), (1, 0, 0, 1))

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            normalize_to_grid(np.zeros(1), np.zeros(1), (0, 0, 1, 1), order=0)
        with pytest.raises(ValueError):
            normalize_to_grid(np.zeros(1), np.zeros(1), (0, 0, 1, 1), order=32)


class TestMorton:
    def test_interleave_known_values(self):
        # x=0b11, y=0b00 -> 0b0101 = 5 ; x=0b00, y=0b11 -> 0b1010 = 10.
        out = morton_interleave(
            np.array([3, 0], dtype=np.uint64), np.array([0, 3], dtype=np.uint64)
        )
        assert list(out) == [5, 10]

    def test_bijective_on_grid(self):
        xs, ys, bounds, n = _full_grid(4)
        keys = zorder_key(xs, ys, bounds, order=4)
        assert len(np.unique(keys)) == n * n

    def test_key_range(self):
        xs, ys, bounds, n = _full_grid(3)
        keys = zorder_key(xs, ys, bounds, order=3)
        assert keys.min() == 0
        assert keys.max() == n * n - 1


class TestHilbert:
    @pytest.mark.parametrize("order", [1, 2, 4, 6])
    def test_bijective(self, order):
        xs, ys, bounds, n = _full_grid(order)
        keys = hilbert_key(xs, ys, bounds, order=order)
        assert len(np.unique(keys)) == n * n
        assert keys.max() == n * n - 1

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_roundtrip_with_inverse(self, order):
        xs, ys, bounds, n = _full_grid(order)
        gx, gy = normalize_to_grid(xs, ys, bounds, order)
        keys = hilbert_key(xs, ys, bounds, order=order)
        bx, by = hilbert_xy_from_key(keys, order=order)
        assert np.array_equal(bx, gx)
        assert np.array_equal(by, gy)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_continuity(self, order):
        """Consecutive Hilbert keys index 4-adjacent cells — the locality
        property Z-order lacks."""
        xs, ys, bounds, _ = _full_grid(order)
        gx, gy = normalize_to_grid(xs, ys, bounds, order)
        keys = hilbert_key(xs, ys, bounds, order=order)
        idx = np.argsort(keys)
        steps = np.abs(np.diff(gx[idx].astype(int))) + np.abs(np.diff(gy[idx].astype(int)))
        assert np.all(steps == 1)

    def test_zorder_has_jumps_hilbert_does_not(self):
        xs, ys, bounds, _ = _full_grid(4)
        gx, gy = normalize_to_grid(xs, ys, bounds, 4)

        def max_step(keys):
            idx = np.argsort(keys)
            return int(
                (np.abs(np.diff(gx[idx].astype(int))) + np.abs(np.diff(gy[idx].astype(int)))).max()
            )

        assert max_step(zorder_key(xs, ys, bounds, 4)) > 1
        assert max_step(hilbert_key(xs, ys, bounds, 4)) == 1


class TestRegistry:
    def test_curves_registered(self):
        assert set(CURVES) == {"zorder", "hilbert"}

    def test_get_curve_aliases(self):
        assert get_curve("Z-order") is zorder_key
        assert get_curve("z") is zorder_key
        assert get_curve("HILBERT") is hilbert_key

    def test_unknown_curve(self):
        with pytest.raises(KeyError):
            get_curve("peano")
