"""Unit tests for the R-tree against brute force."""

import numpy as np
import pytest

from repro.geo.distance import haversine_m
from repro.index.rtree import Rect, RTree

from tests.conftest import city_points


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 0.0)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 1.0)
        assert not r.contains_point(1.1, 0.5)

    def test_union_and_area(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)
        assert u.area() == 9.0

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_min_dist_zero_inside(self):
        r = Rect(39.8, 116.3, 40.0, 116.5)
        assert r.min_dist_m(39.9, 116.4) == 0.0
        assert r.min_dist_m(41.0, 116.4) > 0

    def test_of_points_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.of_points(np.empty((0, 2)))


def brute_rect(pts, rect):
    return set(
        np.flatnonzero(
            (pts[:, 0] >= rect.min_lat)
            & (pts[:, 0] <= rect.max_lat)
            & (pts[:, 1] >= rect.min_lon)
            & (pts[:, 1] <= rect.max_lon)
        ).tolist()
    )


class TestBulkLoad:
    def test_invariants_hold(self):
        tree = RTree.bulk_load(city_points(3000, seed=1))
        tree.check_invariants()
        assert len(tree) == 3000

    def test_rect_query_matches_brute_force(self):
        pts = city_points(2000, seed=2)
        tree = RTree.bulk_load(pts)
        for rect in [
            Rect(39.85, 116.35, 39.95, 116.45),
            Rect(39.9, 116.4, 39.9, 116.4),
            Rect(0.0, 0.0, 1.0, 1.0),  # far away: empty
        ]:
            assert set(tree.query_rect(rect).tolist()) == brute_rect(pts, rect)

    def test_radius_query_matches_brute_force(self):
        pts = city_points(2000, seed=3)
        tree = RTree.bulk_load(pts)
        for radius in [50.0, 500.0, 5000.0]:
            got = set(tree.query_radius(39.9, 116.4, radius).tolist())
            d = np.asarray(haversine_m(39.9, 116.4, pts[:, 0], pts[:, 1]))
            assert got == set(np.flatnonzero(d <= radius).tolist())

    def test_radius_zero_returns_exact_hits_only(self):
        pts = np.array([[39.9, 116.4], [39.9001, 116.4]])
        tree = RTree.bulk_load(pts)
        assert set(tree.query_radius(39.9, 116.4, 0.0).tolist()) == {0}

    def test_negative_radius_rejected(self):
        tree = RTree.bulk_load(city_points(10))
        with pytest.raises(ValueError):
            tree.query_radius(0, 0, -1.0)

    def test_custom_ids(self):
        pts = city_points(100, seed=4)
        ids = np.arange(1000, 1100)
        tree = RTree.bulk_load(pts, ids)
        hits = tree.query_rect(Rect(-90, -180, 90, 180))
        assert set(hits.tolist()) == set(ids.tolist())

    def test_ids_length_mismatch(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(city_points(10), np.arange(5))

    def test_empty_tree(self):
        tree = RTree.bulk_load(np.empty((0, 2)))
        assert len(tree) == 0
        assert tree.height() == 0
        assert tree.bounds is None
        assert len(tree.query_radius(0, 0, 100)) == 0
        assert tree.knn(0, 0, 3) == []

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.zeros((5, 3)))

    def test_max_entries_respected(self):
        pts = city_points(500, seed=5)
        tree = RTree.bulk_load(pts, max_entries=8)
        tree.check_invariants()

        def check(node):
            assert node.n_entries() <= 8
            if not node.is_leaf:
                for child in node.children:
                    check(child)

        check(tree._root)


class TestKnn:
    def test_matches_brute_force_order(self):
        pts = city_points(1500, seed=6)
        tree = RTree.bulk_load(pts)
        d = np.asarray(haversine_m(39.9, 116.4, pts[:, 0], pts[:, 1]))
        want = np.argsort(d)[:15].tolist()
        got = [i for i, _ in tree.knn(39.9, 116.4, 15)]
        assert got == want

    def test_distances_nondecreasing(self):
        tree = RTree.bulk_load(city_points(500, seed=7))
        dists = [d for _, d in tree.knn(39.9, 116.4, 20)]
        assert dists == sorted(dists)

    def test_k_larger_than_tree(self):
        tree = RTree.bulk_load(city_points(5, seed=8))
        assert len(tree.knn(39.9, 116.4, 50)) == 5

    def test_k_validated(self):
        tree = RTree.bulk_load(city_points(5))
        with pytest.raises(ValueError):
            tree.knn(0, 0, 0)


class TestDynamicInsert:
    def test_insert_matches_bulk_load_queries(self):
        pts = city_points(400, seed=9)
        dynamic = RTree(max_entries=8)
        for i, p in enumerate(pts):
            dynamic.insert(i, p[0], p[1])
        dynamic.check_invariants()
        bulk = RTree.bulk_load(pts, max_entries=8)
        rect = Rect(39.87, 116.37, 39.93, 116.43)
        assert set(dynamic.query_rect(rect).tolist()) == set(bulk.query_rect(rect).tolist())

    def test_tree_grows_in_height(self):
        tree = RTree(max_entries=4)
        pts = city_points(100, seed=10)
        heights = []
        for i, p in enumerate(pts):
            tree.insert(i, p[0], p[1])
            heights.append(tree.height())
        assert heights[0] == 1
        assert heights[-1] > 2
        assert all(b - a in (0, 1) for a, b in zip(heights, heights[1:]))

    def test_single_insert(self):
        tree = RTree()
        tree.insert(7, 39.9, 116.4)
        assert len(tree) == 1
        assert [i for i, _ in tree.knn(39.9, 116.4, 1)] == [7]


class TestMerge:
    def test_merge_equal_heights(self):
        pts = city_points(2000, seed=11)
        trees = [
            RTree.bulk_load(pts[i::4], np.arange(len(pts))[i::4]) for i in range(4)
        ]
        merged = RTree.merge(trees)
        merged.check_invariants()
        assert len(merged) == 2000
        rect = Rect(39.88, 116.38, 39.92, 116.42)
        assert set(merged.query_rect(rect).tolist()) == brute_rect(pts, rect)

    def test_merge_mixed_heights_rebuilds(self):
        pts = city_points(600, seed=12)
        big = RTree.bulk_load(pts[:550], np.arange(550), max_entries=8)
        small = RTree.bulk_load(pts[550:], np.arange(550, 600), max_entries=8)
        assert big.height() != small.height()
        merged = RTree.merge([big, small])
        merged.check_invariants()
        assert len(merged) == 600
        rect = Rect(39.85, 116.35, 39.95, 116.45)
        assert set(merged.query_rect(rect).tolist()) == brute_rect(pts, rect)

    def test_merge_empty_and_single(self):
        assert len(RTree.merge([])) == 0
        t = RTree.bulk_load(city_points(10, seed=13))
        assert RTree.merge([t]) is t
        assert len(RTree.merge([t, RTree()])) == 10

    def test_iter_entries(self):
        pts = city_points(50, seed=14)
        tree = RTree.bulk_load(pts)
        entries = sorted(tree.iter_entries())
        assert len(entries) == 50
        assert [e[0] for e in entries] == list(range(50))
