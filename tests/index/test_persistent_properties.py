"""Differential property suite for the persistent R-tree.

Every query answered from persisted node pages must be **element
identical** to the same query on the in-memory :class:`RTree` the pages
were serialized from, and set-equal to a brute-force haversine scan —
with and without a memory budget (paged chunks), and again after the
index is closed and reopened from HDFS.

The hypothesis profile is bounded (small example counts, no deadline)
because every example stands up a simulated deployment; the suite is
tier-1, so it must stay cheap enough for ``pytest -x -q``.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.index.persistent import PersistentRTree
from repro.index.rtree import Rect, RTree
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=39.0, max_value=41.0, allow_nan=False),
        st.floats(min_value=115.0, max_value=118.0, allow_nan=False),
    ),
    min_size=1,
    max_size=200,
)

#: None = everything resident; 0.05 MB = far below even tiny page sets,
#: so reads go through the paging LRU.
budget_strategy = st.sampled_from([None, 0.05])


def _persist(points, budget_mb, max_entries=8):
    """(in-memory tree, reopened persistent twin) over a fresh deployment.

    ``group_bytes`` is tiny so even hypothesis-sized trees span several
    page chunks — otherwise a single resident chunk would never exercise
    the chunk-table bisect or the budget's paging.
    """
    tree = RTree.bulk_load(np.array(points), max_entries=max_entries)
    hdfs = SimulatedHDFS(
        paper_cluster(2), chunk_size=64 * 1024, seed=0, memory_budget_mb=budget_mb
    )
    PersistentRTree.save(hdfs, "idx", tree, group_bytes=2048)
    # Reopen from the meta record: nothing survives from save() in memory.
    return tree, PersistentRTree.open(hdfs, "idx")


@settings(max_examples=25, deadline=None)
@given(
    points_strategy,
    budget_strategy,
    st.floats(min_value=39.0, max_value=41.0),
    st.floats(min_value=115.0, max_value=118.0),
    st.floats(min_value=0.0, max_value=2.0),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_range_differential(points, budget, lo_lat, lo_lon, dlat, dlon):
    tree, persisted = _persist(points, budget)
    rect = Rect(lo_lat, lo_lon, lo_lat + dlat, lo_lon + dlon)
    got = persisted.query_rect(rect)
    assert np.array_equal(got, tree.query_rect(rect))
    pts = np.array(points)
    want = np.flatnonzero(
        (pts[:, 0] >= rect.min_lat)
        & (pts[:, 0] <= rect.max_lat)
        & (pts[:, 1] >= rect.min_lon)
        & (pts[:, 1] <= rect.max_lon)
    )
    assert np.array_equal(np.sort(got), want)


@settings(max_examples=25, deadline=None)
@given(
    points_strategy,
    budget_strategy,
    st.floats(min_value=39.0, max_value=41.0),
    st.floats(min_value=115.0, max_value=118.0),
    st.floats(min_value=0.0, max_value=50_000.0),
)
def test_radius_differential(points, budget, qlat, qlon, radius):
    tree, persisted = _persist(points, budget)
    got = persisted.query_radius(qlat, qlon, radius)
    assert np.array_equal(got, tree.query_radius(qlat, qlon, radius))
    pts = np.array(points)
    d = np.asarray(haversine_m(qlat, qlon, pts[:, 0], pts[:, 1]))
    assert set(got.tolist()) == set(np.flatnonzero(d <= radius).tolist())


@settings(max_examples=20, deadline=None)
@given(
    points_strategy,
    budget_strategy,
    st.integers(min_value=1, max_value=20),
)
def test_knn_differential(points, budget, k):
    tree, persisted = _persist(points, budget)
    got = persisted.knn(40.0, 116.5, k)
    # Same pages, same traversal code: exact equality, tie order included.
    assert got == tree.knn(40.0, 116.5, k)
    pts = np.array(points)
    d = np.asarray(haversine_m(40.0, 116.5, pts[:, 0], pts[:, 1]))
    want_dists = np.sort(d)[: min(k, len(pts))]
    assert np.allclose(np.sort([dist for _, dist in got]), want_dists)


@settings(max_examples=15, deadline=None)
@given(points_strategy, budget_strategy)
def test_point_and_batch_differential(points, budget):
    tree, persisted = _persist(points, budget)
    pts = np.array(points)
    lat, lon = float(pts[0, 0]), float(pts[0, 1])
    got = persisted.query_point(lat, lon)
    assert np.array_equal(got, tree.query_rect(Rect(lat, lon, lat, lon)))
    assert len(got) >= 1  # the anchor itself is at (lat, lon)
    batch_got = persisted.query_radius_batch(pts[:5], 500.0)
    batch_want = tree.query_radius_batch(pts[:5], 500.0)
    assert all(np.array_equal(a, b) for a, b in zip(batch_got, batch_want))


@settings(max_examples=10, deadline=None)
@given(points_strategy, budget_strategy)
def test_reopen_and_portable_identical(points, budget):
    """close/reopen, the portable form, and its pickle round-trip all
    answer identically to the in-memory original."""
    tree, persisted = _persist(points, budget)
    rect = Rect(39.5, 115.5, 40.5, 117.5)
    want = tree.query_rect(rect)
    reopened = PersistentRTree.open(persisted._hdfs, "idx")
    portable = persisted.to_portable()
    unpickled = pickle.loads(pickle.dumps(portable))
    for twin in (reopened, portable, unpickled):
        assert np.array_equal(twin.query_rect(rect), want)
        assert twin.knn(40.0, 116.5, 3) == tree.knn(40.0, 116.5, 3)


def test_facade_passes_tree_invariants():
    rng = np.random.default_rng(7)
    pts = np.column_stack(
        (rng.uniform(39.0, 41.0, 500), rng.uniform(115.0, 118.0, 500))
    )
    _, persisted = _persist([tuple(p) for p in pts], None)
    persisted.tree.check_invariants()
    assert len(persisted) == 500
    assert persisted.height() == persisted.tree.height()


def test_empty_tree_round_trip():
    empty = RTree()
    hdfs = SimulatedHDFS(paper_cluster(2), chunk_size=64 * 1024, seed=0)
    PersistentRTree.save(hdfs, "idx", empty)
    reopened = PersistentRTree.open(hdfs, "idx")
    assert len(reopened) == 0
    assert reopened.query_rect(Rect(0, 0, 90, 180)).size == 0
    assert reopened.knn(40.0, 116.5, 3) == []
