"""Tests for the 3-phase MapReduce R-tree construction (Figure 6)."""

import numpy as np
import pytest

from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray
from repro.index.rtree_mr import build_rtree_mapreduce
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner

from tests.conftest import city_points


@pytest.fixture()
def env():
    pts = city_points(5000, seed=21)
    arr = TraceArray.from_columns(
        ["u"], pts[:, 0], pts[:, 1], np.arange(len(pts), dtype=float)
    )
    hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * 1000, seed=0)  # ~1000/chunk
    hdfs.put_trace_array("traces", arr)
    return pts, JobRunner(hdfs)


class TestBuild:
    @pytest.mark.parametrize("curve", ["zorder", "hilbert"])
    def test_tree_indexes_every_point_once(self, env, curve):
        pts, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=6, curve=curve, workdir=f"w/{curve}")
        assert len(res.tree) == len(pts)
        ids = sorted(i for i, _, _ in res.tree.iter_entries())
        assert ids == list(range(len(pts)))

    def test_queries_match_brute_force(self, env):
        pts, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=4)
        got = set(res.tree.query_radius(39.9, 116.4, 2000.0).tolist())
        d = np.asarray(haversine_m(39.9, 116.4, pts[:, 0], pts[:, 1]))
        assert got == set(np.flatnonzero(d <= 2000.0).tolist())

    def test_partitions_are_balanced(self, env):
        pts, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=8)
        assert len(res.partition_sizes) == 8
        assert sum(res.partition_sizes.values()) == len(pts)
        # Quantile boundaries keep partitions near-equal.
        assert res.balance_ratio < 1.5

    def test_boundaries_sorted(self, env):
        _, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=5)
        assert len(res.boundaries) == 4
        assert np.all(np.diff(res.boundaries) >= 0)

    def test_phase_timings_reported(self, env):
        _, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=4)
        assert res.phase1_sim_seconds > 0
        assert res.phase2_sim_seconds > 0
        assert res.sim_seconds == pytest.approx(
            res.phase1_sim_seconds + res.phase2_sim_seconds
        )

    def test_single_partition(self, env):
        pts, runner = env
        res = build_rtree_mapreduce(runner, "traces", n_partitions=1)
        assert len(res.tree) == len(pts)
        assert len(res.boundaries) == 0

    def test_invalid_inputs(self, env):
        _, runner = env
        with pytest.raises(ValueError):
            build_rtree_mapreduce(runner, "traces", n_partitions=0)
        with pytest.raises(KeyError):
            build_rtree_mapreduce(runner, "traces", n_partitions=2, curve="peano")

    def test_empty_input(self):
        hdfs = SimulatedHDFS(paper_cluster(3), seed=0)
        hdfs.put_trace_array("empty", TraceArray.empty())
        runner = JobRunner(hdfs)
        res = build_rtree_mapreduce(runner, "empty", n_partitions=4)
        assert len(res.tree) == 0

    def test_deterministic_across_runs(self, env):
        _, runner = env
        a = build_rtree_mapreduce(runner, "traces", n_partitions=4, workdir="w/a")
        b = build_rtree_mapreduce(runner, "traces", n_partitions=4, workdir="w/b")
        assert np.array_equal(a.boundaries, b.boundaries)
        assert a.partition_sizes == b.partition_sizes
