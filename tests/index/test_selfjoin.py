"""Tests for the vectorized radius self-join."""

import numpy as np
import pytest

from repro.index.rtree import RTree
from repro.index.selfjoin import radius_self_join

from tests.conftest import city_points


class TestEquivalenceWithRTree:
    @pytest.mark.parametrize("radius", [30.0, 150.0, 1500.0])
    def test_matches_per_point_rtree_queries(self, radius):
        pts = city_points(1200, seed=31)
        tree = RTree.bulk_load(pts)
        hoods = radius_self_join(pts, radius)
        assert len(hoods) == len(pts)
        for i in range(0, len(pts), 37):  # sampled spot checks
            want = tree.query_radius(pts[i, 0], pts[i, 1], radius)
            assert np.array_equal(hoods[i], want), f"point {i} differs"

    def test_full_equivalence_small(self):
        pts = city_points(300, seed=32)
        tree = RTree.bulk_load(pts)
        hoods = radius_self_join(pts, 200.0)
        for i, hood in enumerate(hoods):
            assert np.array_equal(hood, tree.query_radius(pts[i, 0], pts[i, 1], 200.0))


class TestSemantics:
    def test_self_inclusion(self):
        pts = city_points(100, seed=33)
        for i, hood in enumerate(radius_self_join(pts, 100.0)):
            assert i in hood

    def test_symmetry(self):
        pts = city_points(400, seed=34)
        hoods = radius_self_join(pts, 300.0)
        sets = [set(h.tolist()) for h in hoods]
        for i, s in enumerate(sets):
            for j in s:
                assert i in sets[j], f"asymmetric pair ({i}, {j})"

    def test_zero_radius_exact_duplicates_only(self):
        pts = np.array([[39.9, 116.4], [39.9, 116.4], [39.90001, 116.4]])
        hoods = radius_self_join(pts, 0.0)
        assert set(hoods[0].tolist()) == {0, 1}
        assert set(hoods[2].tolist()) == {2}

    def test_empty_input(self):
        assert radius_self_join(np.empty((0, 2)), 100.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            radius_self_join(np.zeros((3, 3)), 10.0)
        with pytest.raises(ValueError):
            radius_self_join(np.zeros((3, 2)), -1.0)

    def test_isolated_point_alone(self):
        pts = np.vstack([city_points(50, seed=35), [[45.0, 10.0]]])
        hoods = radius_self_join(pts, 100.0)
        assert list(hoods[-1]) == [50]
