"""Input validation at the query surface: bad parameters raise typed
``ValueError``\\ s instead of silently returning empty (or wrong) answers.

NaN is the dangerous case: every comparison against NaN is False, so an
unvalidated NaN coordinate would traverse nothing and return an empty
result that looks legitimate.
"""

import math

import numpy as np
import pytest

from repro.index.persistent import PersistentRTree, QueryEngine
from repro.index.rtree import RTree
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS

NAN = float("nan")
INF = float("inf")


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(3)
    pts = np.column_stack(
        (rng.uniform(39.0, 41.0, 100), rng.uniform(115.0, 118.0, 100))
    )
    return RTree.bulk_load(pts)


@pytest.mark.parametrize("bad_lat, bad_lon", [(NAN, 116.5), (40.0, NAN), (INF, -INF)])
def test_knn_rejects_non_finite_coordinates(tree, bad_lat, bad_lon):
    with pytest.raises(ValueError, match="finite"):
        tree.knn(bad_lat, bad_lon, 3)


def test_knn_keeps_positive_k_validation(tree):
    with pytest.raises(ValueError, match="k must be positive"):
        tree.knn(40.0, 116.5, 0)


@pytest.mark.parametrize("bad_lat, bad_lon", [(NAN, 116.5), (40.0, NAN), (-INF, 116.5)])
def test_query_radius_rejects_non_finite_coordinates(tree, bad_lat, bad_lon):
    with pytest.raises(ValueError, match="finite"):
        tree.query_radius(bad_lat, bad_lon, 100.0)


@pytest.mark.parametrize("bad_radius", [NAN, INF, -INF])
def test_query_radius_rejects_non_finite_radius(tree, bad_radius):
    with pytest.raises(ValueError, match="radius must be finite"):
        tree.query_radius(40.0, 116.5, bad_radius)


def test_query_radius_keeps_negative_radius_validation(tree):
    with pytest.raises(ValueError, match="radius must be non-negative"):
        tree.query_radius(40.0, 116.5, -1.0)


def test_query_radius_batch_rejects_nan_points(tree):
    points = np.array([[40.0, 116.5], [NAN, 116.5]])
    with pytest.raises(ValueError, match="finite"):
        tree.query_radius_batch(points, 100.0)
    with pytest.raises(ValueError, match="radius must be finite"):
        tree.query_radius_batch(np.array([[40.0, 116.5]]), NAN)


def test_valid_queries_still_work(tree):
    assert tree.knn(40.0, 116.5, 3)
    assert tree.query_radius(40.0, 116.5, 1_000_000.0).size > 0
    assert len(tree.query_radius_batch(np.array([[40.0, 116.5]]), 1000.0)) == 1
    assert math.isfinite(tree.knn(40.0, 116.5, 1)[0][1])


def test_query_engine_rejects_non_finite_parameters(tree):
    hdfs = SimulatedHDFS(paper_cluster(2), chunk_size=64 * 1024, seed=0)
    PersistentRTree.save(hdfs, "idx", tree)
    engine = QueryEngine(PersistentRTree.open(hdfs, "idx"), hdfs=hdfs)
    with pytest.raises(ValueError, match="lat must be finite"):
        engine.point(NAN, 116.5)
    with pytest.raises(ValueError, match="max_lon must be finite"):
        engine.range(39.5, 115.5, 40.5, NAN)
    with pytest.raises(ValueError, match="lon must be finite"):
        engine.radius(40.0, INF, 100.0)
    with pytest.raises(ValueError, match="lat must be finite"):
        engine.knn(NAN, 116.5, 3)
    # Rejected queries are never counted as served.
    assert engine.stats.n_queries == 0
