"""Crash-recovery and corruption detection for the persistent R-tree.

Every on-disk failure mode a serving path can meet — a truncated node
block, a flipped body byte (checksum), a mangled magic, a record keyed
by the wrong page, a missing meta, a missing or dangling catalog entry —
must surface as the typed :class:`IndexCorruptError`, never as a wrong
answer or a bare struct/numpy exception.  And after the catalog entry is
wiped, ``ensure`` must rebuild an index whose answers are byte-identical
to the original's.
"""

import numpy as np
import pytest

from repro.index.persistent import (
    IndexCatalog,
    IndexCorruptError,
    PersistentRTree,
    QueryEngine,
)
from repro.index.rtree import Rect, RTree
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner

RECT = Rect(39.5, 115.5, 40.5, 117.5)


def _deployment():
    """An unbudgeted deployment with a multi-chunk persisted index.

    Unbudgeted matters: ``chunks()`` then shares payload objects with
    the namenode's own entries, so mutating a record in place is exactly
    a disk-block corruption — no API needs a corruption hook.
    """
    rng = np.random.default_rng(11)
    pts = np.column_stack(
        (rng.uniform(39.0, 41.0, 400), rng.uniform(115.0, 118.0, 400))
    )
    tree = RTree.bulk_load(pts, max_entries=8)
    hdfs = SimulatedHDFS(paper_cluster(2), chunk_size=64 * 1024, seed=0)
    PersistentRTree.save(hdfs, "idx", tree, group_bytes=2048)
    return hdfs, tree


def _corrupt_record(hdfs, mutate, chunk_i=0, record_j=0):
    """Replace one (page_id, blob) record of ``idx/pages`` in place."""
    payload = hdfs._files["idx/pages"][chunk_i].payload
    page_id, blob = payload.records[record_j]
    payload.records[record_j] = mutate(page_id, blob)


def test_truncated_block_is_typed_error():
    hdfs, _ = _deployment()
    _corrupt_record(hdfs, lambda pid, blob: (pid, blob[:7]))
    index = PersistentRTree.open(hdfs, "idx")
    with pytest.raises(IndexCorruptError, match="page 0"):
        index.query_rect(RECT)


def test_checksum_mismatch_is_typed_error():
    hdfs, _ = _deployment()

    def flip_body_byte(pid, blob):
        body = bytearray(blob)
        body[-1] ^= 0xFF
        return pid, bytes(body)

    _corrupt_record(hdfs, flip_body_byte)
    index = PersistentRTree.open(hdfs, "idx")
    with pytest.raises(IndexCorruptError, match="checksum mismatch"):
        index.query_rect(RECT)


def test_bad_magic_is_typed_error():
    hdfs, _ = _deployment()
    _corrupt_record(hdfs, lambda pid, blob: (pid, b"XXXX" + blob[4:]))
    index = PersistentRTree.open(hdfs, "idx")
    with pytest.raises(IndexCorruptError, match="magic"):
        index.query_rect(RECT)


def test_mislabeled_page_record_is_typed_error():
    hdfs, _ = _deployment()
    # Page bytes are fine; the record claims the wrong page id, so a read
    # of page 0 would silently return another node's data.
    _corrupt_record(hdfs, lambda pid, blob: (pid + 1, blob))
    index = PersistentRTree.open(hdfs, "idx")
    with pytest.raises(IndexCorruptError):
        index.query_rect(RECT)


def test_corruption_surfaces_through_engine_and_portable():
    hdfs, _ = _deployment()
    _corrupt_record(hdfs, lambda pid, blob: (pid, blob[:7]))
    index = PersistentRTree.open(hdfs, "idx")
    engine = QueryEngine(index, hdfs=hdfs)
    with pytest.raises(IndexCorruptError):
        engine.range(39.5, 115.5, 40.5, 117.5)
    # to_portable copies raw blobs; the decode (and the error) happens
    # at first query through the portable facade.
    portable = index.to_portable()
    with pytest.raises(IndexCorruptError):
        portable.query_rect(RECT)


def test_missing_meta_is_typed_error():
    hdfs = SimulatedHDFS(paper_cluster(2), chunk_size=64 * 1024, seed=0)
    with pytest.raises(IndexCorruptError, match="no persisted index"):
        PersistentRTree.open(hdfs, "nowhere")


def test_missing_pages_fail_at_read():
    hdfs, _ = _deployment()
    hdfs.delete("idx/pages")
    index = PersistentRTree.open(hdfs, "idx")  # meta alone still opens
    with pytest.raises(IndexCorruptError, match="pages"):
        index.query_rect(RECT)


def _catalog_deployment():
    rng = np.random.default_rng(5)
    from repro.geo.trace import TraceArray

    lat = rng.uniform(39.6, 40.3, 4000)
    lon = rng.uniform(116.0, 116.8, 4000)
    ts = np.arange(4000, dtype=np.float64)
    corpus = TraceArray.from_columns(["u"], lat, lon, ts)
    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    return hdfs


def test_missing_catalog_entry_is_typed_error():
    hdfs = _catalog_deployment()
    catalog = IndexCatalog(hdfs)
    with pytest.raises(IndexCorruptError, match="no catalog entry"):
        catalog.entry("deadbeefdeadbeef")
    with pytest.raises(IndexCorruptError, match="no catalog entry"):
        catalog.open("deadbeefdeadbeef")


def test_dangling_catalog_entry_is_typed_error():
    hdfs = _catalog_deployment()
    catalog = IndexCatalog(hdfs)
    with JobRunner(hdfs, executor="serial") as runner:
        catalog.ensure(runner, "input/traces", n_partitions=2)
    (entry,) = catalog.entries()
    hdfs.delete(f"{entry.path}/meta")
    with pytest.raises(IndexCorruptError, match="dangles"):
        catalog.entry(entry.key)
    # entries() skips (rather than crashes on) dangling rows.
    assert catalog.entries() == []


def test_catalog_rebuild_restores_byte_identical_answers():
    hdfs = _catalog_deployment()
    catalog = IndexCatalog(hdfs)
    with JobRunner(hdfs, executor="serial") as runner:
        index, built = catalog.ensure(runner, "input/traces", n_partitions=2)
        assert built
        want_rect = index.query_rect(RECT)
        want_knn = index.knn(40.0, 116.4, 7)
        meta = dict(index.meta)

        catalog.delete(catalog.entries()[0].key)
        rebuilt, built_again = catalog.ensure(runner, "input/traces", n_partitions=2)
        assert built_again
        assert rebuilt.meta == meta
        assert np.array_equal(rebuilt.query_rect(RECT), want_rect)
        assert rebuilt.knn(40.0, 116.4, 7) == want_knn
