"""Smoke tests keeping the examples runnable.

Each example module must import cleanly and expose ``main``.  The two
fastest examples are executed end to end; the heavier ones are covered
by the integration suite exercising the same code paths.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesImportable:
    def test_expected_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart.py",
            "distributed_analysis.py",
            "privacy_utility_tradeoff.py",
            "deanonymization_attack.py",
            "social_graph.py",
            "semantic_trajectories.py",
            "paper_walkthrough.py",
        }

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"
        assert module.__doc__, f"{name} lacks a module docstring"


class TestFastExamplesRun:
    def test_semantic_trajectories_runs(self, capsys):
        _load("semantic_trajectories.py").main()
        out = capsys.readouterr().out
        assert "Semantic trail" in out
        assert "Pi_max" in out

    def test_social_graph_runs(self, capsys):
        _load("social_graph.py").main()
        out = capsys.readouterr().out
        assert "recall of planted edges" in out
