"""Unit tests for the counter-based hashing RNG."""

import numpy as np

from repro.utils.hashrng import hash_normal, hash_uniform, splitmix64, trace_keys


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_mixes_consecutive_inputs(self):
        out = splitmix64(np.arange(1000, dtype=np.uint64))
        assert len(np.unique(out)) == 1000
        # Consecutive outputs should be decorrelated: check top-bit balance.
        top = (out >> np.uint64(63)).astype(int)
        assert 0.4 < top.mean() < 0.6


class TestTraceKeys:
    def test_depends_on_every_component(self):
        lat = np.array([39.9])
        lon = np.array([116.4])
        ts = np.array([1000.0])
        base = trace_keys(lat, lon, ts, seed=0)[0]
        assert trace_keys(lat + 1e-9, lon, ts, 0)[0] != base
        assert trace_keys(lat, lon + 1e-9, ts, 0)[0] != base
        assert trace_keys(lat, lon, ts + 1e-3, 0)[0] != base
        assert trace_keys(lat, lon, ts, seed=1)[0] != base

    def test_chunk_invariant(self):
        rng = np.random.default_rng(0)
        lat, lon, ts = rng.normal(size=(3, 100))
        whole = trace_keys(lat, lon, ts, 7)
        parts = np.concatenate(
            [trace_keys(lat[:30], lon[:30], ts[:30], 7), trace_keys(lat[30:], lon[30:], ts[30:], 7)]
        )
        assert np.array_equal(whole, parts)


class TestDraws:
    def _keys(self, n=20000):
        rng = np.random.default_rng(1)
        lat, lon, ts = rng.normal(size=(3, n))
        return trace_keys(lat, lon, ts, 0)

    def test_uniform_in_open_unit_interval(self):
        u = hash_uniform(self._keys())
        assert u.min() > 0.0
        assert u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01

    def test_streams_decorrelated(self):
        keys = self._keys()
        u0 = hash_uniform(keys, stream=0)
        u1 = hash_uniform(keys, stream=1)
        assert abs(np.corrcoef(u0, u1)[0, 1]) < 0.02

    def test_normal_moments(self):
        z = hash_normal(self._keys())
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_normal_streams_independent(self):
        keys = self._keys()
        z0 = hash_normal(keys, stream=0)
        z1 = hash_normal(keys, stream=1)
        assert abs(np.corrcoef(z0, z1)[0, 1]) < 0.02
