"""Regenerates the chaos-run goldens (checked in next to this file).

``golden_chaos_history.json`` is a small handcrafted job exercising every
*chaos* report feature at once: a crash-retried map task, a node lost
mid-map with its task re-dispatched and replicas healed, a blacklisted
node, a retried reducer and a shuffle refetch.
``golden_chaos_report.txt`` is the exact ``repro history`` rendering of
that trace.  Regenerate with::

    PYTHONPATH=src python tests/observability/make_chaos_golden.py

and review the diff — the chaos history tests assert against both files.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory

GOLDEN_HISTORY = Path(__file__).parent / "golden_chaos_history.json"
GOLDEN_REPORT = Path(__file__).parent / "golden_chaos_report.txt"
JOB = "mmc-learning"


def build_chaos_golden() -> JobHistory:
    h = JobHistory()
    K = EventKind
    h.emit(
        K.JOB_START, JOB, 0.0,
        input_paths=["input/traces"], output_path="out/models",
        n_chunks=3, map_only=False, num_reducers=2, combiner=False,
    )
    h.emit(K.PHASE_START, JOB, 0.0, phase=Phase.SETUP)
    h.emit(K.CACHE_LOAD, JOB, 0.0, entries=["mmc.poi_coords"], nbytes=64,
           broadcast_s=0.2)
    h.emit(K.PHASE_FINISH, JOB, 20.0, phase=Phase.SETUP, duration_s=20.0)

    h.emit(K.PHASE_START, JOB, 20.0, phase=Phase.MAP)
    # map-0000: clean node-local task.
    h.emit(K.TASK_START, JOB, 20.0, task="map-0000", node="worker00",
           phase=Phase.MAP, locality="node_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.TASK_FINISH, JOB, 30.0, task="map-0000", node="worker00",
           phase=Phase.MAP, duration_s=10.0, attempts=1, wasted_s=0.0,
           locality="node_local")
    # map-0001: first attempt crashes, backoff, retry succeeds elsewhere.
    h.emit(K.TASK_START, JOB, 20.0, task="map-0001", node="worker02",
           phase=Phase.MAP, locality="node_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.FAULT_INJECTED, JOB, 30.0, task="map-0001", node="worker02",
           attempt=1, fault="task_crash", reason="chaos crash")
    h.emit(K.ATTEMPT_FAILED, JOB, 30.0, task="map-0001", node="worker02",
           attempt=1, reason="chaos crash")
    h.emit(K.ATTEMPT_RETRIED, JOB, 30.0, task="map-0001", attempt=2,
           backoff_s=2.0, reason="re-dispatched after task_crash")
    h.emit(K.TASK_FINISH, JOB, 40.0, task="map-0001", node="worker02",
           phase=Phase.MAP, duration_s=10.0, attempts=2, wasted_s=12.0,
           locality="node_local")
    # map-0002: its node dies mid-phase; the map output is re-dispatched
    # and the under-replicated chunks heal onto survivors.
    h.emit(K.TASK_START, JOB, 20.0, task="map-0002", node="worker01",
           phase=Phase.MAP, locality="node_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.FAULT_INJECTED, JOB, 32.0, task="map-0002", node="worker01",
           attempt=1, fault="node_loss",
           reason="node worker01 lost mid-phase; map output re-dispatched")
    h.emit(K.ATTEMPT_FAILED, JOB, 32.0, task="map-0002", node="worker01",
           attempt=1,
           reason="node worker01 lost mid-phase; map output re-dispatched")
    h.emit(K.ATTEMPT_RETRIED, JOB, 32.0, task="map-0002", attempt=2,
           backoff_s=0.0, reason="re-dispatched after node_loss")
    h.emit(K.TASK_FINISH, JOB, 44.0, task="map-0002", node="worker01",
           phase=Phase.MAP, duration_s=12.0, attempts=2, wasted_s=12.0,
           locality="node_local")
    h.emit(K.NODE_LOST, JOB, 32.0, node="worker01",
           lost_tasks=["map-0002"], detect_s=10.0)
    h.emit(K.REPLICA_HEALED, JOB, 32.0, replicas=2, nbytes=131072,
           rereplicate_s=2.6)
    h.emit(K.PHASE_FINISH, JOB, 50.0, phase=Phase.MAP, duration_s=30.0)

    h.emit(K.SHUFFLE_TRANSFER, JOB, 50.0, task="reduce-0000",
           reducer="reduce-0000", bytes=2000, records=100, groups=10)
    h.emit(K.SHUFFLE_TRANSFER, JOB, 50.0, task="reduce-0001",
           reducer="reduce-0001", bytes=6000, records=300, groups=30)
    h.emit(K.SHUFFLE_REFETCH, JOB, 50.0, task="reduce-0001", bytes=1500,
           refetch_s=0.03, reason="fetch timeout")
    h.emit(K.NODE_BLACKLISTED, JOB, 50.0, node="worker01", failures=3,
           threshold=3)

    h.emit(K.PHASE_START, JOB, 50.0, phase=Phase.REDUCE)
    h.emit(K.TASK_START, JOB, 50.0, task="reduce-0000", node="worker00",
           phase=Phase.REDUCE, input_records=100)
    h.emit(K.TASK_FINISH, JOB, 55.0, task="reduce-0000", node="worker00",
           phase=Phase.REDUCE, duration_s=5.0, attempts=1, wasted_s=0.0)
    h.emit(K.TASK_START, JOB, 50.0, task="reduce-0001", node="worker02",
           phase=Phase.REDUCE, input_records=300)
    h.emit(K.FAULT_INJECTED, JOB, 56.0, task="reduce-0001", node="worker02",
           attempt=1, fault="task_crash", reason="chaos crash")
    h.emit(K.ATTEMPT_FAILED, JOB, 56.0, task="reduce-0001", node="worker02",
           attempt=1, reason="chaos crash")
    h.emit(K.ATTEMPT_RETRIED, JOB, 56.0, task="reduce-0001", attempt=2,
           backoff_s=2.0, reason="re-dispatched after task_crash")
    h.emit(K.TASK_FINISH, JOB, 62.0, task="reduce-0001", node="worker02",
           phase=Phase.REDUCE, duration_s=6.0, attempts=2, wasted_s=8.0,
           locality=None)
    h.emit(K.PHASE_FINISH, JOB, 62.0, phase=Phase.REDUCE, duration_s=12.0)

    h.emit(
        K.JOB_FINISH, JOB, 75.0,
        timing={"setup_s": 20.0, "map_s": 30.0, "reduce_s": 12.0,
                "retry_penalty_s": 13.0, "total_s": 75.0},
        counters={
            "task": {
                "map_input_records": 3072,
                "map_output_records": 96,
                "reduce_input_records": 96,
                "reduce_output_records": 3,
                "shuffle_bytes": 8000,
            },
            "scheduler": {
                "data_local_maps": 3,
                "failed_tasks": 3,
                "nodes_lost": 1,
                "replicas_healed": 2,
                "nodes_blacklisted": 1,
                "shuffle_refetches": 1,
            },
        },
        n_map_tasks=3, n_reduce_tasks=2, output_path="out/models",
    )
    h.advance(75.0)
    return h


if __name__ == "__main__":
    from repro.observability.report import render_report

    history = build_chaos_golden()
    violations = history.validate()
    assert not violations, violations
    history.save(GOLDEN_HISTORY)
    GOLDEN_REPORT.write_text(render_report(history))
    print(f"wrote {GOLDEN_HISTORY} ({len(history)} events)")
    print(f"wrote {GOLDEN_REPORT}")
