"""Acceptance: every algorithm driver exports a loadable job history.

For each of the paper's three workloads, ``history_path=...`` must
produce a JSON history file whose per-phase durations sum (plus the
retry penalty) to the job's reported ``JobTiming`` — the accounting
contract in docs/OBSERVABILITY.md.
"""

import pytest

from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.algorithms.kmeans import run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job, sample_array
from repro.observability.history import load_history


def _assert_accounting(history):
    assert history.validate() == []
    for job in history.jobs():
        timing = history.job_finish(job).data["timing"]
        phases = history.phase_durations(job)
        assert sum(phases.values()) + timing["retry_penalty_s"] == pytest.approx(
            timing["total_s"]
        ), job


def test_sampling_history_export(small_array, runner, tmp_path):
    runner.hdfs.put_trace_array("traces", small_array)
    path = tmp_path / "sampling.json"
    result = run_sampling_job(
        runner, "traces", "out/sampled", window_s=60.0, history_path=path
    )
    history = load_history(path)
    assert history.jobs() == [result.job_name]
    _assert_accounting(history)
    timing = history.job_finish(result.job_name).data["timing"]
    assert timing["total_s"] == pytest.approx(result.timing.total_s)


def test_kmeans_history_export(small_array, runner, tmp_path):
    sampled = sample_array(small_array, 300.0)
    runner.hdfs.put_trace_array("traces", sampled)
    path = tmp_path / "kmeans.jsonl"
    result = run_kmeans_mapreduce(
        runner, "traces", k=3, max_iter=2, seed=5, workdir="w/km",
        history_path=path,
    )
    history = load_history(path)
    assert history.jobs() == [
        f"kmeans-iter-{i}" for i in range(1, result.n_iterations + 1)
    ]
    _assert_accounting(history)


def test_djcluster_history_export(small_array, runner, tmp_path):
    sampled = sample_array(small_array, 300.0)
    runner.hdfs.chunk_size = 64 * 500
    runner.hdfs.put_trace_array("traces", sampled)
    path = tmp_path / "dj.json"
    result = run_djcluster_mapreduce(
        runner, "traces", DJClusterParams(radius_m=80, min_pts=5),
        workdir="w/dj", history_path=path,
    )
    history = load_history(path)
    # Preprocessing pipeline (2 jobs) + neighborhood + merge stages.
    assert len(history.jobs()) >= 3
    _assert_accounting(history)
    notes = [e for e in history if e.kind == "driver_annotation"]
    assert notes and notes[-1].data["n_clusters"] == result.n_clusters
    pipelines = [e for e in history if e.kind == "pipeline_finish"]
    assert pipelines and pipelines[0].job == "dj-preprocessing"
