"""Shared fixture: one real traced deployment (sampling + k-means).

Module-scoped because the MR runs are the slow part; every test reads
the same immutable history.  A failure is injected for ``map-0001`` so
the attempt-ordering guarantees are exercised on a genuine retry.
"""

from __future__ import annotations

import pytest

from repro.algorithms.kmeans import run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.failures import FailureInjector
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner


@pytest.fixture(scope="module")
def traced_run():
    """(runner, sampling JobResult, kmeans result) of a traced deployment."""
    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=9))
    array = dataset.flat().sort_by_time()
    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", array, record_bytes=64)
    injector = FailureInjector(scripted={("map-0001", 1)})
    runner = JobRunner(hdfs, failure_injector=injector)
    sampling = run_sampling_job(
        runner, "input/traces", "out/sampled", window_s=60.0
    )
    kmeans = run_kmeans_mapreduce(
        runner, "input/traces", k=3, max_iter=2, seed=7,
        use_combiner=True, workdir="tmp/kmeans",
    )
    return runner, sampling, kmeans
