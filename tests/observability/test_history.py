"""Ordering guarantees, accounting invariants and on-disk round-trips.

These are the guarantees docs/OBSERVABILITY.md promises: every task
finish follows its start, failed attempts precede the successful
attempt, and per-phase durations reproduce the cost model's JobTiming.
They are checked on a *real* traced deployment (see conftest.py), not a
synthetic stream, so the runner's emission order is what is under test.
"""

import json

import pytest

from repro.observability.events import EventKind
from repro.observability.history import JobHistory, load_history


def _seq_of(history, job, kind, task=None):
    return [
        e.seq
        for e in history.events_for(job)
        if e.kind == kind and (task is None or e.task == task)
    ]


class TestOrderingGuarantees:
    def test_real_run_validates_clean(self, traced_run):
        runner, _, _ = traced_run
        assert runner.history.validate() == []

    def test_seq_strictly_increasing(self, traced_run):
        runner, _, _ = traced_run
        seqs = [e.seq for e in runner.history]
        assert seqs == sorted(seqs) and len(seqs) == len(set(seqs))

    def test_every_task_finish_follows_its_start(self, traced_run):
        runner, _, _ = traced_run
        history = runner.history
        for job in history.jobs():
            starts: dict[tuple, int] = {}
            for e in history.events_for(job):
                key = (e.task, bool(e.data.get("speculative")))
                if e.kind == EventKind.TASK_START:
                    starts[key] = e.seq
                elif e.kind == EventKind.TASK_FINISH:
                    assert key in starts, f"{job}/{e.task} finished unstarted"
                    assert e.seq > starts[key]

    def test_failed_attempts_precede_successful_attempt(self, traced_run):
        runner, _, _ = traced_run
        history = runner.history
        failures = [e for e in history if e.kind == EventKind.ATTEMPT_FAILED]
        assert failures, "injected failure produced no attempt_failed event"
        for failure in failures:
            (start,) = _seq_of(
                history, failure.job, EventKind.TASK_START, failure.task
            )
            (finish,) = _seq_of(
                history, failure.job, EventKind.TASK_FINISH, failure.task
            )
            assert start < failure.seq < finish
            # ... and on the simulated clock, not just in emission order.
            finish_e = next(
                e
                for e in history.events_for(failure.job)
                if e.kind == EventKind.TASK_FINISH and e.task == failure.task
            )
            assert failure.ts <= finish_e.ts

    def test_phases_bracket_their_tasks(self, traced_run):
        runner, _, _ = traced_run
        history = runner.history
        for job in history.jobs():
            events = history.events_for(job)
            start_seqs = [e.seq for e in events if e.kind == EventKind.PHASE_START]
            finish_seqs = [e.seq for e in events if e.kind == EventKind.PHASE_FINISH]
            assert len(start_seqs) == len(finish_seqs) >= 2  # setup + map


class TestAccounting:
    def test_sampling_phases_reproduce_job_timing(self, traced_run):
        runner, sampling, _ = traced_run
        phases = runner.history.phase_durations(sampling.job_name)
        t = sampling.timing
        assert phases["setup"] == pytest.approx(t.setup_s)
        assert phases["map"] == pytest.approx(t.map_s)
        # Map-only job: no reduce phase was emitted.
        assert "reduce" not in phases
        assert sum(phases.values()) + t.retry_penalty_s == pytest.approx(t.total_s)

    def test_every_job_sums_to_its_reported_timing(self, traced_run):
        runner, _, _ = traced_run
        history = runner.history
        for job in history.jobs():
            timing = history.job_finish(job).data["timing"]
            phases = history.phase_durations(job)
            assert sum(phases.values()) + timing["retry_penalty_s"] == pytest.approx(
                timing["total_s"]
            ), job

    def test_jobs_stack_on_cumulative_clock(self, traced_run):
        runner, _, _ = traced_run
        history = runner.history
        starts = [history.job_start(job).ts for job in history.jobs()]
        assert starts == sorted(starts)
        assert starts[1] > 0  # second job starts where the first ended
        assert history.clock >= history.events[-1].ts

    def test_kmeans_iterations_annotated(self, traced_run):
        runner, _, kmeans = traced_run
        notes = [
            e
            for e in runner.history
            if e.kind == EventKind.DRIVER_ANNOTATION
            and e.data.get("driver") == "kmeans"
        ]
        assert [n.data["iteration"] for n in notes] == list(
            range(1, kmeans.n_iterations + 1)
        )
        assert notes[-1].data["driver"] == "kmeans"
        # The sampling driver annotates its run too.
        sampling_notes = [
            e
            for e in runner.history
            if e.kind == EventKind.DRIVER_ANNOTATION
            and e.data.get("driver") == "sampling"
        ]
        assert len(sampling_notes) == 1

    def test_task_spans_are_well_formed(self, traced_run):
        runner, sampling, _ = traced_run
        spans = runner.history.task_spans(sampling.job_name)
        assert spans
        for span in spans:
            assert span.end >= span.start
            assert span.attempts >= 1
            assert span.node
            if span.phase == "map" and not span.speculative:
                assert span.locality in ("node_local", "rack_local", "remote")
        retried = [s for s in spans if s.attempts > 1]
        assert retried, "the injected failure should surface as attempts > 1"


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".json", ".jsonl"])
    def test_save_load_identity(self, traced_run, tmp_path, suffix):
        runner, _, _ = traced_run
        path = tmp_path / f"history{suffix}"
        runner.history.save(path)
        reloaded = load_history(path)
        assert [e.to_dict() for e in reloaded] == [
            e.to_dict() for e in runner.history
        ]
        assert reloaded.validate() == []
        assert reloaded.jobs() == runner.history.jobs()

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "events": []}))
        with pytest.raises(ValueError, match="unsupported history version"):
            load_history(path)

    def test_empty_jsonl_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty history"):
            load_history(path)


class TestValidateCatchesBadStreams:
    def test_finish_without_start(self):
        h = JobHistory()
        h.emit(EventKind.JOB_START, "j", 0.0)
        h.emit(EventKind.TASK_FINISH, "j", 1.0, task="map-0000", phase="map")
        h.emit(EventKind.JOB_FINISH, "j", 2.0)
        assert any("task_finish without start" in v for v in h.validate())

    def test_attempt_failed_after_finish(self):
        h = JobHistory()
        h.emit(EventKind.JOB_START, "j", 0.0)
        h.emit(EventKind.TASK_START, "j", 0.0, task="m", phase="map")
        h.emit(EventKind.TASK_FINISH, "j", 1.0, task="m", phase="map")
        h.emit(EventKind.ATTEMPT_FAILED, "j", 0.5, task="m", attempt=1)
        h.emit(EventKind.JOB_FINISH, "j", 2.0)
        assert any("attempt_failed after task_finish" in v for v in h.validate())

    def test_unfinished_job_flagged(self):
        h = JobHistory()
        h.emit(EventKind.JOB_START, "j", 0.0)
        assert any("never finished" in v for v in h.validate())

    def test_finish_timestamp_before_start_flagged(self):
        h = JobHistory()
        h.emit(EventKind.JOB_START, "j", 0.0)
        h.emit(EventKind.PHASE_START, "j", 5.0, phase="map")
        h.emit(EventKind.PHASE_FINISH, "j", 4.0, phase="map", duration_s=1.0)
        h.emit(EventKind.JOB_FINISH, "j", 6.0)
        assert any("finish ts precedes start" in v for v in h.validate())

    def test_advance_never_moves_backwards(self):
        h = JobHistory()
        h.advance(10.0)
        h.advance(5.0)
        assert h.clock == 10.0
