"""Unit tests for the event vocabulary and record format."""

import numpy as np
import pytest

from repro.observability.events import SCHEMA_VERSION, Event, EventKind, Phase


class TestEventKind:
    def test_vocabulary_is_closed_and_unique(self):
        kinds = EventKind.all()
        assert len(kinds) == len(set(kinds)) == 36
        assert "job_start" in kinds and "driver_annotation" in kinds
        assert "fault_injected" in kinds and "replica_healed" in kinds
        assert "spill_start" in kinds and "spill_merge" in kinds
        assert "job_submit" in kinds and "job_dispatch" in kinds
        assert "result_cache_hit" in kinds and "result_cache_store" in kinds
        assert "index_publish" in kinds and "index_reuse" in kinds
        assert "query_served" in kinds
        assert "window_open" in kinds and "watermark" in kinds
        assert "window_close" in kinds and "window_result" in kinds
        assert "attack_result" in kinds and "sweep_cell" in kinds

    def test_phase_order(self):
        assert Phase.ORDER == (Phase.SETUP, Phase.MAP, Phase.REDUCE)

    def test_schema_version(self):
        assert SCHEMA_VERSION == 1


class TestEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event(seq=0, ts=0.0, kind="task_exploded", job="j")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Event(seq=0, ts=-1.0, kind=EventKind.JOB_START, job="j")

    def test_to_dict_omits_empty_fields(self):
        e = Event(seq=3, ts=1.5, kind=EventKind.PHASE_START, job="j")
        d = e.to_dict()
        assert d == {"seq": 3, "ts": 1.5, "kind": "phase_start", "job": "j"}
        assert "task" not in d and "node" not in d and "data" not in d

    def test_round_trip(self):
        e = Event(
            seq=7, ts=12.25, kind=EventKind.TASK_FINISH, job="j",
            task="map-0001", node="worker02",
            data={"duration_s": 1.5, "attempts": 2},
        )
        assert Event.from_dict(e.to_dict()) == e

    def test_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="missing field"):
            Event.from_dict({"seq": 0, "ts": 0.0, "kind": "job_start"})

    def test_numpy_payload_coerced_to_json_safe(self):
        e = Event(
            seq=0, ts=0.0, kind=EventKind.SHUFFLE_TRANSFER, job="j",
            data={"bytes": np.int64(4096), "skew": np.float64(1.25)},
        )
        d = e.to_dict()["data"]
        assert type(d["bytes"]) is int and d["bytes"] == 4096
        assert type(d["skew"]) is float and d["skew"] == 1.25

    def test_timestamp_rounded_on_export(self):
        e = Event(seq=0, ts=1.23456789, kind=EventKind.JOB_START, job="j")
        assert e.to_dict()["ts"] == 1.234568
