"""Chaos-run histories: golden report, ordering + timing under recovery.

Two halves.  The golden half pins the exact ``repro history`` rendering
of a handcrafted chaos trace (``make_chaos_golden.py``) — fault events
in the Gantt, the recovery summary lines, the critical path through a
re-dispatched task.  The live half runs a *real* chaotic deployment and
checks the invariants the docs promise survive recovery: the event
stream validates, fault/retry events sit inside their task's span, and
per-phase durations plus the retry penalty still reproduce JobTiming.
"""


import pytest

from repro.observability.events import EventKind
from repro.observability.history import load_history
from repro.observability.report import render_report, summarize_job

from .make_chaos_golden import (
    GOLDEN_HISTORY,
    GOLDEN_REPORT,
    JOB,
    build_chaos_golden,
)


@pytest.fixture(scope="module")
def golden():
    return load_history(GOLDEN_HISTORY)


class TestGoldenChaosTrace:
    def test_golden_in_sync_with_generator(self):
        import json

        assert json.loads(GOLDEN_HISTORY.read_text()) == (
            build_chaos_golden().to_json_obj()
        )

    def test_golden_report_in_sync(self, golden):
        assert render_report(golden) == GOLDEN_REPORT.read_text()

    def test_golden_is_valid(self, golden):
        assert golden.validate() == []

    def test_recovery_lines_rendered(self):
        text = GOLDEN_REPORT.read_text()
        assert "faults injected: node_loss x1, task_crash x2" in text
        assert "backoff +4.0s" in text
        assert "node loss: worker01 (2 replicas healed" in text
        assert "blacklisted: worker01" in text
        assert "shuffle refetch: 1 fetch(es)" in text

    def test_retried_tasks_marked_in_gantt(self):
        text = GOLDEN_REPORT.read_text()
        for task in ("map-0001", "map-0002", "reduce-0001"):
            (line,) = [ln for ln in text.splitlines() if ln.lstrip().startswith(task)]
            assert "x2 attempts" in line

    def test_summary_chaos_metrics(self, golden):
        s = summarize_job(golden, JOB)
        assert s.faults == {"node_loss": 1, "task_crash": 2}
        assert s.backoff_s == pytest.approx(4.0)
        assert s.nodes_lost == ["worker01"]
        assert s.nodes_blacklisted == ["worker01"]
        assert s.replicas_healed == 2
        assert s.shuffle_refetches == 1
        assert s.refetched_bytes == 1500


@pytest.fixture(scope="module")
def chaotic_run():
    """A real traced deployment under a seeded chaos schedule."""
    from repro.algorithms.sampling import run_sampling_job
    from repro.attacks.mmc_mr import run_mmc_mapreduce
    from repro.geo.synthetic import SyntheticConfig, generate_dataset
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.failures import ChaosSchedule
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.runner import JobRunner

    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=9))
    array = dataset.flat().sort_by_time()
    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", array, record_bytes=64)
    chaos = ChaosSchedule(
        seed=11, crash_prob=0.15, shuffle_fetch_prob=0.3, node_loss_prob=1.0
    )
    runner = JobRunner(hdfs, chaos=chaos)
    sampling = run_sampling_job(runner, "input/traces", "out/sampled", window_s=60.0)
    from repro.algorithms.kmeans import kmeans_sequential

    pois = kmeans_sequential(array.coordinates(), k=3, seed=0).centroids
    run_mmc_mapreduce(runner, "input/traces", pois, output_path="tmp/models")
    return runner, sampling


class TestLiveChaosInvariants:
    def test_history_validates_under_recovery(self, chaotic_run):
        runner, _ = chaotic_run
        assert runner.history.validate() == []

    def test_chaos_events_present(self, chaotic_run):
        runner, _ = chaotic_run
        kinds = {e.kind for e in runner.history}
        assert EventKind.FAULT_INJECTED in kinds
        assert EventKind.ATTEMPT_RETRIED in kinds
        assert EventKind.NODE_LOST in kinds

    def test_fault_events_sit_inside_their_task_span(self, chaotic_run):
        runner, _ = chaotic_run
        history = runner.history
        for job in history.jobs():
            bounds = {}
            for e in history.events_for(job):
                if e.kind == EventKind.TASK_START:
                    bounds.setdefault(e.task, [e.seq, None])
                elif e.kind == EventKind.TASK_FINISH and e.task in bounds:
                    bounds[e.task][1] = e.seq
            for e in history.events_for(job):
                if e.kind in (EventKind.FAULT_INJECTED, EventKind.ATTEMPT_RETRIED):
                    start, finish = bounds[e.task]
                    assert start < e.seq < finish

    def test_phase_durations_reproduce_timing_under_retries(self, chaotic_run):
        runner, sampling = chaotic_run
        assert sampling.timing.retry_penalty_s > 0
        for job in runner.history.jobs():
            timing = runner.history.job_finish(job).data["timing"]
            phases = runner.history.phase_durations(job)
            assert sum(phases.values()) + timing["retry_penalty_s"] == pytest.approx(
                timing["total_s"]
            ), job

    def test_report_renders_recovery_sections(self, chaotic_run):
        runner, _ = chaotic_run
        text = render_report(runner.history)
        assert "faults injected:" in text
        assert "node loss:" in text

    def test_roundtrip_preserves_chaos_events(self, chaotic_run, tmp_path):
        runner, _ = chaotic_run
        path = tmp_path / "chaos.jsonl"
        runner.history.save(path)
        reloaded = load_history(path)
        assert [e.to_dict() for e in reloaded] == [
            e.to_dict() for e in runner.history
        ]
        assert reloaded.validate() == []
