"""Regenerates ``golden_history.json`` (checked in next to this file).

The golden trace is a small handcrafted job exercising every report
feature at once: a retried task, a straggler with a speculative copy,
skewed shuffle transfers and a combiner.  Regenerate with::

    PYTHONPATH=src python tests/observability/make_golden.py

and review the diff — the CLI tests assert against this file's content.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory

GOLDEN = Path(__file__).parent / "golden_history.json"
JOB = "poi-extraction"


def build_golden() -> JobHistory:
    h = JobHistory()
    K = EventKind
    h.emit(
        K.JOB_START, JOB, 0.0,
        input_paths=["input/traces"], output_path="out/pois",
        n_chunks=4, map_only=False, num_reducers=2, combiner=True,
    )
    h.emit(K.PHASE_START, JOB, 0.0, phase=Phase.SETUP)
    h.emit(K.CACHE_LOAD, JOB, 0.0, entries=["rtree.index"], nbytes=4096,
           broadcast_s=0.5)
    h.emit(K.PHASE_FINISH, JOB, 25.0, phase=Phase.SETUP, duration_s=25.0)

    h.emit(K.PHASE_START, JOB, 25.0, phase=Phase.MAP)
    # map-0000: clean node-local task.
    h.emit(K.TASK_START, JOB, 25.0, task="map-0000", node="worker00",
           phase=Phase.MAP, locality="node_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.TASK_FINISH, JOB, 35.0, task="map-0000", node="worker00",
           phase=Phase.MAP, duration_s=10.0, attempts=1, wasted_s=0.0,
           locality="node_local")
    # map-0001: first attempt crashes, retry succeeds.
    h.emit(K.TASK_START, JOB, 25.0, task="map-0001", node="worker01",
           phase=Phase.MAP, locality="node_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.ATTEMPT_FAILED, JOB, 35.0, task="map-0001", node="worker01",
           attempt=1, reason="injected crash")
    h.emit(K.TASK_FINISH, JOB, 45.0, task="map-0001", node="worker01",
           phase=Phase.MAP, duration_s=10.0, attempts=2, wasted_s=10.0,
           locality="node_local")
    # map-0002: rack-local straggler, speculatively duplicated.
    h.emit(K.TASK_START, JOB, 25.0, task="map-0002", node="worker02",
           phase=Phase.MAP, locality="rack_local",
           input_bytes=65536, input_records=1024)
    h.emit(K.SPECULATIVE_LAUNCH, JOB, 40.0, task="map-0002", node="worker03",
           original_node="worker02", duration_s=10.0)
    h.emit(K.TASK_START, JOB, 40.0, task="map-0002", node="worker03",
           phase=Phase.MAP, locality="remote", speculative=True,
           input_bytes=65536, input_records=1024)
    h.emit(K.TASK_FINISH, JOB, 50.0, task="map-0002", node="worker03",
           phase=Phase.MAP, duration_s=10.0, attempts=1, wasted_s=0.0,
           locality="remote", speculative=True)
    h.emit(K.TASK_FINISH, JOB, 55.0, task="map-0002", node="worker02",
           phase=Phase.MAP, duration_s=30.0, attempts=1, wasted_s=0.0,
           locality="rack_local")
    h.emit(K.PHASE_FINISH, JOB, 55.0, phase=Phase.MAP, duration_s=30.0)

    # Skewed shuffle: reducer 1 receives 3x the bytes of reducer 0.
    h.emit(K.SHUFFLE_TRANSFER, JOB, 55.0, task="reduce-0000",
           reducer="reduce-0000", bytes=2000, records=100, groups=10)
    h.emit(K.SHUFFLE_TRANSFER, JOB, 55.0, task="reduce-0001",
           reducer="reduce-0001", bytes=6000, records=300, groups=30)

    h.emit(K.PHASE_START, JOB, 55.0, phase=Phase.REDUCE)
    h.emit(K.TASK_START, JOB, 55.0, task="reduce-0000", node="worker00",
           phase=Phase.REDUCE, input_records=100)
    h.emit(K.TASK_FINISH, JOB, 60.0, task="reduce-0000", node="worker00",
           phase=Phase.REDUCE, duration_s=5.0, attempts=1, wasted_s=0.0)
    h.emit(K.TASK_START, JOB, 55.0, task="reduce-0001", node="worker01",
           phase=Phase.REDUCE, input_records=300)
    h.emit(K.TASK_FINISH, JOB, 65.0, task="reduce-0001", node="worker01",
           phase=Phase.REDUCE, duration_s=10.0, attempts=1, wasted_s=0.0)
    h.emit(K.PHASE_FINISH, JOB, 65.0, phase=Phase.REDUCE, duration_s=10.0)

    h.emit(
        K.JOB_FINISH, JOB, 75.0,
        timing={"setup_s": 25.0, "map_s": 30.0, "reduce_s": 10.0,
                "retry_penalty_s": 10.0, "total_s": 75.0},
        counters={
            "task": {
                "map_input_records": 3072,
                "map_output_records": 3072,
                "combine_input_records": 3072,
                "combine_output_records": 400,
                "reduce_input_records": 400,
                "reduce_output_records": 40,
                "shuffle_bytes": 8000,
            },
            "scheduler": {
                "data_local_maps": 2,
                "rack_local_maps": 1,
                "failed_tasks": 1,
                "speculative_tasks": 1,
            },
        },
        n_map_tasks=3, n_reduce_tasks=2, output_path="out/pois",
    )
    h.advance(75.0)
    return h


if __name__ == "__main__":
    history = build_golden()
    violations = history.validate()
    assert not violations, violations
    history.save(GOLDEN)
    print(f"wrote {GOLDEN} ({len(history)} events)")
