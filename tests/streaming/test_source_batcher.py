"""The streaming data plane: feed cutting, watermarks, feed chaos.

Pins down the :class:`StreamSource`/:class:`MicroBatcher` contract the
equivalence suite relies on: batches are a pure function of (corpus,
window size, chaos seed); late batches land in the next window's dataset
and are counted against it; lost batches are counted against their event
window; duplicates are dropped by ``(feed, window)`` identity; and the
sealed dataset's bytes are canonical regardless of delivery order.
"""

import numpy as np
import pytest

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.failures import ChaosSchedule, Fault, FaultKind
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.observability.events import EventKind
from repro.observability.history import JobHistory
from repro.streaming import MicroBatcher, StreamSource

WINDOW_S = 3 * 3600.0


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=7))
    return dataset.flat()


def fresh_hdfs():
    return SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)


class TestStreamSource:
    def test_batches_partition_the_corpus(self, corpus):
        source = StreamSource(corpus, WINDOW_S)
        assert source.total_points == len(corpus)
        assert sum(len(b) for b in source.batches) == len(corpus)
        assert source.lost_points == 0
        for batch in source.batches:
            t0, t1 = source.window_bounds(batch.window)
            assert batch.arrival_window == batch.window
            assert (batch.points.timestamp >= t0).all()
            assert (batch.points.timestamp < t1).all()
            # Slices keep the corpus-wide user table; the rows themselves
            # must all belong to the batch's feed.
            assert set(batch.points.user_ids()) == {batch.feed}

    def test_cut_is_deterministic_and_order_insensitive(self, corpus):
        a = StreamSource(corpus, WINDOW_S)
        # Same corpus delivered in scrambled construction order: the
        # canonical (user, time) sort erases it.
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(corpus))
        scrambled = TraceArray.from_columns(
            corpus.user_ids()[perm],
            corpus.latitude[perm],
            corpus.longitude[perm],
            corpus.timestamp[perm],
            corpus.altitude[perm],
        )
        b = StreamSource(scrambled, WINDOW_S)
        assert len(a.batches) == len(b.batches)
        for x, y in zip(a.batches, b.batches):
            assert (x.feed, x.window, x.arrival_window) == (
                y.feed, y.window, y.arrival_window
            )
            assert np.array_equal(x.points.timestamp, y.points.timestamp)

    def test_scripted_late_batch_arrives_next_window(self, corpus):
        feed = sorted(set(corpus.users))[0]
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.LATE_BATCH, feed=feed, window=0),)
        )
        source = StreamSource(corpus, WINDOW_S, chaos=chaos)
        late = [b for b in source.batches if b.late]
        assert [(b.feed, b.window) for b in late] == [(feed, 0)]
        assert late[0].arrival_window == 1
        assert not any(b is late[0] for b in source.arrivals(0))
        assert any(b is late[0] for b in source.arrivals(1))

    def test_scripted_lost_batch_is_counted_not_delivered(self, corpus):
        feed = sorted(set(corpus.users))[0]
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.LOST_BATCH, feed=feed, window=0),)
        )
        source = StreamSource(corpus, WINDOW_S, chaos=chaos)
        assert not any(
            b.feed == feed and b.window == 0 for b in source.batches
        )
        assert source.lost_points > 0
        assert source.lost_by_window[0] == source.lost_points
        assert source.total_points == len(corpus)

    def test_duplicate_batch_delivered_twice(self, corpus):
        feed = sorted(set(corpus.users))[0]
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.DUP_BATCH, feed=feed, window=0),)
        )
        source = StreamSource(corpus, WINDOW_S, chaos=chaos)
        copies = [
            b for b in source.batches if b.feed == feed and b.window == 0
        ]
        assert len(copies) == 2
        assert [b.duplicate for b in copies] == [False, True]

    def test_late_batch_extends_the_window_horizon(self, corpus):
        clean = StreamSource(corpus, WINDOW_S)
        last = clean.n_event_windows - 1
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.LATE_BATCH, window=last),)
        )
        late = StreamSource(corpus, WINDOW_S, chaos=chaos)
        assert late.n_windows == clean.n_event_windows + 1

    def test_empty_corpus(self):
        source = StreamSource(TraceArray.empty(), WINDOW_S)
        assert source.n_windows == 0
        assert source.batches == []

    def test_window_s_validated(self, corpus):
        with pytest.raises(ValueError, match="window_s"):
            StreamSource(corpus, 0.0)


class TestMicroBatcher:
    def test_sealed_windows_are_canonical_and_complete(self, corpus):
        source = StreamSource(corpus, WINDOW_S)
        hdfs = fresh_hdfs()
        batcher = MicroBatcher(hdfs)
        datasets = batcher.run(source)
        assert len(datasets) == source.n_windows
        assert sum(d.n_points for d in datasets) == len(corpus)
        for dataset in datasets:
            array = hdfs.read_trace_array(dataset.path)
            assert len(array) == dataset.n_points
            # Canonical order: the dataset is (user, time)-sorted.
            resorted = array.sort_by_time().compact()
            assert np.array_equal(array.timestamp, resorted.timestamp)
            assert np.array_equal(array.user_index, resorted.user_index)

    def test_late_points_move_to_next_window_dataset(self, corpus):
        feed = sorted(set(corpus.users))[0]
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.LATE_BATCH, feed=feed, window=0),)
        )
        source = StreamSource(corpus, WINDOW_S, chaos=chaos)
        moved = len(source.arrivals(1)[0].points)
        hdfs = fresh_hdfs()
        datasets = MicroBatcher(hdfs).run(source)
        clean = MicroBatcher(fresh_hdfs())
        clean_datasets = clean.run(StreamSource(corpus, WINDOW_S))
        assert datasets[0].n_points == clean_datasets[0].n_points - moved
        assert datasets[1].n_points == clean_datasets[1].n_points + moved
        assert datasets[1].late_points == moved
        # Nothing is lost overall: the points moved, they didn't vanish.
        assert sum(d.n_points for d in datasets) == len(corpus)

    def test_duplicates_do_not_change_dataset_bytes(self, corpus):
        feed = sorted(set(corpus.users))[0]
        chaos = ChaosSchedule(
            seed=1, faults=(Fault(FaultKind.DUP_BATCH, feed=feed, window=0),)
        )
        hdfs_dup, hdfs_clean = fresh_hdfs(), fresh_hdfs()
        dup = MicroBatcher(hdfs_dup).run(
            StreamSource(corpus, WINDOW_S, chaos=chaos)
        )
        clean = MicroBatcher(hdfs_clean).run(StreamSource(corpus, WINDOW_S))
        assert dup[0].dup_points == len(
            [b for b in StreamSource(corpus, WINDOW_S).batches
             if b.feed == feed and b.window == 0][0].points
        )
        for d, c in zip(dup, clean):
            a = hdfs_dup.read_trace_array(d.path)
            b = hdfs_clean.read_trace_array(c.path)
            assert np.array_equal(a.timestamp, b.timestamp)
            assert np.array_equal(a.latitude, b.latitude)

    def test_window_events_emitted_in_order(self, corpus):
        source = StreamSource(corpus, WINDOW_S)
        history = JobHistory()
        MicroBatcher(fresh_hdfs(), history=history).run(source)
        kinds = [
            e.kind
            for e in history.events
            if e.kind in (
                EventKind.WINDOW_OPEN,
                EventKind.WATERMARK,
                EventKind.WINDOW_CLOSE,
            )
        ]
        expected = [
            EventKind.WINDOW_OPEN, EventKind.WATERMARK, EventKind.WINDOW_CLOSE
        ] * source.n_windows
        assert kinds == expected
        # The watermark of window w is its end bound: everything below it
        # is delivered, counted late, or counted lost once w closes.
        marks = [
            e for e in history.events if e.kind == EventKind.WATERMARK
        ]
        for w, event in enumerate(marks):
            assert event.data["watermark"] == source.window_bounds(w)[1]
