"""Warm-started incremental k-means on a stationary stream.

On a corpus whose users shuttle between fixed anchors (every window has
the same spatial structure), warm-starting each window's k-means from
the previous window's centroids must (a) spend strictly fewer total
Lloyd iterations than cold random restarts, (b) agree byte-for-byte on
window 0 (nothing to warm-start from — both runs are cold there), and
(c) land on exact Lloyd fixed points from window 1 on: one more
assignment/update step moves no centroid.  Cold restarts land in
*different local optima* window to window, so fixed-point convergence —
not centroid equality — is the correctness bar for the warm chain.

Warm starting only changes the k-means init; sampling and DJ-Cluster
outputs must be byte-identical between the two runs.
"""

import numpy as np
import pytest

from repro.mapreduce.bench import synthetic_stream_corpus
from repro.streaming.check import run_stream

WINDOW_S = 3600.0
KW = dict(k=8, max_iter=25, seed=0, sampling_window_s=600.0)


@pytest.fixture(scope="module")
def runs():
    corpus = synthetic_stream_corpus(
        20_000, n_users=20, n_windows=10, window_s=WINDOW_S, seed=0
    )
    warm = run_stream(corpus, WINDOW_S, mode="runner", warm_start=True, **KW)
    cold = run_stream(corpus, WINDOW_S, mode="runner", warm_start=False, **KW)
    return corpus, warm, cold


def _lloyd_step(points: np.ndarray, centroids: np.ndarray) -> float:
    """Largest centroid displacement (degrees) after one Lloyd step."""
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    assign = d2.argmin(axis=1)
    moved = centroids.copy()
    for j in range(len(centroids)):
        members = points[assign == j]
        if len(members):
            moved[j] = members.mean(axis=0)
    return float(np.abs(moved - centroids).max())


def test_warm_start_saves_iterations(runs):
    _, warm, cold = runs
    assert warm.total_kmeans_iterations < cold.total_kmeans_iterations
    assert warm.total_kmeans_iterations > 0


def test_window_zero_is_byte_identical(runs):
    # No previous centroids exist at window 0: warm and cold runs are the
    # same cold start and must agree exactly.
    _, warm, cold = runs
    assert np.array_equal(warm.results[0].centroids, cold.results[0].centroids)
    assert warm.results[0].signature() == cold.results[0].signature()


def test_warm_windows_are_lloyd_fixed_points(runs):
    corpus, warm, _ = runs
    ts = corpus.timestamp
    base = np.floor(ts.min() / WINDOW_S)
    win = (np.floor(ts / WINDOW_S) - base).astype(np.int64)
    checked = 0
    for r in warm.results[1:]:
        if r.centroids is None:
            continue
        mask = win == r.window.index
        points = np.column_stack((corpus.latitude[mask], corpus.longitude[mask]))
        assert _lloyd_step(points, r.centroids) < 1e-6, (
            f"window {r.window.index} centroids are not a Lloyd fixed point"
        )
        checked += 1
    assert checked >= 5


def test_everything_converged(runs):
    _, warm, cold = runs
    for run in (warm, cold):
        for r in run.results:
            if r.centroids is not None:
                assert r.converged


def test_warm_start_only_affects_kmeans(runs):
    _, warm, cold = runs
    assert len(warm.results) == len(cold.results)
    for w, c in zip(warm.results, cold.results):
        assert w.sampled_signature == c.sampled_signature
        assert w.n_pois == c.n_pois
        assert w.risk == c.risk
