"""The streaming invariant: stream == batch, byte for byte, under chaos.

hypothesis draws seeded chaos schedules mixing *engine* faults (task
crashes, stragglers, shuffle failures) with *feed* faults (late, lost,
duplicate micro-batches) and asserts that a streaming run through the
multi-tenant JobService is byte-identical to the equivalent batch-job
sequence — on every execution backend, with and without a memory
budget.  A schedule aggressive enough to exhaust a task's retry budget
must fail *cleanly* (:class:`JobFailedError` carrying the full failure
chain) in whichever mode it strikes, never corrupt output.

Each example is two full simulated deployments, so the example counts
are deliberately small; schedules are seeded and replay exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.failures import ChaosSchedule, Fault, FaultKind, JobFailedError
from repro.streaming.check import run_multitenant_stream, run_stream

MAX_EXAMPLES = 2
WINDOW_S = 3 * 3600.0

MANAGER_KWARGS = dict(k=3, max_iter=6, sampling_window_s=1800.0)


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=42))
    return dataset.flat()


feed_faults = st.lists(
    st.builds(
        Fault,
        kind=st.sampled_from(
            [FaultKind.LATE_BATCH, FaultKind.LOST_BATCH, FaultKind.DUP_BATCH]
        ),
        feed=st.one_of(st.none(), st.sampled_from(["000", "001", "002"])),
        window=st.one_of(st.none(), st.integers(0, 2)),
    ),
    max_size=3,
).map(tuple)

schedules = st.builds(
    ChaosSchedule,
    seed=st.integers(0, 2**32 - 1),
    crash_prob=st.sampled_from([0.0, 0.1]),
    slow_node_prob=st.sampled_from([0.0, 0.3]),
    late_batch_prob=st.sampled_from([0.0, 0.3]),
    lost_batch_prob=st.sampled_from([0.0, 0.2]),
    dup_batch_prob=st.sampled_from([0.0, 0.3]),
    faults=feed_faults,
)


def _run(corpus, schedule, **kwargs):
    """(signature, None) on success, (None, error) on a clean failure."""
    try:
        result = run_stream(
            corpus, WINDOW_S, chaos=schedule, **kwargs, **MANAGER_KWARGS
        )
    except JobFailedError as err:
        # Clean failure contract: the full per-attempt chain survives.
        assert len(err.failures) == err.max_attempts
        assert err.failure_chain
        return None, err
    return result.signature(), None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("budget_mb", [None, 8.0], ids=["unbudgeted", "budget8"])
@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(schedule=schedules)
def test_stream_equals_batch_under_chaos(corpus, backend, budget_mb, schedule):
    workers = None if backend == "serial" else 2
    batch_sig, batch_err = _run(
        corpus, schedule, mode="runner", executor="serial",
        memory_budget_mb=budget_mb,
    )
    stream_sig, stream_err = _run(
        corpus, schedule, mode="service", executor=backend,
        max_workers=workers, memory_budget_mb=budget_mb,
    )
    if batch_err is not None or stream_err is not None:
        # A schedule that kills one mode must kill the other: both modes
        # run the identical job sequence against the same chaos seed.
        assert batch_err is not None and stream_err is not None
        return
    assert stream_sig == batch_sig, (
        f"streaming diverged from the batch sequence under "
        f"[{schedule.describe()}] on backend {backend} "
        f"(budget={budget_mb})"
    )


def test_feed_chaos_changes_results_but_not_equivalence(corpus):
    """Late/lost reroutes must show up in the outputs (different window
    datasets) while both modes still agree on what they are."""
    chaos = ChaosSchedule(
        seed=9,
        late_batch_prob=0.4,
        lost_batch_prob=0.2,
        faults=(Fault(FaultKind.LATE_BATCH, window=0),),
    )
    clean = run_stream(corpus, WINDOW_S, mode="runner", **MANAGER_KWARGS)
    chaotic = run_stream(
        corpus, WINDOW_S, mode="runner", chaos=chaos, **MANAGER_KWARGS
    )
    assert chaotic.late_points + chaotic.lost_points > 0
    assert chaotic.signature() != clean.signature()
    replay = run_stream(
        corpus, WINDOW_S, mode="service", chaos=chaos, **MANAGER_KWARGS
    )
    assert replay.signature() == chaotic.signature()


def test_multitenant_streams_are_fair_and_complete(corpus):
    """Two tenants' interleaved windows through one service: every
    window processed, per-tenant feeds disjoint, fair-share accounted."""
    results, report = run_multitenant_stream(
        corpus, WINDOW_S, {"alice": 1.0, "bob": 1.0}, **MANAGER_KWARGS
    )
    assert set(results) == {"alice", "bob"}
    total_points = sum(
        sum(d.n_points for d in r.datasets) for r in results.values()
    )
    assert total_points == len(corpus)
    for r in results.values():
        assert len(r.results) == len(r.datasets) > 0
    assert set(report.tenants) == {"alice", "bob"}
