"""Unit tests for semantic-trajectory labelling."""

import numpy as np
import pytest

from repro.attacks.semantics import label_places, semantic_trail
from repro.geo.trace import TraceArray


DAY = 86400.0
# A Monday 00:00 UTC anchor (1970-01-05 was a Monday).
MONDAY = 4 * DAY


def _visits(spec, user="u"):
    """Build traces from (lat, lon, start_ts, duration_s) dwell visits."""
    lat, lon, ts = [], [], []
    for vlat, vlon, start, duration in spec:
        steps = max(int(duration / 60.0), 12)
        for k in range(steps):
            lat.append(vlat)
            lon.append(vlon)
            ts.append(start + k * (duration / steps))
    order = np.argsort(ts)
    return TraceArray.from_columns(
        [user], np.array(lat)[order], np.array(lon)[order], np.array(ts)[order]
    )


HOME = (39.90, 116.40)
WORK = (39.95, 116.50)
CAFE = (39.92, 116.45)
BAR = (39.88, 116.35)


def _week_schedule():
    """Mon-Fri: home nights, work days, weekday lunches; Sat: bar."""
    spec = []
    for day in range(5):  # Mon..Fri
        base = MONDAY + day * DAY
        spec.append((*HOME, base + 0 * 3600, 6 * 3600))      # 00:00-06:00 home
        spec.append((*WORK, base + 9 * 3600, 3 * 3600))      # 09:00-12:00 work
        spec.append((*CAFE, base + 12 * 3600, 0.75 * 3600))  # 12:00 lunch
        spec.append((*WORK, base + 13 * 3600, 4 * 3600))     # 13:00-17:00 work
        spec.append((*HOME, base + 22 * 3600, 2 * 3600))     # 22:00 home
    saturday = MONDAY + 5 * DAY
    spec.append((*BAR, saturday + 20 * 3600, 3 * 3600))      # Sat night out
    return _visits(spec)


class TestLabelling:
    @pytest.fixture(scope="class")
    def labelled(self):
        return label_places(_week_schedule(), min_stay_s=600)

    def test_home_and_work_found(self, labelled):
        places, _ = labelled
        labels = {p.label for p in places}
        assert "home" in labels
        assert "work" in labels

    def test_home_is_at_home(self, labelled):
        from repro.geo.distance import haversine_m

        places, _ = labelled
        home = next(p for p in places if p.label == "home")
        assert float(haversine_m(home.latitude, home.longitude, *HOME)) < 100

    def test_work_is_at_work(self, labelled):
        from repro.geo.distance import haversine_m

        places, _ = labelled
        work = next(p for p in places if p.label == "work")
        assert float(haversine_m(work.latitude, work.longitude, *WORK)) < 100

    def test_lunch_spot_labelled(self, labelled):
        from repro.geo.distance import haversine_m

        places, _ = labelled
        cafe = min(
            places,
            key=lambda p: float(haversine_m(p.latitude, p.longitude, *CAFE)),
        )
        assert cafe.label == "lunch"

    def test_weekend_bar_is_leisure(self, labelled):
        from repro.geo.distance import haversine_m

        places, _ = labelled
        bar = min(
            places,
            key=lambda p: float(haversine_m(p.latitude, p.longitude, *BAR)),
        )
        assert bar.label == "leisure"

    def test_at_most_one_home_one_work(self, labelled):
        places, _ = labelled
        labels = [p.label for p in places]
        assert labels.count("home") == 1
        assert labels.count("work") <= 1

    def test_visits_reference_places_in_time_order(self, labelled):
        places, visits = labelled
        assert visits
        starts = [v.start_ts for v in visits]
        assert starts == sorted(starts)
        for v in visits:
            assert 0 <= v.place_index < len(places)
            assert v.label == places[v.place_index].label

    def test_visit_counts_match(self, labelled):
        places, visits = labelled
        assert sum(p.n_visits for p in places) == len(visits)


class TestDayEndpointHomeHeuristic:
    def test_home_found_without_overnight_logging(self):
        """Loggers off overnight: home has no night traces but opens and
        closes every day — the endpoint heuristic must still find it."""
        spec = []
        for day in range(4):
            base = MONDAY + day * DAY
            spec.append((*HOME, base + 7 * 3600, 1 * 3600))   # morning at home
            spec.append((*WORK, base + 9 * 3600, 7 * 3600))   # long work day
            spec.append((*HOME, base + 18 * 3600, 2 * 3600))  # evening at home
        places, _ = label_places(_visits(spec), min_stay_s=600)
        home = next(p for p in places if p.label == "home")
        from repro.geo.distance import haversine_m

        assert float(haversine_m(home.latitude, home.longitude, *HOME)) < 100
        assert home.night_fraction == 0.0  # the signal came from endpoints
        assert home.day_endpoint_fraction > 0.8

    def test_home_recovered_on_synthetic_user(self, small_corpus):
        from repro.geo.distance import haversine_m

        dataset, users = small_corpus
        user = users[0]
        places, _ = label_places(dataset.trail(user.user_id), min_stay_s=600)
        homes = [p for p in places if p.label == "home"]
        assert len(homes) == 1
        assert (
            float(
                haversine_m(
                    homes[0].latitude,
                    homes[0].longitude,
                    user.home.latitude,
                    user.home.longitude,
                )
            )
            < 150
        )


class TestSemanticTrail:
    def test_label_sequence(self):
        seq = semantic_trail(_week_schedule(), min_stay_s=600)
        assert seq.count("home") >= 5
        assert seq.count("work") >= 5
        assert "lunch" in seq

    def test_empty_trail(self):
        assert semantic_trail(TraceArray.empty()) == []
