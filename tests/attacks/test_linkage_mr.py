"""Tests for the MapReduce linkage attack (repro.attacks.linkage_mr)."""

import math

import numpy as np
import pytest

from repro.attacks.linkage_mr import (
    SYNTH_ATTACK_PARAMS,
    blocking_cell,
    cover_cells,
    deanonymization_attack_reference,
    linkage_signature,
    run_linkage_attack,
    split_linkage_corpus,
    synthetic_linkage_corpus,
)
from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.observability.events import EventKind

D = 500.0


def _deployment(train, target, *, chunk_size=16 * 1024, budget_mb=None, executor="serial"):
    hdfs = SimulatedHDFS(
        paper_cluster(3), chunk_size=chunk_size, seed=0, memory_budget_mb=budget_mb
    )
    hdfs.put_trace_array("input/train", train, record_bytes=64)
    hdfs.put_trace_array("input/target", target, record_bytes=64)
    return JobRunner(hdfs, executor=executor, memory_budget_mb=budget_mb)


class TestBlockingGeometry:
    def test_cell_is_deterministic_int_pair(self):
        cell = blocking_cell(48.85, 2.35, D)
        assert isinstance(cell, tuple) and len(cell) == 2
        assert all(isinstance(c, int) for c in cell)
        assert cell == blocking_cell(48.85, 2.35, D)

    def test_cover_contains_own_cell(self):
        for lat, lon in [(0.0, 0.0), (48.85, 2.35), (-33.9, 151.2), (64.1, -21.9)]:
            assert blocking_cell(lat, lon, D) in cover_cells(lat, lon, D)

    def test_cover_never_drops_a_nearby_point(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            lat = float(rng.uniform(-84.0, 84.0))
            lon = float(rng.uniform(-180.0, 180.0))
            # A point on the edge of the match radius, any bearing.
            bearing = float(rng.uniform(0, 2 * math.pi))
            frac = float(rng.uniform(0.0, 1.0))
            dlat = math.degrees(frac * D * math.cos(bearing) / 6_371_008.8)
            dlon = math.degrees(
                frac * D * math.sin(bearing)
                / (6_371_008.8 * max(math.cos(math.radians(lat)), 1e-9))
            )
            plat, plon = lat + dlat, lon + dlon
            if plon > 180.0:
                plon -= 360.0
            if plon < -180.0:
                plon += 360.0
            if haversine_m(lat, lon, plat, plon) > D:
                continue
            assert blocking_cell(plat, plon, D) in cover_cells(lat, lon, D)

    def test_polar_caps_collapse_to_one_cell(self):
        assert blocking_cell(89.0, 10.0, D) == blocking_cell(86.0, -170.0, D)
        assert blocking_cell(-89.0, 10.0, D) != blocking_cell(89.0, 10.0, D)

    def test_antimeridian_cover_wraps(self):
        cover = cover_cells(10.0, 179.999, D)
        assert blocking_cell(10.0, -179.999, D) in cover


class TestEquivalence:
    @pytest.fixture(scope="class")
    def corpus(self):
        return synthetic_linkage_corpus(10, seed=21)

    @pytest.fixture(scope="class")
    def reference(self, corpus):
        train, target, truth = corpus
        return deanonymization_attack_reference(
            train, target, truth, params=SYNTH_ATTACK_PARAMS
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mr_equals_serial_on_every_backend(self, corpus, reference, backend):
        train, target, truth = corpus
        runner = _deployment(train, target, executor=backend)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
        finally:
            runner.close()
        assert outcome.signature() == linkage_signature(reference)
        assert outcome.result.linkage == reference.linkage
        assert outcome.result.scores == reference.scores

    def test_mr_equals_serial_under_memory_budget(self, corpus, reference):
        train, target, truth = corpus
        runner = _deployment(train, target, budget_mb=4.0)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
        finally:
            runner.close()
        assert outcome.signature() == linkage_signature(reference)

    def test_audit_proves_blocking_lossless(self, corpus):
        train, target, truth = corpus
        runner = _deployment(train, target)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
        finally:
            runner.close()
        assert outcome.pairs_exact is not None
        assert outcome.blocking_exact is True
        assert outcome.pairs_scored == outcome.pairs_exact
        assert outcome.pairs_scored < outcome.cross_product

    def test_attack_result_event_emitted(self, corpus):
        train, target, truth = corpus
        runner = _deployment(train, target)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
            events = [
                e
                for e in runner.history.events
                if e.kind == EventKind.ATTACK_RESULT
            ]
        finally:
            runner.close()
        assert len(events) == 1
        data = events[0].data
        assert data["signature"] == outcome.signature()
        assert data["pairs_scored"] == outcome.pairs_scored
        assert data["cross_product"] == outcome.cross_product

    def test_no_evidence_pair_is_never_shuffled(self):
        # Two users half a planet apart share no blocking cell, so the
        # linkage job scores zero pairs and links nothing.
        train, target, truth = synthetic_linkage_corpus(
            2, seed=4, region=((30.0, 31.0), (-100.0, -99.0))
        )
        far_target = TraceArray.from_columns(
            list(target.user_ids()),
            target.latitude - 20.0,
            target.longitude + 90.0,
            target.timestamp.copy(),
        )
        runner = _deployment(train, far_target)
        try:
            outcome = run_linkage_attack(
                runner,
                "input/train",
                "input/target",
                truth,
                params=SYNTH_ATTACK_PARAMS,
            )
        finally:
            runner.close()
        assert outcome.pairs_scored == 0
        assert all(v is None for v in outcome.result.linkage.values())


class TestCorpusHelpers:
    def test_split_is_disjoint_and_truthful(self):
        train, _, truth = synthetic_linkage_corpus(5, seed=9)
        tr, tgt, split_truth = split_linkage_corpus(train)
        assert len(tr) + len(tgt) == len(train)
        assert float(tr.timestamp.max()) < float(tgt.timestamp.min()) + 1e-9
        for pseud, user in split_truth.items():
            assert pseud == "anon-" + user

    def test_synthetic_corpus_shapes(self):
        train, target, truth = synthetic_linkage_corpus(7, seed=1)
        assert len(set(train.user_ids().tolist())) == 7
        assert len(truth) == 7
        assert set(truth.values()) == set(train.user_ids().tolist())
        # Target rows are strictly later than training rows.
        assert float(target.timestamp.min()) > float(train.timestamp.max())

    def test_empty_split(self):
        empty = TraceArray.empty()
        tr, tgt, truth = split_linkage_corpus(empty)
        assert len(tr) == 0 and len(tgt) == 0 and truth == {}


class TestSweep:
    def test_frontier_smoke_and_roundtrip(self, tmp_path):
        from repro.attacks.sweep import FrontierResult, run_sweep

        train, target, truth = synthetic_linkage_corpus(6, seed=2)
        frontier = run_sweep(
            train,
            target,
            truth,
            ["none", "gaussian:5000"],
            params=SYNTH_ATTACK_PARAMS,
        )
        assert [c.mechanism for c in frontier.cells] == ["none", "gaussian:5000"]
        origin, noisy = frontier.cells
        # The pseudonymize-only origin is fully linkable; drowning the
        # release in 5 km noise must hurt the attack.
        assert origin.success_rate == 1.0
        assert noisy.success_rate < origin.success_rate
        assert noisy.distortion_m is not None and noisy.distortion_m > origin.distortion_m
        assert "tenant" in frontier.service_report
        path = frontier.save(tmp_path / "frontier.json")
        import json

        doc = json.loads(path.read_text())
        restored = FrontierResult.from_doc(doc)
        assert [c.to_doc() for c in restored.cells] == [
            c.to_doc() for c in frontier.cells
        ]

    def test_colliding_slugs_rejected(self):
        from repro.attacks.sweep import run_sweep

        train, target, truth = synthetic_linkage_corpus(2, seed=2)
        with pytest.raises(ValueError, match="collide"):
            run_sweep(train, target, truth, ["gaussian:100", "gaussian 100"])

    def test_sweep_cell_events_emitted(self, tmp_path):
        from repro.attacks.sweep import run_sweep
        from repro.observability.history import load_history

        train, target, truth = synthetic_linkage_corpus(4, seed=6)
        history_path = tmp_path / "sweep-history.jsonl"
        run_sweep(
            train,
            target,
            truth,
            ["none"],
            params=SYNTH_ATTACK_PARAMS,
            history_path=str(history_path),
        )
        history = load_history(history_path)
        cells = [e for e in history.events if e.kind == EventKind.SWEEP_CELL]
        assert len(cells) == 1
        assert cells[0].data["mechanism"] == "none"
        assert cells[0].data["tenant"] == "none"
