"""Tests for MapReduced MMC learning."""

import numpy as np
import pytest

from repro.attacks.mmc import build_mmc
from repro.attacks.mmc_mr import run_mmc_mapreduce
from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner

from tests.attacks.test_mmc import POIS, _trail_visiting


def _multi_user_array(sequences: dict[str, list[int]]) -> TraceArray:
    parts = []
    for user, seq in sequences.items():
        arr = _trail_visiting(seq, user=user)
        parts.append(arr)
    return TraceArray.concatenate(parts).sort_by_time()


@pytest.fixture()
def runner_factory():
    def make(array, chunk_traces):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * chunk_traces, seed=0)
        hdfs.put_trace_array("traces", array)
        return JobRunner(hdfs)

    return make


SEQUENCES = {
    "a": [0, 1, 0, 1, 2, 0, 1, 0],
    "b": [2, 0, 2, 0, 2, 1],
    "c": [1, 1, 2],
}


class TestEquivalence:
    @pytest.mark.parametrize("chunk_traces", [10_000, 7, 3])
    def test_mr_equals_sequential_for_any_chunking(self, runner_factory, chunk_traces):
        """The reduce phase sees all fragments, so the decomposition is
        exact — even with absurdly small chunks."""
        array = _multi_user_array(SEQUENCES)
        runner = runner_factory(array, chunk_traces)
        models = run_mmc_mapreduce(runner, "traces", POIS)
        assert set(models) == set(SEQUENCES)
        for user in SEQUENCES:
            mask = np.array([u == user for u in array.user_ids()])
            seq_mmc = build_mmc(array[mask], POIS)
            mr_mmc = models[user]
            assert np.allclose(mr_mmc.transitions, seq_mmc.transitions)
            assert np.array_equal(mr_mmc.visit_counts, seq_mmc.visit_counts)

    def test_smoothing_forwarded(self, runner_factory):
        array = _multi_user_array({"a": [0, 1]})
        runner = runner_factory(array, 1000)
        models = run_mmc_mapreduce(runner, "traces", POIS, smoothing=0.5)
        assert np.all(models["a"].transitions > 0)


class TestBehaviour:
    def test_unattached_users_absent(self, runner_factory):
        far = TraceArray.from_columns(
            ["ghost"], np.full(3, 10.0), np.full(3, 10.0), np.arange(3.0)
        )
        array = TraceArray.concatenate([_multi_user_array({"a": [0, 1, 0]}), far])
        runner = runner_factory(array, 1000)
        models = run_mmc_mapreduce(runner, "traces", POIS)
        assert "a" in models
        assert "ghost" not in models

    def test_prediction_from_mr_model(self, runner_factory):
        array = _multi_user_array({"a": [0, 1, 0, 1, 0, 1]})
        runner = runner_factory(array, 1000)
        models = run_mmc_mapreduce(runner, "traces", POIS)
        assert models["a"].predict_next(0) == 1
        assert models["a"].predict_next(1) == 0

    def test_validation(self, runner_factory):
        array = _multi_user_array({"a": [0, 1]})
        runner = runner_factory(array, 1000)
        with pytest.raises(ValueError):
            run_mmc_mapreduce(runner, "traces", np.empty((0, 2)))
        with pytest.raises(ValueError):
            run_mmc_mapreduce(runner, "traces", np.zeros((3, 3)))


class TestAtScale:
    def test_synthetic_corpus_models(self, small_corpus):
        """End-to-end: DJ-Cluster POIs -> MR MMC models for every user."""
        from repro.algorithms.djcluster import DJClusterParams, djcluster_sequential
        from repro.algorithms.sampling import sample_array

        dataset, users = small_corpus
        sampled = sample_array(dataset.flat().sort_by_time(), 60.0)
        clusters = djcluster_sequential(sampled, DJClusterParams(radius_m=80, min_pts=6))
        pois = clusters.cluster_centroids()
        assert len(pois) >= 4
        hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * 500, seed=0)
        hdfs.put_trace_array("traces", sampled)
        runner = JobRunner(hdfs)
        models = run_mmc_mapreduce(runner, "traces", pois)
        assert len(models) == dataset.num_users()
        for mmc in models.values():
            assert np.allclose(mmc.transitions.sum(axis=1), 1.0)
            assert mmc.visit_counts.sum() > 0
