"""Unit tests for next-place prediction."""

import numpy as np
import pytest

from repro.attacks.prediction import PredictionReport, evaluate_next_place_prediction

from tests.attacks.test_mmc import POIS, _trail_visiting


class TestEvaluation:
    def test_perfectly_periodic_user_predicted(self):
        # Strict alternation 0-1-0-1... is fully predictable.
        arr = _trail_visiting([0, 1] * 10)
        report = evaluate_next_place_prediction(arr, POIS, train_fraction=0.5)
        assert report.n_predictions > 0
        assert report.accuracy == 1.0
        assert report.lift > 1.0

    def test_random_user_near_baseline(self):
        rng = np.random.default_rng(0)
        seq = []
        prev = -1
        for _ in range(400):
            nxt = int(rng.integers(0, 3))
            if nxt == prev:
                continue
            seq.append(nxt)
            prev = nxt
        arr = _trail_visiting(seq, dwell=1)
        report = evaluate_next_place_prediction(arr, POIS, train_fraction=0.5)
        # With self-transitions excluded, chance is ~1/2 among 2 options.
        assert report.accuracy < 0.75

    def test_short_sequence_returns_empty_report(self):
        arr = _trail_visiting([0])
        report = evaluate_next_place_prediction(arr, POIS)
        assert report.n_predictions == 0
        assert report.accuracy == 0.0

    def test_train_fraction_validated(self):
        arr = _trail_visiting([0, 1, 0, 1])
        with pytest.raises(ValueError):
            evaluate_next_place_prediction(arr, POIS, train_fraction=1.0)
        with pytest.raises(ValueError):
            evaluate_next_place_prediction(arr, POIS, train_fraction=0.0)

    def test_baseline_is_uniform_over_states(self):
        arr = _trail_visiting([0, 1] * 5)
        report = evaluate_next_place_prediction(arr, POIS)
        assert report.baseline_accuracy == pytest.approx(1.0 / 3)
        assert report.n_states == 3

    def test_counts_consistent(self):
        arr = _trail_visiting([0, 1, 2] * 6)
        report = evaluate_next_place_prediction(arr, POIS, train_fraction=0.6)
        assert 0 <= report.n_correct <= report.n_predictions
        assert report.accuracy == pytest.approx(report.n_correct / report.n_predictions)

    def test_lift_handles_zero_baseline(self):
        r = PredictionReport(10, 5, 0.5, 0.0, 0)
        assert r.lift == float("inf")
        r2 = PredictionReport(10, 0, 0.0, 0.0, 0)
        assert r2.lift == 1.0


class TestOnSyntheticUsers:
    def test_synthetic_user_beats_chance(self, small_corpus):
        from repro.algorithms.sampling import sample_trail

        dataset, users = small_corpus
        user = users[1]
        trail = sample_trail(dataset.trail(user.user_id), 60.0)
        coords = np.array([(p.latitude, p.longitude) for p in user.pois])
        report = evaluate_next_place_prediction(trail, coords, train_fraction=0.6)
        if report.n_predictions >= 3:
            assert report.accuracy >= report.baseline_accuracy
