"""Unit tests for Mobility Markov Chains."""

import numpy as np
import pytest

from repro.attacks.mmc import (
    MobilityMarkovChain,
    build_mmc,
    mmc_distance,
    visit_sequence,
)
from repro.geo.trace import TraceArray


POIS = np.array([[39.90, 116.40], [39.95, 116.50], [39.85, 116.30]])


def _trail_visiting(sequence, dwell=3, user="u"):
    """A trail dwelling `dwell` traces at each POI of `sequence`."""
    lat, lon, ts = [], [], []
    t = 0.0
    for state in sequence:
        for _ in range(dwell):
            lat.append(POIS[state, 0] + 1e-6)
            lon.append(POIS[state, 1] - 1e-6)
            ts.append(t)
            t += 60.0
        t += 600.0  # travel gap
    return TraceArray.from_columns([user], np.array(lat), np.array(lon), np.array(ts))


class TestVisitSequence:
    def test_collapses_consecutive_repeats(self):
        arr = _trail_visiting([0, 1, 0])
        seq = visit_sequence(arr, POIS)
        assert list(seq) == [0, 1, 0]

    def test_far_traces_are_transit(self):
        arr = TraceArray.from_columns(
            ["u"],
            np.array([39.90, 39.92, 39.95]),  # middle point ~2km from any POI
            np.array([116.40, 116.45, 116.50]),
            np.array([0.0, 60.0, 120.0]),
        )
        seq = visit_sequence(arr, POIS, attach_radius_m=200.0)
        assert list(seq) == [0, 1]

    def test_empty_inputs(self):
        assert len(visit_sequence(TraceArray.empty(), POIS)) == 0
        arr = _trail_visiting([0])
        assert len(visit_sequence(arr, np.empty((0, 2)))) == 0


class TestBuildMMC:
    def test_transition_counts(self):
        arr = _trail_visiting([0, 1, 0, 1, 0, 2])
        mmc = build_mmc(arr, POIS)
        # 0->1 twice, 0->2 once, 1->0 twice.
        assert mmc.transitions[0, 1] == pytest.approx(2 / 3)
        assert mmc.transitions[0, 2] == pytest.approx(1 / 3)
        assert mmc.transitions[1, 0] == pytest.approx(1.0)

    def test_rows_stochastic(self):
        arr = _trail_visiting([0, 1, 2, 0, 2, 1])
        mmc = build_mmc(arr, POIS)
        assert np.allclose(mmc.transitions.sum(axis=1), 1.0)

    def test_unvisited_state_row_uniform(self):
        arr = _trail_visiting([0, 1, 0])
        mmc = build_mmc(arr, POIS)
        assert np.allclose(mmc.transitions[2], 1.0 / 3)

    def test_smoothing_keeps_rows_stochastic(self):
        arr = _trail_visiting([0, 1])
        mmc = build_mmc(arr, POIS, smoothing=0.5)
        assert np.allclose(mmc.transitions.sum(axis=1), 1.0)
        assert np.all(mmc.transitions > 0)

    def test_requires_states(self):
        with pytest.raises(ValueError):
            build_mmc(_trail_visiting([0]), np.empty((0, 2)))
        with pytest.raises(ValueError):
            build_mmc(_trail_visiting([0]), np.zeros((2, 3)))

    def test_validation_of_matrix(self):
        with pytest.raises(ValueError):
            MobilityMarkovChain(
                states=POIS,
                transitions=np.ones((3, 3)),  # rows sum to 3
                visit_counts=np.zeros(3),
            )
        with pytest.raises(ValueError):
            MobilityMarkovChain(
                states=POIS,
                transitions=np.eye(2),
                visit_counts=np.zeros(2),
            )


class TestPredictionAndStationary:
    def test_predict_next_most_likely(self):
        arr = _trail_visiting([0, 1, 0, 1, 0, 2])
        mmc = build_mmc(arr, POIS)
        assert mmc.predict_next(0) == 1
        assert mmc.predict_next(1) == 0

    def test_predict_out_of_range(self):
        mmc = build_mmc(_trail_visiting([0, 1]), POIS)
        with pytest.raises(IndexError):
            mmc.predict_next(5)

    def test_stationary_is_fixed_point(self):
        arr = _trail_visiting([0, 1, 0, 2, 0, 1, 2, 0])
        mmc = build_mmc(arr, POIS, smoothing=0.1)
        pi = mmc.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi @ mmc.transitions, pi, atol=1e-9)

    def test_simulate_respects_support(self):
        arr = _trail_visiting([0, 1, 0, 1])
        mmc = build_mmc(arr, POIS)
        seq = mmc.simulate(start=0, steps=50, seed=3)
        assert seq[0] == 0
        assert set(seq.tolist()) <= {0, 1, 2}
        # 2 is unreachable from {0,1} support except via uniform row of 2.
        assert 2 not in set(seq.tolist())

    def test_next_distribution_is_copy(self):
        mmc = build_mmc(_trail_visiting([0, 1, 0]), POIS)
        dist = mmc.next_distribution(0)
        dist[:] = 0
        assert mmc.transitions[0].sum() == pytest.approx(1.0)


class TestLogLikelihood:
    def test_deterministic_sequence_zero_loglik(self):
        mmc = build_mmc(_trail_visiting([0, 1] * 6), POIS)
        # P=1.0 transitions: log-likelihood 0.
        assert mmc.log_likelihood([0, 1, 0, 1]) == pytest.approx(0.0)

    def test_impossible_transition_neg_inf(self):
        mmc = build_mmc(_trail_visiting([0, 1, 0, 1]), POIS)
        assert mmc.log_likelihood([0, 2]) == float("-inf")

    def test_own_data_beats_shuffled(self):
        seq = [0, 1, 0, 1, 0, 2, 0, 1, 0, 1]
        mmc = build_mmc(_trail_visiting(seq), POIS, smoothing=0.1)
        own = mmc.log_likelihood(seq)
        other = mmc.log_likelihood([2, 1, 2, 1, 2, 0, 2, 1, 2, 1])
        assert own > other

    def test_short_sequences_zero(self):
        mmc = build_mmc(_trail_visiting([0, 1]), POIS)
        assert mmc.log_likelihood([]) == 0.0
        assert mmc.log_likelihood([1]) == 0.0

    def test_out_of_range_rejected(self):
        mmc = build_mmc(_trail_visiting([0, 1]), POIS)
        with pytest.raises(IndexError):
            mmc.log_likelihood([0, 99])


class TestMMCDistance:
    def test_self_distance_zero(self):
        mmc = build_mmc(_trail_visiting([0, 1, 0, 2, 0]), POIS)
        assert mmc_distance(mmc, mmc) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric_up_to_matching(self):
        a = build_mmc(_trail_visiting([0, 1, 0, 1, 2]), POIS)
        b = build_mmc(_trail_visiting([0, 2, 0, 2, 1]), POIS)
        assert mmc_distance(a, b) == pytest.approx(mmc_distance(b, a), rel=1e-6)

    def test_same_behavior_closer_than_different(self):
        a1 = build_mmc(_trail_visiting([0, 1, 0, 1, 0, 1]), POIS)
        a2 = build_mmc(_trail_visiting([0, 1, 0, 1, 0]), POIS)
        b = build_mmc(_trail_visiting([2, 0, 2, 0, 2, 2, 0]), POIS)
        assert mmc_distance(a1, a2) < mmc_distance(a1, b)

    def test_disjoint_pois_pay_unmatched_penalty(self):
        far = POIS + 5.0  # hundreds of km away
        a = build_mmc(_trail_visiting([0, 1, 0]), POIS)
        arr_b = TraceArray.from_columns(
            ["v"], far[[0, 1, 0], 0], far[[0, 1, 0], 1], np.array([0.0, 600.0, 1200.0])
        )
        b = build_mmc(arr_b, far)
        # All stationary mass unmatched on both sides -> penalty ~2.
        assert mmc_distance(a, b, max_match_dist_m=500.0) == pytest.approx(2.0, abs=0.2)
