"""Unit tests for the co-location / social-relation attack."""

import networkx as nx
import numpy as np
import pytest

from repro.attacks.social import ColocationParams, colocation_graph, contact_events
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


def _trail(user, lat, lon, timestamps):
    n = len(timestamps)
    return Trail(
        user,
        TraceArray.from_columns(
            [user],
            np.full(n, lat) if np.isscalar(lat) else np.asarray(lat, float),
            np.full(n, lon) if np.isscalar(lon) else np.asarray(lon, float),
            np.asarray(timestamps, float),
        ),
    )


PARAMS = ColocationParams(contact_radius_m=50.0, window_s=300.0, min_contact_s=600.0)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ColocationParams(contact_radius_m=0)
        with pytest.raises(ValueError):
            ColocationParams(window_s=0)
        with pytest.raises(ValueError):
            ColocationParams(min_contact_s=-1)


class TestContactEvents:
    def test_colocated_pair_detected(self):
        ts = np.arange(0, 3600, 60.0)
        ds = GeolocatedDataset(
            [_trail("a", 39.9, 116.4, ts), _trail("b", 39.90001, 116.40001, ts)]
        )
        events = contact_events(ds, PARAMS)
        assert ("a", "b") in events
        # 12 windows x 300 s each.
        assert events[("a", "b")] == pytest.approx(3600.0)

    def test_distant_users_no_contact(self):
        ts = np.arange(0, 3600, 60.0)
        ds = GeolocatedDataset(
            [_trail("a", 39.9, 116.4, ts), _trail("b", 39.95, 116.45, ts)]
        )
        assert contact_events(ds, PARAMS) == {}

    def test_same_place_different_times_no_contact(self):
        ds = GeolocatedDataset(
            [
                _trail("a", 39.9, 116.4, np.arange(0, 1800, 60.0)),
                _trail("b", 39.9, 116.4, np.arange(7200, 9000, 60.0)),
            ]
        )
        assert contact_events(ds, PARAMS) == {}

    def test_cell_boundary_pairs_found(self):
        """Points straddling a grid-cell boundary still count (the 3x3
        neighbourhood join)."""
        # ~45 m apart east-west: within radius, likely different cells.
        ts = np.arange(0, 1800, 60.0)
        ds = GeolocatedDataset(
            [
                _trail("a", 39.9, 116.40000, ts),
                _trail("b", 39.9, 116.40053, ts),  # ~45 m east
            ]
        )
        events = contact_events(ds, PARAMS)
        assert ("a", "b") in events

    def test_pair_key_ordered(self):
        ts = np.arange(0, 1800, 60.0)
        ds = GeolocatedDataset(
            [_trail("zed", 39.9, 116.4, ts), _trail("amy", 39.9, 116.4, ts)]
        )
        events = contact_events(ds, PARAMS)
        assert list(events) == [("amy", "zed")]

    def test_empty_dataset(self):
        assert contact_events(GeolocatedDataset(), PARAMS) == {}


class TestColocationGraph:
    def test_threshold_prunes_brief_contacts(self):
        long_ts = np.arange(0, 3600, 60.0)
        brief_ts = np.array([0.0, 60.0])
        ds = GeolocatedDataset(
            [
                _trail("a", 39.9, 116.4, long_ts),
                _trail("b", 39.9, 116.4, long_ts),
                _trail("c", 39.9, 116.4, brief_ts),
            ]
        )
        params = ColocationParams(50.0, 300.0, min_contact_s=1800.0)
        graph = colocation_graph(ds, params)
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")
        assert graph["a"]["b"]["contact_s"] >= 1800.0

    def test_all_users_are_nodes(self):
        ds = GeolocatedDataset(
            [
                _trail("a", 39.9, 116.4, [0.0]),
                _trail("b", 45.0, 10.0, [0.0]),
            ]
        )
        graph = colocation_graph(ds, PARAMS)
        assert set(graph.nodes) == {"a", "b"}
        assert graph.number_of_edges() == 0

    def test_triangle_of_cohabitants(self):
        ts = np.arange(0, 7200, 60.0)
        ds = GeolocatedDataset(
            [_trail(u, 39.9, 116.4, ts) for u in ("a", "b", "c")]
        )
        graph = colocation_graph(ds, PARAMS)
        assert graph.number_of_edges() == 3
        assert nx.is_connected(graph)

    def test_synthetic_strangers_mostly_unlinked(self, small_corpus):
        """Independent synthetic users rarely share 30+ minutes within
        50 m — the attack should not hallucinate a dense graph."""
        dataset, _ = small_corpus
        graph = colocation_graph(
            dataset, ColocationParams(50.0, 300.0, min_contact_s=3600.0)
        )
        assert graph.number_of_edges() <= 2
