"""Unit tests for POI extraction and home/work labelling."""

import numpy as np
import pytest

from repro.algorithms.djcluster import DJClusterParams, djcluster_sequential
from repro.attacks.poi import (
    NIGHT_HOURS,
    WORK_HOURS,
    PointOfInterestEstimate,
    extract_pois,
    label_home_work,
    poi_attack,
)
from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray


def _poi(label="poi", night=0.0, work=0.0, n=10):
    hist = np.zeros(24, dtype=int)
    n_night = int(n * night)
    n_work = int(n * work)
    for h in list(NIGHT_HOURS)[:1]:
        hist[h] = n_night
    hist[12] += n_work
    hist[19] += n - n_night - n_work
    return PointOfInterestEstimate(
        latitude=39.9,
        longitude=116.4,
        n_traces=n,
        dwell_time_s=0.0,
        hour_histogram=hist,
        label=label,
    )


class TestFractions:
    def test_night_fraction(self):
        p = _poi(night=0.6, n=10)
        assert p.night_fraction() == pytest.approx(0.6)

    def test_work_fraction(self):
        p = _poi(work=0.3, n=10)
        assert p.work_fraction() == pytest.approx(0.3)

    def test_empty_histogram(self):
        p = PointOfInterestEstimate(0, 0, 0, 0, np.zeros(24, dtype=int))
        assert p.night_fraction() == 0.0
        assert p.work_fraction() == 0.0

    def test_hour_sets_disjoint(self):
        assert not (NIGHT_HOURS & WORK_HOURS)


class TestLabelling:
    def test_home_is_nightiest(self):
        pois = [_poi(night=0.1, n=50), _poi(night=0.9, n=40), _poi(work=0.8, n=30)]
        label_home_work(pois)
        assert pois[1].label == "home"

    def test_work_is_workiest_non_home(self):
        pois = [_poi(night=0.9, n=50), _poi(work=0.9, n=30), _poi(n=20)]
        label_home_work(pois)
        assert pois[0].label == "home"
        assert pois[1].label == "work"
        assert pois[2].label == "poi"

    def test_single_poi_gets_home(self):
        pois = [_poi(night=0.5)]
        label_home_work(pois)
        assert pois[0].label == "home"

    def test_empty_list(self):
        assert label_home_work([]) == []

    def test_relabel_is_idempotent(self):
        pois = [_poi(night=0.9, n=40), _poi(work=0.8, n=30)]
        label_home_work(pois)
        first = [p.label for p in pois]
        label_home_work(pois)
        assert [p.label for p in pois] == first


class TestExtract:
    def _clustered(self, seed=0):
        rng = np.random.default_rng(seed)
        # A "home" blob at night hours and a "work" blob at midday.
        def blob(lat, lon, hours, n):
            ts = np.array([(h * 3600 + i * 60) for i, h in enumerate(np.random.default_rng(seed).choice(hours, n))], dtype=float)
            return (
                lat + rng.normal(0, 2e-5, n),
                lon + rng.normal(0, 2e-5, n),
                ts,
            )

        h = blob(39.90, 116.40, list(NIGHT_HOURS), 30)
        w = blob(39.95, 116.50, list(WORK_HOURS), 30)
        arr = TraceArray.from_columns(
            ["u"],
            np.concatenate([h[0], w[0]]),
            np.concatenate([h[1], w[1]]),
            np.concatenate([h[2], w[2]]),
        )
        return djcluster_sequential(arr, DJClusterParams(radius_m=50, min_pts=5), preprocess=False)

    def test_pois_sorted_by_support(self):
        res = self._clustered()
        pois = extract_pois(res)
        sizes = [p.n_traces for p in pois]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_traces_filter(self):
        res = self._clustered()
        assert len(extract_pois(res, min_traces=10**6)) == 0

    def test_poi_centers_near_clusters(self):
        res = self._clustered()
        pois = extract_pois(res)
        assert len(pois) == 2
        for p in pois:
            d_home = haversine_m(p.latitude, p.longitude, 39.90, 116.40)
            d_work = haversine_m(p.latitude, p.longitude, 39.95, 116.50)
            assert min(d_home, d_work) < 30.0

    def test_full_attack_labels_home_and_work(self):
        res = self._clustered()
        # Run the end-to-end attack from the raw array.
        pois = poi_attack(res.preprocessed, DJClusterParams(radius_m=50, min_pts=5))
        labels = {p.label for p in pois}
        assert "home" in labels
        assert "work" in labels
        home = next(p for p in pois if p.label == "home")
        assert haversine_m(home.latitude, home.longitude, 39.90, 116.40) < 50.0


class TestKMeansExtractor:
    def _two_blob_array(self, seed=0):
        rng = np.random.default_rng(seed)
        lat = np.concatenate(
            [39.90 + rng.normal(0, 2e-5, 40), 39.95 + rng.normal(0, 2e-5, 40)]
        )
        lon = np.concatenate(
            [116.40 + rng.normal(0, 2e-5, 40), 116.50 + rng.normal(0, 2e-5, 40)]
        )
        ts = np.arange(80.0) * 60.0
        return TraceArray.from_columns(["u"], lat, lon, ts)

    def test_finds_blob_centers(self):
        from repro.attacks.poi import extract_pois_kmeans

        pois = extract_pois_kmeans(self._two_blob_array(), k=2, seed=3)
        assert len(pois) == 2
        for want in ((39.90, 116.40), (39.95, 116.50)):
            best = min(
                float(haversine_m(p.latitude, p.longitude, *want)) for p in pois
            )
            assert best < 30.0

    def test_min_traces_filters_clusters(self):
        from repro.attacks.poi import extract_pois_kmeans

        pois = extract_pois_kmeans(self._two_blob_array(), k=2, min_traces=1000)
        assert pois == []

    def test_too_few_points_returns_empty(self):
        from repro.attacks.poi import extract_pois_kmeans

        arr = TraceArray.from_columns(
            ["u"], np.array([39.9]), np.array([116.4]), np.array([0.0])
        )
        assert extract_pois_kmeans(arr, k=5) == []

    def test_preprocessing_applied_when_requested(self):
        from repro.attacks.poi import extract_pois_kmeans

        # Fast-moving traces between blobs would drag centroids without
        # the speed filter.
        arr = self._two_blob_array()
        moving_lat = np.linspace(39.90, 39.95, 20)
        moving = TraceArray.from_columns(
            ["u"], moving_lat, np.linspace(116.40, 116.50, 20),
            10_000.0 + np.arange(20.0) * 10.0,
        )
        noisy = TraceArray.concatenate([arr, moving])
        pois = extract_pois_kmeans(
            noisy, k=2, preprocess_params=DJClusterParams(), seed=1
        )
        for want in ((39.90, 116.40), (39.95, 116.50)):
            best = min(
                float(haversine_m(p.latitude, p.longitude, *want)) for p in pois
            )
            assert best < 50.0


class TestEndToEndOnSynthetic:
    def test_home_recovered_on_synthetic_user(self, small_corpus):
        from repro.algorithms.sampling import sample_trail

        dataset, users = small_corpus
        user = users[0]
        sampled = sample_trail(dataset.trail(user.user_id), 60.0)
        pois = poi_attack(sampled, DJClusterParams(radius_m=80, min_pts=6))
        assert pois, "no POIs extracted"
        best = min(
            haversine_m(p.latitude, p.longitude, user.home.latitude, user.home.longitude)
            for p in pois
        )
        assert best < 100.0, "home POI not recovered within 100 m"
