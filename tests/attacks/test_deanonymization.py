"""Unit tests for the de-anonymization (linking) attack."""

import numpy as np
import pytest

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.deanonymization import (
    DeanonymizationResult,
    deanonymization_attack,
    fingerprint_user,
)
from repro.algorithms.sampling import sample_dataset
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


@pytest.fixture(scope="module")
def split_corpus():
    """Synthetic users split into training days and pseudonymized target
    days — the linking-attack scenario from Section II."""
    from repro.geo.synthetic import SyntheticConfig, generate_dataset

    cfg = SyntheticConfig(n_users=4, days=4, seed=77)
    dataset, users = generate_dataset(cfg)
    sampled = sample_dataset(dataset, 60.0)
    cut = cfg.start_timestamp + 2 * 86400.0
    training = GeolocatedDataset()
    target = GeolocatedDataset()
    ground_truth = {}
    for trail in sampled.trails():
        arr = trail.traces
        first = arr[arr.timestamp < cut]
        second = arr[arr.timestamp >= cut]
        if len(first):
            training.add_trail(Trail(trail.user_id, first))
        if len(second):
            pseud = f"anon-{trail.user_id}"
            renamed = TraceArray.from_columns(
                [pseud],
                second.latitude.copy(),
                second.longitude.copy(),
                second.timestamp.copy(),
            )
            target.add_trail(Trail(pseud, renamed))
            ground_truth[pseud] = trail.user_id
    return training, target, ground_truth


PARAMS = DJClusterParams(radius_m=80, min_pts=5)


class TestFingerprint:
    def test_fingerprint_built_for_dense_trail(self, split_corpus):
        training, _, _ = split_corpus
        trail = training.trail(training.user_ids[0])
        fp = fingerprint_user(trail, PARAMS)
        assert fp is not None
        assert fp.n_states >= 1
        assert np.allclose(fp.transitions.sum(axis=1), 1.0)

    def test_sparse_trail_unlinkable(self):
        trail = Trail(
            "ghost",
            TraceArray.from_columns(
                ["ghost"], np.array([39.9]), np.array([116.4]), np.array([0.0])
            ),
        )
        assert fingerprint_user(trail, PARAMS) is None


class TestAttack:
    def test_attack_beats_random_guessing(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        assert result.n_targets == len(truth)
        # Random linking over 4 users succeeds 25% of the time; the
        # fingerprint attack must do clearly better on clean data.
        assert result.success_rate >= 0.5

    def test_linkage_covers_every_pseudonym(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        assert set(result.linkage) == set(truth)

    def test_scores_populated_for_linked(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        for pseud, link in result.linkage.items():
            if link is not None:
                assert pseud in result.scores

    def test_empty_training_links_nothing(self, split_corpus):
        _, target, truth = split_corpus
        result = deanonymization_attack(GeolocatedDataset(), target, truth, PARAMS)
        assert all(v is None for v in result.linkage.values())
        assert result.success_rate == 0.0


class TestResultArithmetic:
    def test_success_rate(self):
        r = DeanonymizationResult(
            linkage={"p1": "a", "p2": "b", "p3": None},
            ground_truth={"p1": "a", "p2": "x", "p3": "c"},
        )
        assert r.n_targets == 3
        assert r.n_correct == 1
        assert r.success_rate == pytest.approx(1 / 3)

    def test_empty(self):
        r = DeanonymizationResult(linkage={}, ground_truth={})
        assert r.success_rate == 0.0
