"""Unit tests for the de-anonymization (linking) attack."""

import numpy as np
import pytest

from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.deanonymization import (
    DeanonymizationResult,
    deanonymization_attack,
    fingerprint_user,
)
from repro.algorithms.sampling import sample_dataset
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


@pytest.fixture(scope="module")
def split_corpus():
    """Synthetic users split into training days and pseudonymized target
    days — the linking-attack scenario from Section II."""
    from repro.geo.synthetic import SyntheticConfig, generate_dataset

    cfg = SyntheticConfig(n_users=4, days=4, seed=77)
    dataset, users = generate_dataset(cfg)
    sampled = sample_dataset(dataset, 60.0)
    cut = cfg.start_timestamp + 2 * 86400.0
    training = GeolocatedDataset()
    target = GeolocatedDataset()
    ground_truth = {}
    for trail in sampled.trails():
        arr = trail.traces
        first = arr[arr.timestamp < cut]
        second = arr[arr.timestamp >= cut]
        if len(first):
            training.add_trail(Trail(trail.user_id, first))
        if len(second):
            pseud = f"anon-{trail.user_id}"
            renamed = TraceArray.from_columns(
                [pseud],
                second.latitude.copy(),
                second.longitude.copy(),
                second.timestamp.copy(),
            )
            target.add_trail(Trail(pseud, renamed))
            ground_truth[pseud] = trail.user_id
    return training, target, ground_truth


PARAMS = DJClusterParams(radius_m=80, min_pts=5)


class TestFingerprint:
    def test_fingerprint_built_for_dense_trail(self, split_corpus):
        training, _, _ = split_corpus
        trail = training.trail(training.user_ids[0])
        fp = fingerprint_user(trail, PARAMS)
        assert fp is not None
        assert fp.n_states >= 1
        assert np.allclose(fp.transitions.sum(axis=1), 1.0)

    def test_sparse_trail_unlinkable(self):
        trail = Trail(
            "ghost",
            TraceArray.from_columns(
                ["ghost"], np.array([39.9]), np.array([116.4]), np.array([0.0])
            ),
        )
        assert fingerprint_user(trail, PARAMS) is None


class TestAttack:
    def test_attack_beats_random_guessing(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        assert result.n_targets == len(truth)
        # Random linking over 4 users succeeds 25% of the time; the
        # fingerprint attack must do clearly better on clean data.
        assert result.success_rate >= 0.5

    def test_linkage_covers_every_pseudonym(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        assert set(result.linkage) == set(truth)

    def test_scores_populated_for_linked(self, split_corpus):
        training, target, truth = split_corpus
        result = deanonymization_attack(training, target, truth, PARAMS)
        for pseud, link in result.linkage.items():
            if link is not None:
                assert pseud in result.scores

    def test_empty_training_links_nothing(self, split_corpus):
        _, target, truth = split_corpus
        result = deanonymization_attack(GeolocatedDataset(), target, truth, PARAMS)
        assert all(v is None for v in result.linkage.values())
        assert result.success_rate == 0.0


def _renamed_trail(array: TraceArray, user: str) -> Trail:
    return Trail(
        user,
        TraceArray.from_columns(
            [user],
            array.latitude.copy(),
            array.longitude.copy(),
            array.timestamp.copy(),
        ),
    )


class TestTieBreakAndEvidence:
    """Regression tests for the deterministic tie-break and the
    no-spatial-evidence semantics (both fixed together: ties now break
    by (score, user_id), and penalty-only scores no longer count as
    linkage evidence)."""

    @pytest.fixture(scope="class")
    def one_user_corpus(self):
        from repro.attacks.linkage_mr import synthetic_linkage_corpus

        train, target, _truth = synthetic_linkage_corpus(1, seed=3)
        return train, target

    def test_equidistant_tie_goes_to_smaller_user_id(self, one_user_corpus):
        from repro.attacks.linkage_mr import SYNTH_ATTACK_PARAMS

        train, target = one_user_corpus
        tgt = GeolocatedDataset()
        tgt.add_trail(_renamed_trail(target, "anon-x"))
        truth = {"anon-x": "alice"}
        # Two training identities with byte-identical trails are exactly
        # equidistant from the target; the winner must be the
        # lexicographically smaller id whatever the insertion order.
        for order in (("alice", "bob"), ("bob", "alice")):
            training = GeolocatedDataset()
            for user in order:
                training.add_trail(_renamed_trail(train, user))
            result = deanonymization_attack(
                training, tgt, truth, SYNTH_ATTACK_PARAMS
            )
            assert result.linkage["anon-x"] == "alice"
            assert "anon-x" in result.scores

    def test_no_spatial_evidence_means_unlinked(self, one_user_corpus):
        from repro.attacks.linkage_mr import SYNTH_ATTACK_PARAMS

        train, target = one_user_corpus
        # The only training user lives thousands of km away: every POI
        # pair is beyond max_match_dist_m, so the old penalty-only score
        # would have "linked" it; now there is no evidence at all.
        far = TraceArray.from_columns(
            ["far"],
            train.latitude - 20.0,
            train.longitude + 40.0,
            train.timestamp.copy(),
        )
        training = GeolocatedDataset()
        training.add_trail(Trail("far", far))
        tgt = GeolocatedDataset()
        tgt.add_trail(_renamed_trail(target, "anon-x"))
        result = deanonymization_attack(
            training, tgt, {"anon-x": "far"}, SYNTH_ATTACK_PARAMS
        )
        assert result.linkage["anon-x"] is None
        assert "anon-x" not in result.scores

    def test_params_default_is_not_shared_mutable(self):
        import inspect

        from repro.algorithms.djcluster import (
            djcluster_sequential,
            run_djcluster_mapreduce,
        )
        from repro.attacks.poi import poi_attack

        for fn in (
            fingerprint_user,
            deanonymization_attack,
            poi_attack,
            djcluster_sequential,
            run_djcluster_mapreduce,
        ):
            default = inspect.signature(fn).parameters["params"].default
            assert default is None, f"{fn.__name__} shares a mutable default"


class TestResultArithmetic:
    def test_success_rate(self):
        r = DeanonymizationResult(
            linkage={"p1": "a", "p2": "b", "p3": None},
            ground_truth={"p1": "a", "p2": "x", "p3": "c"},
        )
        assert r.n_targets == 3
        assert r.n_correct == 1
        assert r.success_rate == pytest.approx(1 / 3)

    def test_empty(self):
        r = DeanonymizationResult(linkage={}, ground_truth={})
        assert r.success_rate == 0.0
