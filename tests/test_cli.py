"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_mechanism
from repro.sanitization import (
    DonutMask,
    GaussianMask,
    PlanarLaplaceMask,
    Pseudonymizer,
    RoundingMask,
    SpatialAggregator,
    SpatialCloaking,
    TemporalAggregator,
    UniformNoiseMask,
)


@pytest.fixture()
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    assert main(["generate", "--out", str(root), "--users", "2", "--days", "1", "--seed", "5"]) == 0
    return root


class TestParseMechanism:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("gaussian:200", GaussianMask),
            ("uniform:100", UniformNoiseMask),
            ("donut:50-150", DonutMask),
            ("laplace:0.01", PlanarLaplaceMask),
            ("rounding:500", RoundingMask),
            ("aggregate:300", SpatialAggregator),
            ("sample:600", TemporalAggregator),
            ("cloak:3", SpatialCloaking),
            ("pseudonymize:7", Pseudonymizer),
            ("pseudonymize", Pseudonymizer),
        ],
    )
    def test_specs(self, spec, cls):
        assert isinstance(parse_mechanism(spec), cls)

    def test_unknown_mechanism(self):
        with pytest.raises(SystemExit, match="unknown mechanism"):
            parse_mechanism("teleport:1")

    def test_bad_parameter(self):
        with pytest.raises(SystemExit, match="bad mechanism parameter"):
            parse_mechanism("gaussian:soft")


class TestCommands:
    def test_generate_writes_geolife_layout(self, corpus_dir):
        plt_files = list(corpus_dir.glob("*/Trajectory/*.plt"))
        assert len(plt_files) == 2

    def test_info(self, corpus_dir, capsys):
        assert main(["info", "--in", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "users:  2" in out
        assert "traces:" in out
        assert "user 000" in out

    def test_info_detailed(self, corpus_dir, capsys):
        assert main(["info", "--in", str(corpus_dir), "--detailed"]) == 0
        out = capsys.readouterr().out
        assert "median r_g" in out
        assert "interval" in out

    def test_visualize(self, corpus_dir, capsys):
        assert main(["visualize", "--in", str(corpus_dir), "--width", "30", "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "lat [" in out

    def test_sample_roundtrip(self, corpus_dir, tmp_path, capsys):
        out_dir = tmp_path / "sampled"
        assert main(
            ["sample", "--in", str(corpus_dir), "--out", str(out_dir), "--window", "300"]
        ) == 0
        msg = capsys.readouterr().out
        assert "->" in msg
        assert list(out_dir.glob("*/Trajectory/*.plt"))

    def test_attack(self, corpus_dir, tmp_path, capsys):
        sampled = tmp_path / "sampled"
        main(["sample", "--in", str(corpus_dir), "--out", str(sampled), "--window", "60"])
        capsys.readouterr()
        assert main(
            ["attack", "--in", str(sampled), "--radius", "80", "--min-pts", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "POIs" in out
        assert "home" in out

    def test_attack_single_user(self, corpus_dir, tmp_path, capsys):
        sampled = tmp_path / "s"
        main(["sample", "--in", str(corpus_dir), "--out", str(sampled), "--window", "60"])
        capsys.readouterr()
        assert main(
            ["attack", "--in", str(sampled), "--user", "000", "--radius", "80", "--min-pts", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "user 000" in out
        assert "user 001" not in out

    def test_attack_semantic_flag(self, corpus_dir, capsys):
        assert main(
            [
                "attack", "--in", str(corpus_dir), "--user", "000",
                "--radius", "80", "--min-pts", "5", "--semantic",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "semantic places" in out
        assert "home" in out

    def test_attack_unknown_user(self, corpus_dir):
        with pytest.raises(SystemExit, match="unknown user"):
            main(["attack", "--in", str(corpus_dir), "--user", "zzz"])

    def test_sanitize(self, corpus_dir, tmp_path, capsys):
        out_dir = tmp_path / "masked"
        assert main(
            [
                "sanitize",
                "--in", str(corpus_dir),
                "--out", str(out_dir),
                "--mechanism", "gaussian:150",
            ]
        ) == 0
        msg = capsys.readouterr().out
        assert "GaussianMask" in msg
        assert list(out_dir.glob("*/Trajectory/*.plt"))

    def test_missing_input(self, tmp_path):
        with pytest.raises((SystemExit, FileNotFoundError)):
            main(["info", "--in", str(tmp_path / "absent")])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchCommand:
    _ARGS = ["bench", "--sizes", "2000", "--iterations", "1",
             "--backends", "serial,threads", "--max-iter", "2",
             "--workers", "2"]

    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([*self._ARGS, "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "serial" in text and "threads" in text
        assert out.exists()

    def test_check_against_own_run_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([*self._ARGS, "--out", str(baseline)]) == 0
        assert main(
            [*self._ARGS, "--check", "--baseline", str(baseline),
             "--tolerance", "1000"]
        ) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_missing_baseline_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no baseline"):
            main([*self._ARGS, "--check", "--baseline",
                  str(tmp_path / "absent.json")])

    def test_unknown_backend_exits(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["bench", "--sizes", "2000", "--backends", "fibers"])
