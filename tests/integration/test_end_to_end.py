"""End-to-end integration: the full privacy-analysis workflow.

Exercises the complete paper pipeline on a simulated deployment:
GeoLife-format data -> HDFS upload -> MR sampling -> MR preprocessing ->
MR R-tree build -> MR DJ-Cluster -> POI attack -> sanitize -> re-attack ->
privacy/utility trade-off.
"""

import numpy as np
import pytest

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams
from repro.algorithms.sampling import run_sampling_job
from repro.attacks.poi import extract_pois, label_home_work
from repro.metrics.privacy import poi_recovery
from repro.metrics.utility import utility_report
from repro.sanitization import GaussianMask


@pytest.fixture(scope="module")
def workflow():
    toolkit, truth = Gepeto.synthetic(n_users=3, days=3, seed=101)
    return toolkit, truth


class TestFullPipeline:
    def test_geolife_disk_roundtrip_feeds_pipeline(self, workflow, tmp_path):
        toolkit, _ = workflow
        one_user = Gepeto(toolkit.dataset.subset([toolkit.dataset.user_ids[0]]))
        one_user.save_geolife(tmp_path)
        reloaded = Gepeto.from_geolife(tmp_path)
        assert len(reloaded) == len(one_user)
        sampled = reloaded.sample(60.0)
        assert len(sampled) < len(reloaded)

    def test_distributed_analysis_end_to_end(self, workflow):
        toolkit, truth = workflow
        cluster = toolkit.deploy(n_workers=5, chunk_size_mb=1)

        # Stage 1: MR sampling (Section V).
        sample_res = cluster.sample(60.0)
        sampled_path = sample_res.output_path
        n_sampled = cluster.runner.hdfs.file_records(sampled_path)
        assert n_sampled < len(toolkit) / 5

        # Stage 2-4: full MR DJ-Cluster (preprocess, R-tree, cluster).
        params = DJClusterParams(radius_m=80, min_pts=6)
        dj = cluster.djcluster(params, input_path=sampled_path)
        assert dj.n_clusters >= 3  # at least one POI per user

        # Stage 5: the POI inference attack on the clusters.
        pois = label_home_work(extract_pois(dj))
        assert pois

        # Scoring against generator ground truth: the attack must find a
        # decent share of the true POIs on unsanitized data.
        gt = [p for user in truth for p in user.pois]
        recovery = poi_recovery(pois, gt, match_radius_m=150.0)
        assert recovery.recall > 0.3
        assert recovery.precision > 0.5

    def test_sanitization_degrades_attack_but_keeps_utility_signal(self, workflow):
        toolkit, truth = workflow
        sampled = toolkit.sample(60.0)
        params = DJClusterParams(radius_m=80, min_pts=6)
        gt = [p for user in truth for p in user.pois]

        def attack(gep):
            res = gep.djcluster(params)
            return extract_pois(res)

        clean_recovery = poi_recovery(attack(sampled), gt, match_radius_m=150.0)
        strong_mask = GaussianMask(sigma_m=400.0, seed=3)
        masked = sampled.sanitize(strong_mask)
        masked_recovery = poi_recovery(attack(masked), gt, match_radius_m=150.0)

        # Privacy: heavy noise must hurt POI recovery.
        assert masked_recovery.f1 < clean_recovery.f1
        # Utility: distortion reported, volume untouched.
        report = utility_report(sampled.dataset, masked.dataset)
        assert report.volume_ratio == 1.0
        assert report.mean_distortion_m > 200.0

    def test_simulated_times_accumulate_across_stages(self, workflow):
        toolkit, _ = workflow
        cluster = toolkit.deploy(n_workers=5, chunk_size_mb=1)
        res = cluster.sample(300.0, output_path="out/s300")
        dj = cluster.djcluster(
            DJClusterParams(radius_m=100, min_pts=5), input_path="out/s300",
            workdir="out/dj",
        )
        assert res.sim_seconds > 25.0  # at least one job overhead
        assert dj.sim_seconds > 3 * 25.0  # several chained jobs
        assert dj.stage_sim_seconds["preprocessing"] > 0


class TestScalingKnobs:
    def test_more_workers_do_not_change_results(self, workflow):
        toolkit, _ = workflow
        small = toolkit.sample(300.0)
        c2 = small.deploy(n_workers=2, chunk_size_mb=1)
        c8 = small.deploy(n_workers=8, chunk_size_mb=1)
        r2 = c2.sample(600.0)
        r8 = c8.sample(600.0)
        a = c2.read_traces(r2.output_path).sort_by_time()
        b = c8.read_traces(r8.output_path).sort_by_time()
        assert len(a) == len(b)
        assert np.allclose(a.timestamp, b.timestamp)

    def test_more_workers_reduce_simulated_time_with_many_chunks(self, workflow):
        from repro.algorithms.sampling import run_sampling_job
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import SimulatedHDFS
        from repro.mapreduce.runner import JobRunner

        toolkit, _ = workflow
        arr = toolkit.dataset.flat().sort_by_time()
        results = {}
        for workers in (1, 8):
            hdfs = SimulatedHDFS(paper_cluster(workers), chunk_size=64 * 2000, seed=0)
            hdfs.put_trace_array("traces", arr)
            if workers == 1:
                assert len(hdfs.chunks("traces")) > 16, "need more chunks than slots"
            results[workers] = run_sampling_job(
                JobRunner(hdfs), "traces", "out", 60.0
            )
        assert results[8].timing.map_s < results[1].timing.map_s
