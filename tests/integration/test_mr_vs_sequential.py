"""Cross-cutting equivalence: every MapReduced algorithm vs its
sequential reference, on the same data (single-chunk layouts avoid the
documented chunk-boundary artifacts of map-only jobs)."""

import numpy as np
import pytest

from repro.algorithms.djcluster import (
    DJClusterParams,
    djcluster_sequential,
    preprocess_array,
    run_djcluster_mapreduce,
    run_preprocessing_pipeline,
)
from repro.algorithms.kmeans import kmeans_sequential, run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job, sample_array
from repro.index.rtree import RTree
from repro.index.rtree_mr import build_rtree_mapreduce
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner


@pytest.fixture(scope="module")
def sampled_data(small_corpus):
    dataset, _ = small_corpus
    return sample_array(dataset.flat().sort_by_time(), 60.0)


@pytest.fixture()
def single_chunk_runner(sampled_data):
    hdfs = SimulatedHDFS(
        paper_cluster(5), chunk_size=64 * (len(sampled_data) + 1), seed=0
    )
    hdfs.put_trace_array("traces", sampled_data)
    return JobRunner(hdfs)


class TestSamplingEquivalence:
    @pytest.mark.parametrize("technique", ["upper", "middle"])
    @pytest.mark.parametrize("window", [60.0, 300.0, 600.0])
    def test_equal_for_all_parameters(self, small_corpus, technique, window):
        dataset, _ = small_corpus
        arr = dataset.flat().sort_by_time()
        hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * (len(arr) + 1), seed=0)
        hdfs.put_trace_array("traces", arr)
        runner = JobRunner(hdfs)
        run_sampling_job(runner, "traces", "out", window, technique)
        mr = hdfs.read_trace_array("out").sort_by_time()
        seq = sample_array(arr, window, technique).sort_by_time()
        assert len(mr) == len(seq)
        assert np.allclose(mr.timestamp, seq.timestamp)
        assert np.allclose(mr.latitude, seq.latitude)
        assert np.allclose(mr.longitude, seq.longitude)


class TestPreprocessingEquivalence:
    def test_pipeline_equals_sequential_filters(self, sampled_data, single_chunk_runner):
        params = DJClusterParams()
        run_preprocessing_pipeline(
            single_chunk_runner, "traces", params, workdir="w"
        )
        hdfs = single_chunk_runner.hdfs
        stationary_seq, deduped_seq = preprocess_array(sampled_data, params)
        assert hdfs.file_records("w/stationary") == len(stationary_seq)
        mr_final = hdfs.read_trace_array("w/preprocessed").sort_by_time()
        seq_final = deduped_seq.sort_by_time()
        assert len(mr_final) == len(seq_final)
        assert np.allclose(mr_final.timestamp, seq_final.timestamp)


class TestKMeansEquivalence:
    @pytest.mark.parametrize("metric", ["squared_euclidean", "haversine"])
    def test_identical_trajectories(self, sampled_data, single_chunk_runner, metric):
        pts = sampled_data.coordinates()
        init = pts[np.random.default_rng(3).choice(len(pts), 5, replace=False)]
        seq = kmeans_sequential(
            pts, 5, metric, convergence_delta=1e-10, max_iter=40, initial_centroids=init
        )
        mr = run_kmeans_mapreduce(
            single_chunk_runner,
            "traces",
            5,
            metric,
            convergence_delta=1e-10,
            max_iter=40,
            initial_centroids=init,
        )
        assert mr.n_iterations == seq.n_iterations
        assert np.abs(mr.centroids - seq.centroids).max() < 1e-8
        assert mr.inertia == pytest.approx(seq.inertia, rel=1e-9)

    def test_multi_chunk_also_equivalent(self, sampled_data):
        """Chunking never changes k-means (it is not a map-only heuristic:
        reduce sees all partial data)."""
        hdfs = SimulatedHDFS(paper_cluster(5), chunk_size=64 * 200, seed=0)
        hdfs.put_trace_array("traces", sampled_data)
        runner = JobRunner(hdfs)
        assert len(hdfs.chunks("traces")) > 3
        pts = sampled_data.coordinates()
        init = pts[:4]
        seq = kmeans_sequential(pts, 4, convergence_delta=1e-10, max_iter=30, initial_centroids=init)
        mr = run_kmeans_mapreduce(
            runner, "traces", 4, convergence_delta=1e-10, max_iter=30, initial_centroids=init
        )
        assert np.abs(mr.centroids - seq.centroids).max() < 1e-8


class TestDJClusterEquivalence:
    def test_identical_clusters(self, sampled_data, single_chunk_runner):
        params = DJClusterParams(radius_m=80, min_pts=5)
        seq = djcluster_sequential(sampled_data, params)
        mr = run_djcluster_mapreduce(single_chunk_runner, "traces", params, workdir="dj")
        assert mr.cluster_signature() == seq.cluster_signature()
        assert np.array_equal(np.sort(mr.noise_ids), np.sort(seq.noise_ids))
        assert np.array_equal(mr.labels >= 0, seq.labels >= 0)

    @pytest.mark.parametrize("curve", ["zorder", "hilbert"])
    def test_curve_choice_does_not_change_clusters(
        self, sampled_data, single_chunk_runner, curve
    ):
        params = DJClusterParams(radius_m=80, min_pts=5)
        mr = run_djcluster_mapreduce(
            single_chunk_runner, "traces", params, rtree_curve=curve, workdir=f"dj-{curve}"
        )
        seq = djcluster_sequential(sampled_data, params)
        assert mr.cluster_signature() == seq.cluster_signature()


class TestRTreeEquivalence:
    def test_mr_tree_answers_like_local_tree(self, sampled_data, single_chunk_runner):
        build = build_rtree_mapreduce(single_chunk_runner, "traces", n_partitions=4)
        local = RTree.bulk_load(sampled_data.coordinates())
        for radius in (100.0, 1000.0):
            got = set(build.tree.query_radius(39.9, 116.4, radius).tolist())
            want = set(local.query_radius(39.9, 116.4, radius).tolist())
            assert got == want
