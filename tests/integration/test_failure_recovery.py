"""Integration: fault tolerance across the full stack.

The Hadoop behaviours Section III describes — replica failover and task
re-execution — must keep every GEPETO algorithm's *output* identical
under injected failures."""

import numpy as np
import pytest

from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.algorithms.kmeans import run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job, sample_array
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.failures import FailureInjector
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner


@pytest.fixture(scope="module")
def sampled(small_corpus):
    dataset, _ = small_corpus
    return sample_array(dataset.flat().sort_by_time(), 60.0)


def _hdfs(sampled, chunk_traces=300):
    hdfs = SimulatedHDFS(paper_cluster(6), chunk_size=64 * chunk_traces, seed=4)
    hdfs.put_trace_array("traces", sampled)
    return hdfs


class TestSamplingUnderFailures:
    def test_scripted_map_crashes_do_not_change_output(self, sampled):
        hdfs_clean = _hdfs(sampled)
        clean = JobRunner(hdfs_clean)
        run_sampling_job(clean, "traces", "out", 300.0)
        want = hdfs_clean.read_trace_array("out").sort_by_time()

        hdfs_flaky = _hdfs(sampled)
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=2)
        inj.script_failures("map-0002", attempts=1)
        flaky = JobRunner(hdfs_flaky, failure_injector=inj)
        res = run_sampling_job(flaky, "traces", "out", 300.0)
        got = hdfs_flaky.read_trace_array("out").sort_by_time()
        assert len(got) == len(want)
        assert np.allclose(got.timestamp, want.timestamp)
        assert res.counters.value(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS) == 3

    def test_random_failures_chaos_run(self, sampled):
        hdfs = _hdfs(sampled)
        inj = FailureInjector(probability=0.15, seed=9)
        runner = JobRunner(hdfs, failure_injector=inj, max_attempts=12)
        run_sampling_job(runner, "traces", "out", 300.0)
        seq = sample_array(sampled, 300.0)
        # Same count up to chunk-boundary artifacts.
        n_chunks = len(hdfs.chunks("traces"))
        assert abs(hdfs.file_records("out") - len(seq)) <= n_chunks


class TestKMeansUnderFailures:
    def test_iterations_survive_task_crashes(self, sampled):
        pts = sampled.coordinates()
        init = pts[:4]
        hdfs_a = _hdfs(sampled)
        clean = run_kmeans_mapreduce(
            JobRunner(hdfs_a), "traces", 4, initial_centroids=init, max_iter=5,
            convergence_delta=1e-10,
        )
        hdfs_b = _hdfs(sampled)
        inj = FailureInjector(probability=0.1, seed=5)
        flaky = run_kmeans_mapreduce(
            JobRunner(hdfs_b, failure_injector=inj, max_attempts=12),
            "traces", 4, initial_centroids=init, max_iter=5, convergence_delta=1e-10,
        )
        assert np.abs(clean.centroids - flaky.centroids).max() < 1e-9


class TestThreadsWithFailures:
    def test_thread_pool_with_scripted_failures_deterministic(self, sampled):
        """Concurrent map tasks + injected crashes: output still equals
        the serial clean run (retries are per-task, merge is ordered)."""
        hdfs_a = _hdfs(sampled)
        clean = JobRunner(hdfs_a)
        run_sampling_job(clean, "traces", "out", 300.0)
        want = hdfs_a.read_trace_array("out").sort_by_time()

        hdfs_b = _hdfs(sampled)
        inj = FailureInjector()
        inj.script_failures("map-0001", attempts=2)
        threads = JobRunner(
            hdfs_b, failure_injector=inj, executor="threads", max_workers=6
        )
        run_sampling_job(threads, "traces", "out", 300.0)
        got = hdfs_b.read_trace_array("out").sort_by_time()
        assert len(got) == len(want)
        assert np.allclose(got.timestamp, want.timestamp)

    def test_thread_pool_with_random_failures_completes(self, sampled):
        hdfs = _hdfs(sampled)
        inj = FailureInjector(probability=0.2, seed=3)
        runner = JobRunner(
            hdfs, failure_injector=inj, executor="threads", max_workers=8,
            max_attempts=15,
        )
        res = run_sampling_job(runner, "traces", "out", 300.0)
        assert hdfs.file_records("out") > 0
        assert res.counters.value(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS) > 0


class TestDatanodeLoss:
    def test_clustering_after_node_loss(self, sampled):
        hdfs = _hdfs(sampled)
        victim = hdfs.chunks("traces")[0].replicas[0]
        hdfs.kill_datanode(victim)
        runner = JobRunner(hdfs)
        params = DJClusterParams(radius_m=100, min_pts=5)
        res = run_djcluster_mapreduce(runner, "traces", params, workdir="dj")
        assert res.n_clusters > 0
        # No work was scheduled on the dead node anywhere in the run.
        assert victim in hdfs.dead_nodes

    def test_unrecoverable_when_all_replicas_dead(self, sampled):
        hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 500, replication=2, seed=1)
        hdfs.put_trace_array("traces", sampled)
        for node in hdfs.chunks("traces")[0].replicas:
            hdfs.kill_datanode(node)
        runner = JobRunner(hdfs)
        with pytest.raises(IOError):
            run_sampling_job(runner, "traces", "out", 300.0)
