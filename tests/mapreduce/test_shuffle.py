"""Unit tests for shuffle and sort."""

import pytest

from repro.mapreduce.job import ConstantKeyPartitioner, HashPartitioner, Partitioner
from repro.mapreduce.shuffle import ShuffleResult, group_sorted, shuffle


class TestGroupSorted:
    def test_groups_and_sorts_keys(self):
        pairs = [("b", 1), ("a", 2), ("b", 3), ("a", 4)]
        groups = group_sorted(pairs)
        assert groups == [("a", [2, 4]), ("b", [1, 3])]

    def test_value_arrival_order_preserved(self):
        pairs = [("k", 3), ("k", 1), ("k", 2)]
        assert group_sorted(pairs) == [("k", [3, 1, 2])]

    def test_numeric_keys_natural_order(self):
        pairs = [(10, "a"), (2, "b"), (1, "c")]
        assert [k for k, _ in group_sorted(pairs)] == [1, 2, 10]

    def test_mixed_key_types_do_not_crash(self):
        pairs = [("a", 1), (1, 2), (2.5, 3)]
        groups = group_sorted(pairs)
        assert len(groups) == 3

    def test_empty(self):
        assert group_sorted([]) == []


class TestShuffle:
    def test_all_records_delivered_once(self):
        outputs = [[(i % 5, i) for i in range(20)], [(i % 5, -i) for i in range(15)]]
        result = shuffle(outputs, HashPartitioner(), 3)
        delivered = [
            (k, v)
            for part in result.partitions
            for k, vs in part
            for v in vs
        ]
        flat = [p for out in outputs for p in out]
        assert sorted(map(repr, delivered)) == sorted(map(repr, flat))

    def test_same_key_single_partition(self):
        outputs = [[("x", 1)], [("x", 2)], [("x", 3)]]
        result = shuffle(outputs, HashPartitioner(), 4)
        non_empty = [p for p in result.partitions if p]
        assert len(non_empty) == 1
        assert non_empty[0] == [("x", [1, 2, 3])]

    def test_constant_partitioner_collects_everything_at_zero(self):
        outputs = [[("a", 1), ("b", 2)], [("c", 3)]]
        result = shuffle(outputs, ConstantKeyPartitioner(), 3)
        assert result.records_for(0) == 3
        assert result.partitions[1] == [] and result.partitions[2] == []

    def test_byte_accounting(self):
        outputs = [[("k", "1234")]]  # key 1 byte + value 4 bytes
        result = shuffle(outputs, HashPartitioner(), 2)
        assert result.shuffled_bytes == 5
        assert sum(result.partition_bytes) == 5

    def test_out_of_range_partitioner_rejected(self):
        class Bad(Partitioner):
            def partition(self, key, n):
                return n  # off by one

        with pytest.raises(ValueError):
            shuffle([[("k", 1)]], Bad(), 2)

    def test_zero_reducers_rejected(self):
        with pytest.raises(ValueError):
            shuffle([], HashPartitioner(), 0)

    def test_records_for(self):
        result = ShuffleResult([[("a", [1, 2])], []], 0)
        assert result.records_for(0) == 2
        assert result.records_for(1) == 0
        assert result.n_reducers == 2
