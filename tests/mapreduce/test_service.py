"""The multi-tenant JobService: submit → future lifecycle, admission
control, result-cache semantics, fair-share accounting, and the
byte-identity invariant (every tenant of a shared service produces the
same bytes as a solo run, on every backend and under chaos)."""

from concurrent.futures import CancelledError

import pytest

from repro.algorithms.sampling import SamplingMapper
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.chaos import _trace_array_signature, run_multitenant_check
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS, Configuration
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.service import (
    RESULT_CACHE_HITS,
    SERVICE_GROUP,
    JobService,
    JobStatus,
    QuotaExceededError,
    UnknownTenantError,
)
from repro.observability.report import summarize, tenant_accounting


def _hdfs(n_workers=3):
    dataset, _ = generate_dataset(SyntheticConfig(n_users=2, days=1, seed=7))
    corpus = dataset.flat().sort_by_time()
    hdfs = SimulatedHDFS(paper_cluster(n_workers), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    return hdfs


def _sampling_spec(name, out, window=600.0):
    return JobSpec(
        name=name,
        mapper=SamplingMapper,
        input_paths=["input/traces"],
        output_path=out,
        conf=Configuration(
            {"sampling.window_s": window, "sampling.technique": "upper"}
        ),
        map_cost_factor=0.6,
    )


# -- futures lifecycle -------------------------------------------------------

def test_future_lifecycle_queued_then_done():
    with JobService(_hdfs(), tenants={"t1": 1.0}, start=False) as service:
        future = service.submit(_sampling_spec("samp", "out/a"), tenant="t1")
        assert future.status == JobStatus.QUEUED
        assert not future.done()
        service.start()
        result = future.result(timeout=60)
        assert future.done()
        assert future.status == JobStatus.DONE
        assert future.exception() is None
        # The service namespaces job names by tenant (history validation
        # requires unique names across tenants).
        assert result.job_name == "t1:samp"
        assert result.n_map_tasks > 0
        assert len(service.hdfs.read_trace_array("out/a")) > 0


def test_failed_job_resolves_future_with_exception():
    bad = JobSpec(
        name="bad",
        mapper=SamplingMapper,
        input_paths=["input/does-not-exist"],
        output_path="out/bad",
    )
    with JobService(_hdfs(), tenants={"t1": 1.0}) as service:
        future = service.submit(bad, tenant="t1")
        with pytest.raises(Exception):
            future.result(timeout=60)
        assert future.status == JobStatus.FAILED
        assert future.exception() is not None


def test_unknown_tenant_rejected():
    with JobService(_hdfs(), tenants={"alice": 1.0}, start=False) as service:
        with pytest.raises(UnknownTenantError):
            service.submit(_sampling_spec("s", "out/s"), tenant="mallory")


def test_quota_caps_queued_jobs_per_tenant():
    roster = {"t": {"weight": 1.0, "max_queued": 1}}
    with JobService(_hdfs(), tenants=roster, start=False) as service:
        first = service.submit(_sampling_spec("s0", "out/s0"), tenant="t")
        with pytest.raises(QuotaExceededError):
            service.submit(_sampling_spec("s1", "out/s1"), tenant="t")
        service.start()
        first.result(timeout=60)
        # Admission is a queue-depth cap, not a lifetime cap: once the
        # backlog drains the tenant may submit again.
        service.submit(_sampling_spec("s2", "out/s2"), tenant="t").result(
            timeout=60
        )


def test_cancel_queued_job():
    with JobService(_hdfs(), tenants={"t": 1.0}, start=False) as service:
        keep = service.submit(_sampling_spec("keep", "out/keep"), tenant="t")
        drop = service.submit(_sampling_spec("drop", "out/drop"), tenant="t")
        assert drop.cancel()
        assert drop.status == JobStatus.CANCELLED
        with pytest.raises(CancelledError):
            drop.result(timeout=5)
        service.start()
        keep.result(timeout=60)
        # A completed future can no longer be cancelled.
        assert not keep.cancel()
        assert not service.hdfs.exists("out/drop")


# -- result cache ------------------------------------------------------------

def test_resubmission_is_cache_hit_with_zero_map_tasks():
    with JobService(_hdfs(), tenants={"t": 1.0}) as service:
        spec = _sampling_spec("first", "out/first")
        r1 = service.submit(spec, tenant="t").result(timeout=60)
        assert r1.n_map_tasks > 0
        r2 = service.submit(
            _sampling_spec("again", "out/again"), tenant="t"
        ).result(timeout=60)
        assert r2.n_map_tasks == 0
        assert r2.counters.value(SERVICE_GROUP, RESULT_CACHE_HITS) == 1
        assert service.result_cache.hits == 1
        sig = _trace_array_signature(service.hdfs.read_trace_array("out/first"))
        assert (
            _trace_array_signature(service.hdfs.read_trace_array("out/again"))
            == sig
        )
        # A hit is charged one job-setup, not a map phase.
        assert r2.timing.map_s == 0.0
        assert r2.timing.setup_s == pytest.approx(service.cost_model.job_setup_s)


def test_different_conf_is_not_a_hit():
    with JobService(_hdfs(), tenants={"t": 1.0}) as service:
        service.submit(_sampling_spec("a", "out/a"), tenant="t").result(timeout=60)
        other = service.submit(
            _sampling_spec("b", "out/b", window=120.0), tenant="t"
        ).result(timeout=60)
        assert other.n_map_tasks > 0
        assert service.result_cache.hits == 0
        assert service.result_cache.misses == 2


def test_cache_can_be_disabled():
    with JobService(_hdfs(), tenants={"t": 1.0}, result_cache=False) as service:
        assert service.result_cache is None
        service.submit(_sampling_spec("a", "out/a"), tenant="t").result(timeout=60)
        rerun = service.submit(
            _sampling_spec("b", "out/b"), tenant="t"
        ).result(timeout=60)
        assert rerun.n_map_tasks > 0


# -- multi-tenant equivalence ------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_two_tenants_byte_identical_to_solo(backend):
    workers = None if backend == "serial" else 2
    solo_hdfs = _hdfs()
    with JobRunner(solo_hdfs, executor=backend, max_workers=workers) as runner:
        runner.run(_sampling_spec("solo", "out/solo"))
        solo_sig = _trace_array_signature(solo_hdfs.read_trace_array("out/solo"))

    hdfs = _hdfs()
    with JobService(
        hdfs, tenants={"alice": 2.0, "bob": 1.0},
        executor=backend, max_workers=workers,
    ) as service:
        futures = {
            t: service.client(t).submit(
                _sampling_spec("samp", f"tenants/{t}/out")
            )
            for t in ("alice", "bob")
        }
        for tenant, future in futures.items():
            future.result(timeout=120)
            sig = _trace_array_signature(
                hdfs.read_trace_array(f"tenants/{tenant}/out")
            )
            assert sig == solo_sig, (backend, tenant)
    assert not service.history.validate()


def test_two_tenants_equivalent_under_chaos():
    outcomes = run_multitenant_check(
        drivers=["sampling"], seed=3, with_chaos=True
    )
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert outcome.chaos_active
    assert outcome.ok, outcome
    assert "alice" in outcome.report and "bob" in outcome.report


# -- fair-share accounting and observability ---------------------------------

def _run_contended_service():
    hdfs = _hdfs()
    service = JobService(hdfs, tenants={"alice": 2.0, "bob": 1.0}, start=False)
    for tenant in ("alice", "bob"):
        client = service.client(tenant)
        for j in range(2):
            client.submit(
                _sampling_spec(
                    f"samp-{j}", f"tenants/{tenant}/out-{j}",
                    window=300.0 * (j + 1) + (7 if tenant == "bob" else 0),
                )
            )
    service.start()
    service.wait(timeout=120)
    return service


def test_interleave_is_deterministic():
    a = _run_contended_service()
    b = _run_contended_service()
    try:
        assert a.fair_share_plan().tasks == b.fair_share_plan().tasks
        ra, rb = a.report(), b.report()
        assert ra.tenants == rb.tenants
        assert ra.interleaved_makespan_s == rb.interleaved_makespan_s
    finally:
        a.close()
        b.close()


def test_report_shape_and_render():
    service = _run_contended_service()
    try:
        report = service.report()
        assert set(report.tenants) == {"alice", "bob"}
        alice = report.tenants["alice"]
        assert alice["weight"] == 2.0
        assert alice["jobs"] == 2
        assert alice["weight_share"] == pytest.approx(2.0 / 3.0)
        assert 0.0 < report.contended_window_s <= report.interleaved_makespan_s
        assert report.serial_s > 0
        rendered = report.render()
        assert "alice" in rendered and "bob" in rendered
    finally:
        service.close()


def test_history_tags_tenants_and_accounting_rolls_up():
    service = _run_contended_service()
    try:
        history = service.history
        assert not history.validate()
        accounts = tenant_accounting(summarize(history))
        assert set(accounts) == {"alice", "bob"}
        for row in accounts.values():
            assert row["jobs"] == 2
            assert row["total_s"] > 0
    finally:
        service.close()
