"""Unit tests for cluster topology."""

import pytest

from repro.mapreduce.cluster import ClusterSpec, Node, paper_cluster


class TestNode:
    def test_defaults(self):
        n = Node("w0", "rack1")
        assert n.map_slots == 2 and n.reduce_slots == 2
        assert n.is_datanode and n.is_tasktracker

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Node("w0", "r", map_slots=-1)


class TestClusterSpec:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec([Node("a", "r"), Node("a", "r")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec([])

    def test_unknown_namenode_rejected(self):
        with pytest.raises(ValueError, match="namenode"):
            ClusterSpec([Node("a", "r")], namenode="ghost")

    def test_requires_datanode_and_tasktracker(self):
        with pytest.raises(ValueError):
            ClusterSpec([Node("a", "r", is_datanode=False, is_tasktracker=False)])

    def test_lookups(self):
        spec = ClusterSpec([Node("a", "r1"), Node("b", "r2")])
        assert spec.node("a").rack == "r1"
        assert spec.rack_of("b") == "r2"
        assert len(spec) == 2
        assert set(spec.racks()) == {"r1", "r2"}

    def test_slot_totals(self):
        spec = ClusterSpec(
            [Node("a", "r", map_slots=2), Node("b", "r", map_slots=3, reduce_slots=1)]
        )
        assert spec.total_map_slots() == 5
        assert spec.total_reduce_slots() == 3


class TestPaperCluster:
    def test_paper_deployment_roles(self):
        spec = paper_cluster(n_workers=5)
        # 7 nodes overall: namenode, jobtracker and 5 workers (Section VI).
        assert len(spec) == 7
        assert spec.namenode == "namenode"
        assert spec.jobtracker == "jobtracker"
        nn = spec.node("namenode")
        assert not nn.is_datanode and not nn.is_tasktracker
        assert len(spec.datanodes()) == 5
        assert len(spec.tasktrackers()) == 5

    def test_workers_grouped_into_racks(self):
        spec = paper_cluster(n_workers=9, nodes_per_rack=4)
        worker_racks = {n.rack for n in spec.tasktrackers()}
        assert len(worker_racks) == 3  # 4 + 4 + 1

    def test_slot_parameters(self):
        spec = paper_cluster(n_workers=3, map_slots=4, reduce_slots=1)
        assert spec.total_map_slots() == 12
        assert spec.total_reduce_slots() == 3

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            paper_cluster(n_workers=0)
