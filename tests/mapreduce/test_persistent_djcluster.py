"""DJ-Cluster on the shared persistent index: an execution detail.

The neighborhood phase now reads the catalog-managed persistent R-tree
by default.  That switch must be invisible to the answers: clusters,
labels and noise must be byte-identical to the legacy per-job in-memory
build — on every execution backend, under a fixed chaos schedule, and
under a memory budget.  And because the index is shared, a second
``ensure`` over the same preprocessed dataset version must be a zero-job
catalog hit.
"""

import numpy as np
import pytest

from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.mapreduce.chaos import INPUT_PATH, _build_corpus, _fresh_runner, default_schedule
from repro.mapreduce.config import BACKENDS
from repro.observability.events import EventKind

#: DJ-Cluster over the tiny chaos corpus: every point stationary enough
#: to survive the speed filter needs a reachable neighborhood, so loosen
#: the defaults to get non-trivial clusters from 3 users x 1 day.
PARAMS = DJClusterParams(radius_m=200.0, min_pts=4)


def _run(use_persistent, *, backend="serial", chaos=None, budget=None):
    runner = _fresh_runner(
        _build_corpus(3, 1, 42), 3, 64 * 1024, chaos,
        executor=backend, max_workers=2, memory_budget_mb=budget,
    )
    try:
        result = run_djcluster_mapreduce(
            runner, INPUT_PATH, PARAMS, use_persistent_index=use_persistent
        )
        kinds = [e.kind for e in runner.history]
        return result, kinds
    finally:
        runner.close()


def _assert_identical(a, b):
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.noise_ids, b.noise_ids)
    assert len(a.clusters) == len(b.clusters)
    for x, y in zip(a.clusters, b.clusters):
        assert np.array_equal(x, y)
    assert np.array_equal(
        a.preprocessed.coordinates(), b.preprocessed.coordinates()
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_persistent_index_is_invisible_per_backend(backend):
    legacy, legacy_kinds = _run(False, backend=backend)
    shared, shared_kinds = _run(True, backend=backend)
    assert legacy.n_clusters > 0, "corpus produced no clusters — test is vacuous"
    _assert_identical(legacy, shared)
    # Same simulated build cost: the catalog runs the same Figure-6 jobs.
    # (The neighborhood stage drifts by microseconds — the broadcast now
    # ships the portable page set, whose modeled size differs slightly
    # from the pickled tree's.)
    assert shared.stage_sim_seconds["preprocessing"] == legacy.stage_sim_seconds["preprocessing"]
    assert shared.stage_sim_seconds["rtree_build"] == legacy.stage_sim_seconds["rtree_build"]
    assert shared.sim_seconds == pytest.approx(legacy.sim_seconds, rel=1e-5)
    assert EventKind.INDEX_PUBLISH in shared_kinds
    assert EventKind.INDEX_PUBLISH not in legacy_kinds


def test_persistent_index_is_invisible_under_chaos():
    schedule = default_schedule(3)
    legacy, _ = _run(False, chaos=schedule)
    shared, _ = _run(True, chaos=schedule)
    assert legacy.n_clusters > 0
    _assert_identical(legacy, shared)


def test_persistent_index_is_invisible_under_memory_budget():
    legacy, _ = _run(False)
    budgeted, kinds = _run(True, budget=0.01)
    _assert_identical(legacy, budgeted)
    assert EventKind.INDEX_PUBLISH in kinds


def test_second_ensure_over_same_version_is_zero_job_hit():
    from repro.index.persistent import IndexCatalog

    runner = _fresh_runner(_build_corpus(3, 1, 42), 3, 64 * 1024, None)
    try:
        result = run_djcluster_mapreduce(runner, INPUT_PATH, PARAMS)
        assert result.preprocessed is not None
        catalog = IndexCatalog(runner.hdfs)
        (entry,) = catalog.entries()
        n_jobs = sum(1 for e in runner.history if e.kind == EventKind.JOB_START)
        index, built = catalog.ensure(
            runner,
            entry.input_path,
            n_partitions=entry.params["n_partitions"],
            max_entries=entry.params["max_entries"],
        )
        assert not built
        assert sum(1 for e in runner.history if e.kind == EventKind.JOB_START) == n_jobs
        assert [e.kind for e in runner.history].count(EventKind.INDEX_REUSE) == 1
        assert len(index) == entry.n_points
        assert runner.history.validate() == []
    finally:
        runner.close()


def test_rerun_after_repreprocessing_rebuilds_not_reuses():
    """Re-running the driver rewrites the preprocessed dataset, bumping
    its namenode version: the catalog key changes, so the second run
    publishes a second index rather than unsafely reusing the first."""
    runner = _fresh_runner(_build_corpus(3, 1, 42), 3, 64 * 1024, None)
    try:
        first = run_djcluster_mapreduce(runner, INPUT_PATH, PARAMS, workdir="tmp/dj-a")
        second = run_djcluster_mapreduce(runner, INPUT_PATH, PARAMS, workdir="tmp/dj-b")
        _assert_identical(first, second)
        kinds = [e.kind for e in runner.history]
        assert kinds.count(EventKind.INDEX_PUBLISH) == 2
        assert kinds.count(EventKind.INDEX_REUSE) == 0
    finally:
        runner.close()
