"""Unit tests for job counters."""

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_value(self):
        c = Counters()
        c.increment("task", "maps", 3)
        c.increment("task", "maps")
        assert c.value("task", "maps") == 4

    def test_zero_increment_creates_nothing(self):
        c = Counters()
        c.increment("g", "n", 0)
        assert c.as_dict() == {}

    def test_unknown_counter_is_zero(self):
        assert Counters().value("g", "n") == 0

    def test_group_is_copy(self):
        c = Counters()
        c.increment("g", "n", 1)
        g = c.group("g")
        g["n"] = 99
        assert c.value("g", "n") == 1

    def test_merge(self):
        a = Counters()
        a.increment("g", "x", 1)
        a.increment("g", "y", 2)
        b = Counters()
        b.increment("g", "x", 10)
        b.increment("h", "z", 5)
        a.merge(b)
        assert a.value("g", "x") == 11
        assert a.value("g", "y") == 2
        assert a.value("h", "z") == 5
        # merge does not mutate the source
        assert b.value("g", "x") == 10

    def test_iteration_sorted(self):
        c = Counters()
        c.increment("b", "y", 1)
        c.increment("a", "x", 1)
        c.increment("a", "w", 1)
        assert list(c) == [("a", "w", 1), ("a", "x", 1), ("b", "y", 1)]

    def test_negative_amounts_allowed(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.increment("g", "n", -2)
        assert c.value("g", "n") == 3
