"""Unit tests for job counters."""

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_value(self):
        c = Counters()
        c.increment("task", "maps", 3)
        c.increment("task", "maps")
        assert c.value("task", "maps") == 4

    def test_zero_increment_creates_nothing(self):
        c = Counters()
        c.increment("g", "n", 0)
        assert c.as_dict() == {}

    def test_unknown_counter_is_zero(self):
        assert Counters().value("g", "n") == 0

    def test_group_is_copy(self):
        c = Counters()
        c.increment("g", "n", 1)
        g = c.group("g")
        g["n"] = 99
        assert c.value("g", "n") == 1

    def test_merge(self):
        a = Counters()
        a.increment("g", "x", 1)
        a.increment("g", "y", 2)
        b = Counters()
        b.increment("g", "x", 10)
        b.increment("h", "z", 5)
        a.merge(b)
        assert a.value("g", "x") == 11
        assert a.value("g", "y") == 2
        assert a.value("h", "z") == 5
        # merge does not mutate the source
        assert b.value("g", "x") == 10

    def test_iteration_sorted(self):
        c = Counters()
        c.increment("b", "y", 1)
        c.increment("a", "x", 1)
        c.increment("a", "w", 1)
        assert list(c) == [("a", "w", 1), ("a", "x", 1), ("b", "y", 1)]

    def test_negative_amounts_allowed(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.increment("g", "n", -2)
        assert c.value("g", "n") == 3


class TestCountersRoundTrip:
    def _sample(self):
        c = Counters()
        c.increment("task", "map_input_records", 100)
        c.increment("task", "shuffle_bytes", 2048)
        c.increment("scheduler", "data_local_maps", 7)
        return c

    def test_to_dict_is_sorted(self):
        c = Counters()
        c.increment("zeta", "b", 1)
        c.increment("zeta", "a", 2)
        c.increment("alpha", "x", 3)
        d = c.to_dict()
        assert list(d) == ["alpha", "zeta"]
        assert list(d["zeta"]) == ["a", "b"]

    def test_from_dict_inverts_to_dict(self):
        c = self._sample()
        assert Counters.from_dict(c.to_dict()) == c

    def test_round_trip_survives_json(self):
        import json

        c = self._sample()
        restored = Counters.from_dict(json.loads(json.dumps(c.to_dict())))
        assert restored == c

    def test_merge_round_trip(self):
        a = self._sample()
        b = Counters()
        b.increment("task", "map_input_records", 50)
        b.increment("extra", "n", 1)
        merged = Counters.from_dict(a.to_dict())
        merged.merge(Counters.from_dict(b.to_dict()))
        direct = self._sample()
        direct.merge(b)
        assert merged == direct
        assert merged.value("task", "map_input_records") == 150

    def test_as_dict_alias(self):
        c = self._sample()
        assert c.as_dict() == c.to_dict()

    def test_equality_ignores_insertion_order(self):
        a = Counters()
        a.increment("g", "x", 1)
        a.increment("g", "y", 2)
        b = Counters()
        b.increment("g", "y", 2)
        b.increment("g", "x", 1)
        assert a == b
        assert a != object()  # NotImplemented falls back to identity
