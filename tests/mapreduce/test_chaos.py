"""Chaos-engine regressions: scheduled faults, recovery, accounting.

The property suite (tests/properties/test_chaos_equivalence.py) checks
the *algorithms* survive chaos; this file pins down the *engine*: node
loss re-runs exactly the lost tasks, repeated node failures trip the
blacklist, retry exhaustion fails the job with the full failure chain,
and no re-executed record is ever counted twice.
"""

import pytest

from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.failures import (
    ChaosSchedule,
    FailureInjector,
    Fault,
    FaultKind,
    JobFailedError,
    MAX_TASK_ATTEMPTS,
    TaskFailure,
)
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.scheduler import NodeBlacklist, RetryPolicy
from repro.observability.events import EventKind

N_RECORDS = 24


class EchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 3, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def make_deployment(n_workers=5, chunk_size=64, replication=3, seed=2):
    hdfs = SimulatedHDFS(
        paper_cluster(n_workers), chunk_size=chunk_size,
        replication=replication, seed=seed,
    )
    hdfs.put_records("in", [(i, 1) for i in range(N_RECORDS)], record_bytes=16)
    return hdfs


def spec(out="out"):
    return JobSpec("j", EchoMapper, ["in"], out, reducer=SumReducer)


class TestChaosSchedule:
    def test_probability_validated(self):
        with pytest.raises(ValueError, match="crash_prob"):
            ChaosSchedule(crash_prob=1.5)

    def test_slow_factor_validated(self):
        with pytest.raises(ValueError, match="slow_factor"):
            ChaosSchedule(slow_factor=0.5)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("disk_on_fire")

    def test_scripted_crash_hits_exact_attempt(self):
        chaos = ChaosSchedule(faults=[Fault(FaultKind.TASK_CRASH, task="map-0001", attempt=2)])
        chaos.fail_attempt("map-0001", 1)  # survives
        with pytest.raises(TaskFailure, match="scripted chaos crash"):
            chaos.fail_attempt("map-0001", 2)
        chaos.fail_attempt("map-0002", 2)  # other tasks unaffected

    def test_bad_node_crashes_every_attempt(self):
        chaos = ChaosSchedule(bad_nodes={"worker03"})
        for attempt in (1, 2, 3):
            with pytest.raises(TaskFailure, match="bad node"):
                chaos.fail_attempt("map-0000", attempt, node="worker03")
        chaos.fail_attempt("map-0000", 1, node="worker01")

    def test_decisions_are_order_independent(self):
        """Counter-hashed draws: the same query gives the same answer no
        matter how many other queries happened before it."""
        a = ChaosSchedule(seed=5, crash_prob=0.4)
        b = ChaosSchedule(seed=5, crash_prob=0.4)
        # Query `a` over many tasks first, then compare a fixed probe.
        for i in range(50):
            try:
                a.fail_attempt(f"map-{i:04d}", 1)
            except TaskFailure:
                pass

        def probe(schedule):
            doomed = []
            for i in range(20):
                try:
                    schedule.fail_attempt(f"reduce-{i:04d}", 1)
                    doomed.append(False)
                except TaskFailure:
                    doomed.append(True)
            return doomed

        assert probe(a) == probe(b)
        assert any(probe(a)) and not all(probe(a))

    def test_slowdown_and_refetch_deterministic(self):
        chaos = ChaosSchedule(seed=3, slow_node_prob=0.5, shuffle_fetch_prob=0.5)
        nodes = [f"worker{i:02d}" for i in range(10)]
        assert [chaos.node_slowdown(n) for n in nodes] == [
            chaos.node_slowdown(n) for n in nodes
        ]
        assert {chaos.node_slowdown(n) for n in nodes} == {1.0, chaos.slow_factor}
        reducers = [f"reduce-{i:04d}" for i in range(10)]
        assert [chaos.shuffle_fetch_failures(r) for r in reducers] == [
            chaos.shuffle_fetch_failures(r) for r in reducers
        ]


class TestNodeLossMidMap:
    @pytest.fixture()
    def lossy_run(self):
        hdfs = make_deployment()
        chaos = ChaosSchedule(faults=[Fault(FaultKind.NODE_LOSS, node="worker01")])
        runner = JobRunner(hdfs, chaos=chaos)
        result = runner.run(spec())
        return hdfs, runner, result

    def test_output_survives_node_loss(self, lossy_run):
        hdfs, _, _ = lossy_run
        assert sum(v for _, v in hdfs.read_records("out")) == N_RECORDS
        assert "worker01" in hdfs.dead_nodes

    def test_exactly_the_lost_tasks_are_rerun(self, lossy_run):
        _, runner, result = lossy_run
        lost_events = [e for e in runner.history if e.kind == EventKind.NODE_LOST]
        assert len(lost_events) == 1
        event = lost_events[0]
        assert event.node == "worker01"
        on_victim = sorted(
            a.task_id
            for a in result.map_plan.assignments
            if a.node == "worker01" and not a.speculative
        )
        assert event.data["lost_tasks"] == on_victim
        assert on_victim, "victim should have held at least one map task"
        # Each re-dispatched task carries a node_loss fault event.
        redispatched = {
            e.task
            for e in runner.history
            if e.kind == EventKind.FAULT_INJECTED
            and e.data["fault"] == FaultKind.NODE_LOSS
        }
        assert redispatched == set(on_victim)

    def test_node_loss_is_charged_and_counted(self, lossy_run):
        _, runner, result = lossy_run
        sched = result.counters.group(STANDARD.GROUP_SCHEDULER)
        assert sched[STANDARD.NODES_LOST] == 1
        assert result.timing.retry_penalty_s > 0
        # The history's timing invariant still holds under recovery.
        assert runner.history.validate() == []

    def test_records_counted_once_despite_rerun(self, lossy_run):
        _, _, result = lossy_run
        assert (
            result.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS)
            == N_RECORDS
        )
        assert (
            result.counters.value(STANDARD.GROUP_TASK, STANDARD.REDUCE_OUTPUT_RECORDS)
            == 3
        )

    def test_second_job_does_not_lose_another_node(self, lossy_run):
        """max_node_losses=1 is a deployment-wide budget, not per-job."""
        hdfs, runner, _ = lossy_run
        runner.run(spec(out="out2"))
        assert len([e for e in runner.history if e.kind == EventKind.NODE_LOST]) == 1
        assert sum(v for _, v in hdfs.read_records("out2")) == N_RECORDS


class TestBlacklisting:
    def test_node_blacklisted_after_repeated_failures(self):
        hdfs = make_deployment()
        chaos = ChaosSchedule(bad_nodes={"worker02"})
        policy = RetryPolicy(blacklist_after=2)
        runner = JobRunner(hdfs, chaos=chaos, retry_policy=policy)
        result = runner.run(spec())
        assert sum(v for _, v in hdfs.read_records("out")) == N_RECORDS
        events = [e for e in runner.history if e.kind == EventKind.NODE_BLACKLISTED]
        assert [e.node for e in events] == ["worker02"]
        assert events[0].data["failures"] >= events[0].data["threshold"] == 2
        sched = result.counters.group(STANDARD.GROUP_SCHEDULER)
        assert sched[STANDARD.NODES_BLACKLISTED] == 1

    def test_blacklisted_node_gets_no_retries(self):
        hdfs = make_deployment()
        chaos = ChaosSchedule(bad_nodes={"worker02"})
        policy = RetryPolicy(max_attempts=6, blacklist_after=2)
        runner = JobRunner(hdfs, chaos=chaos, retry_policy=policy)
        runner.run(spec())
        # After the blacklist trips, retries route around worker02; every
        # crash on it must therefore come from pre-blacklist attempts.
        crashes = [
            e
            for e in runner.history
            if e.kind == EventKind.ATTEMPT_FAILED and e.node == "worker02"
        ]
        assert crashes
        blacklist_events = [
            e for e in runner.history if e.kind == EventKind.NODE_BLACKLISTED
        ]
        assert [e.node for e in blacklist_events] == ["worker02"]

    def test_node_blacklist_crossing_semantics(self):
        bl = NodeBlacklist(threshold=2)
        assert not bl.record_failure("w")   # 1st failure: below threshold
        assert bl.record_failure("w")       # 2nd: crosses exactly once
        assert not bl.record_failure("w")   # already blacklisted
        assert bl.is_blacklisted("w")
        assert bl.nodes() == frozenset({"w"})
        assert bl.failure_count("w") == 3


class TestRetryExhaustion:
    def test_exhaustion_raises_job_failed_with_chain(self):
        hdfs = make_deployment()
        chaos = ChaosSchedule(
            faults=[
                Fault(FaultKind.TASK_CRASH, task="map-0000", attempt=a)
                for a in range(1, MAX_TASK_ATTEMPTS + 1)
            ]
        )
        runner = JobRunner(hdfs, chaos=chaos)
        with pytest.raises(JobFailedError, match="failed") as excinfo:
            runner.run(spec())
        err = excinfo.value
        assert err.task_id == "map-0000"
        assert err.max_attempts == MAX_TASK_ATTEMPTS
        assert len(err.failure_chain) == MAX_TASK_ATTEMPTS
        assert all("scripted chaos crash" in line for line in err.failure_chain)
        # The chain names the attempt numbers in order.
        assert [f[0] for f in err.failures] == list(range(1, MAX_TASK_ATTEMPTS + 1))

    def test_job_failed_error_is_still_a_runtime_error(self):
        assert issubclass(JobFailedError, RuntimeError)


class TestBitReproducibility:
    def test_same_seed_same_events_and_makespan(self):
        def run_once():
            hdfs = make_deployment()
            chaos = ChaosSchedule(
                seed=11, crash_prob=0.2, slow_node_prob=0.4,
                shuffle_fetch_prob=0.3, node_loss_prob=1.0,
            )
            runner = JobRunner(hdfs, chaos=chaos)
            runner.run(spec())
            return (
                [e.to_dict() for e in runner.history],
                runner.history.clock,
                sorted(hdfs.read_records("out")),
            )

        first, second = run_once(), run_once()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]


class TestScriptFailuresGuard:
    """Regression: scripting more failures than the retry budget used to
    wedge the retry loop instead of failing the job cleanly."""

    def test_overbudget_script_rejected(self):
        inj = FailureInjector()
        with pytest.raises(ValueError, match="retry budget"):
            inj.script_failures("map-0000", attempts=MAX_TASK_ATTEMPTS + 1)
        assert not inj.scripted  # nothing partially scripted

    def test_budget_boundary_still_allowed(self):
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=MAX_TASK_ATTEMPTS)
        assert len(inj.scripted) == MAX_TASK_ATTEMPTS

    def test_custom_budget_respected(self):
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=6, max_attempts=6)
        with pytest.raises(ValueError, match="retry budget"):
            inj.script_failures("map-0001", attempts=3, max_attempts=2)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_s=2.0, backoff_factor=2.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3)] == [2.0, 4.0, 8.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(blacklist_after=0)


class TestFeedFaults:
    """Feed-level chaos: the late/lost/dup batch modes the streaming
    subsystem feeds through the same seeded decision pipeline."""

    def test_scripted_fault_scopes_to_feed_and_window(self):
        chaos = ChaosSchedule(
            seed=0, faults=(Fault(FaultKind.LATE_BATCH, feed="u01", window=2),)
        )
        assert chaos.batch_late("u01", 2)
        assert not chaos.batch_late("u01", 3)
        assert not chaos.batch_late("u02", 2)
        assert not chaos.batch_lost("u01", 2)
        assert not chaos.batch_duplicated("u01", 2)

    def test_wildcard_feed_and_window_match_everything(self):
        every_feed = ChaosSchedule(
            seed=0, faults=(Fault(FaultKind.LOST_BATCH, window=1),)
        )
        assert every_feed.batch_lost("a", 1)
        assert every_feed.batch_lost("z", 1)
        assert not every_feed.batch_lost("a", 0)
        every_window = ChaosSchedule(
            seed=0, faults=(Fault(FaultKind.DUP_BATCH, feed="a"),)
        )
        assert every_window.batch_duplicated("a", 0)
        assert every_window.batch_duplicated("a", 99)
        assert not every_window.batch_duplicated("b", 0)

    def test_probability_extremes(self):
        never = ChaosSchedule(seed=3)
        always = ChaosSchedule(
            seed=3, late_batch_prob=1.0, lost_batch_prob=1.0, dup_batch_prob=1.0
        )
        for feed, window in [("a", 0), ("b", 1), ("c", 7)]:
            assert not never.batch_late(feed, window)
            assert not never.batch_lost(feed, window)
            assert not never.batch_duplicated(feed, window)
            assert always.batch_late(feed, window)
            assert always.batch_lost(feed, window)
            assert always.batch_duplicated(feed, window)

    def test_decisions_keyed_on_identity_not_draw_order(self):
        chaos = ChaosSchedule(seed=5, late_batch_prob=0.5, lost_batch_prob=0.5)
        keys = [(f"u{i}", w) for i in range(4) for w in range(4)]
        forward = [(chaos.batch_late(f, w), chaos.batch_lost(f, w)) for f, w in keys]
        backward = list(reversed(
            [(chaos.batch_late(f, w), chaos.batch_lost(f, w))
             for f, w in reversed(keys)]
        ))
        assert forward == backward
        # ... and the three kinds draw independently per batch.
        assert len({chaos.batch_late(f, w) for f, w in keys}) == 2

    def test_batch_prob_validated(self):
        with pytest.raises(ValueError, match="late_batch_prob"):
            ChaosSchedule(late_batch_prob=1.5)
        with pytest.raises(ValueError, match="dup_batch_prob"):
            ChaosSchedule(dup_batch_prob=-0.1)

    def test_feed_faults_count_as_active_and_described(self):
        chaos = ChaosSchedule(
            seed=1, late_batch_prob=0.2,
            faults=(Fault(FaultKind.LOST_BATCH, feed="a"),),
        )
        assert chaos.active()
        text = chaos.describe()
        assert "late-batch=0.2" in text
        assert "1 scripted fault(s)" in text
        assert not ChaosSchedule(seed=1).active()

    def test_watermark_accounts_for_late_and_lost(self):
        """End to end through the streaming data plane: once window w's
        watermark passes, every point below it is in w's dataset, in
        w+1's dataset (late), or counted lost -- never silently dropped."""
        from repro.geo.synthetic import SyntheticConfig, generate_dataset
        from repro.observability.history import JobHistory
        from repro.streaming import MicroBatcher, StreamSource

        dataset, _ = generate_dataset(SyntheticConfig(n_users=2, days=1, seed=3))
        corpus = dataset.flat()
        feeds = sorted(set(corpus.users))
        chaos = ChaosSchedule(
            seed=2,
            faults=(
                Fault(FaultKind.LATE_BATCH, feed=feeds[0], window=0),
                Fault(FaultKind.LOST_BATCH, feed=feeds[1], window=1),
            ),
        )
        source = StreamSource(corpus, 3 * 3600.0, chaos=chaos)
        history = JobHistory()
        hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * 1024, seed=0)
        datasets = MicroBatcher(hdfs, history=history).run(source)
        delivered = sum(d.n_points for d in datasets)
        lost = sum(d.lost_points for d in datasets)
        assert delivered + lost == len(corpus)
        assert datasets[1].late_points > 0
        assert datasets[1].lost_points == source.lost_by_window[1] > 0
        marks = [
            e.data["watermark"]
            for e in history.events
            if e.kind == EventKind.WATERMARK
        ]
        assert marks == [source.window_bounds(w)[1] for w in range(source.n_windows)]
