"""Unit tests for job primitives (contexts, partitioners, JobSpec)."""

import numpy as np
import pytest

from repro.geo.trace import TraceArray
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.config import Configuration
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import (
    ARRAY_OUTPUT_KEY,
    ConstantKeyPartitioner,
    HashPartitioner,
    JobSpec,
    MapContext,
    Mapper,
    Reducer,
)


def _ctx():
    return MapContext(Configuration(), Counters(), DistributedCache(), "map-0000", "w0")


class TestContext:
    def test_emit_accumulates(self):
        ctx = _ctx()
        ctx.emit("k", "vv")
        ctx.emit("k2", "v", nbytes=100, n_records=5)
        assert ctx.output == [("k", "vv"), ("k2", "v")]
        assert ctx.output_records == 6
        assert ctx.output_nbytes == (1 + 2) + 100

    def test_emit_array_uses_sentinel(self):
        ctx = _ctx()
        arr = TraceArray.from_columns(["u"], np.zeros(3), np.zeros(3), np.arange(3.0))
        ctx.emit_array(arr, record_bytes=64)
        (key, value), = ctx.output
        assert key == ARRAY_OUTPUT_KEY
        assert value is arr
        assert ctx.output_records == 3
        assert ctx.output_nbytes == 192


class TestPartitioners:
    def test_hash_partitioner_stable_and_in_range(self):
        p = HashPartitioner()
        for key in ["a", 42, (1, "x"), 3.5]:
            part = p.partition(key, 7)
            assert 0 <= part < 7
            assert p.partition(key, 7) == part  # stable

    def test_hash_partitioner_spreads_keys(self):
        p = HashPartitioner()
        parts = {p.partition(f"key-{i}", 8) for i in range(100)}
        assert len(parts) == 8

    def test_hash_partitioner_rejects_bad_n(self):
        with pytest.raises(ValueError):
            HashPartitioner().partition("k", 0)

    def test_constant_key_partitioner(self):
        p = ConstantKeyPartitioner()
        assert p.partition("anything", 5) == 0
        assert p.partition(123, 1) == 0


class _M(Mapper):
    def map(self, k, v, ctx):
        ctx.emit(k, v)


class _R(Reducer):
    def reduce(self, k, vs, ctx):
        ctx.emit(k, len(vs))


class TestJobSpec:
    def test_requires_input(self):
        with pytest.raises(ValueError, match="no input"):
            JobSpec("j", _M, [], "out")

    def test_rejects_bad_reducer_count(self):
        with pytest.raises(ValueError):
            JobSpec("j", _M, ["in"], "out", reducer=_R, num_reducers=0)

    def test_combiner_requires_reducer(self):
        with pytest.raises(ValueError, match="combiner"):
            JobSpec("j", _M, ["in"], "out", combiner=_R)

    def test_map_only_detection(self):
        assert JobSpec("j", _M, ["in"], "out").map_only
        assert not JobSpec("j", _M, ["in"], "out", reducer=_R).map_only

    def test_accepts_factory_callable(self):
        spec = JobSpec("j", lambda: _M(), ["in"], "out")
        assert isinstance(spec.mapper(), _M)

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            JobSpec("j", "not a mapper", ["in"], "out")


class TestBaseClasses:
    def test_mapper_without_map_raises(self):
        class NoMap(Mapper):
            pass

        from repro.mapreduce.types import Chunk, RecordPayload

        chunk = Chunk("c", RecordPayload([(1, 1)]))
        with pytest.raises(NotImplementedError):
            NoMap().run(chunk, _ctx())

    def test_reducer_without_reduce_raises(self):
        class NoReduce(Reducer):
            pass

        with pytest.raises(NotImplementedError):
            NoReduce().run([("k", [1])], _ctx())
