"""The vectorized shuffle/group fast paths are element-identical to the
generic per-record loops, and engage exactly when advertised."""

import random

import numpy as np
import pytest

from repro.mapreduce.job import ConstantKeyPartitioner, HashPartitioner, Partitioner
from repro.mapreduce.shuffle import (
    _fnv1a_int_hashes,
    _group_sorted_generic,
    _key_array,
    _shuffle_fast,
    _shuffle_generic,
    group_sorted,
    shuffle,
)


def _assert_same_result(got, want):
    assert got.partition_bytes == want.partition_bytes
    assert got.shuffled_bytes == want.shuffled_bytes
    assert len(got.partitions) == len(want.partitions)
    for gp, wp in zip(got.partitions, want.partitions):
        assert len(gp) == len(wp)
        for (gk, gv), (wk, wv) in zip(gp, wp):
            assert gk == wk and type(gk) is type(wk)
            assert gv == wv


# -- group_sorted -----------------------------------------------------------

@pytest.mark.parametrize(
    "keys",
    [
        [3, 1, 2, 1, 3, 3, -7, 0, -7],
        [0],
        ["b", "a", "ab", "abc", "", "a", "b"],
        ["same"] * 5,
        list(range(50, -50, -1)) * 3,
        [10.0, 2.0, -0.5, 2.0, 10.0],  # floats sort numerically, not by repr
        [0.0, -0.0, 1.0],  # equal under ==, one group on both paths
        [float("inf"), float("-inf"), 0.0],
    ],
)
def test_group_sorted_fast_matches_generic(keys):
    pairs = [(k, i) for i, k in enumerate(keys)]
    assert group_sorted(pairs) == _group_sorted_generic(pairs)


@pytest.mark.parametrize(
    "keys",
    [
        [True, 1, 0, False],  # bool/int are the same dict key
        [1, "1"],  # mixed types
        [2**70, 1],  # beyond int64
        [np.int64(1), np.int64(2)],  # numpy scalars are not int
        ["a", "a\x00"],  # NUL would collide in fixed-width unicode
        [1.5, float("nan"), 0.5],  # NaN breaks the total order
        [1, 2.5],  # mixed int/float could collide in float64
        [(1, 2), (0, 1)],  # tuples stay generic
    ],
)
def test_non_qualifying_keys_fall_back_and_agree(keys):
    assert _key_array(keys) is None
    pairs = [(k, i) for i, k in enumerate(keys)]
    assert group_sorted(pairs) == _group_sorted_generic(pairs)


def test_group_sorted_randomized_int_and_str_keys():
    rng = random.Random(7)
    for _ in range(25):
        ints = [rng.randint(-1000, 1000) for _ in range(rng.randint(1, 300))]
        pairs = [(k, i) for i, k in enumerate(ints)]
        assert group_sorted(pairs) == _group_sorted_generic(pairs)
        strs = ["".join(rng.choices("abcXYZ012", k=rng.randint(0, 6))) for _ in ints]
        pairs = [(k, i) for i, k in enumerate(strs)]
        assert group_sorted(pairs) == _group_sorted_generic(pairs)


def test_group_preserves_value_arrival_order():
    pairs = [(1, "first"), (0, "x"), (1, "second"), (1, "third")]
    assert group_sorted(pairs) == [(0, ["x"]), (1, ["first", "second", "third"])]


# -- FNV hashing ------------------------------------------------------------

def test_vectorized_fnv_matches_scalar_hash():
    values = [0, 1, -1, 9, 10, 123456789, -987654321,
              2**63 - 1, -(2**63), 42, -42]
    hashes = _fnv1a_int_hashes(np.array(values, dtype=np.int64))
    for value, h in zip(values, hashes):
        assert int(h) == HashPartitioner._stable_hash(value)


def test_vectorized_fnv_random_sweep():
    rng = random.Random(11)
    values = [rng.randint(-(2**63), 2**63 - 1) for _ in range(500)]
    hashes = _fnv1a_int_hashes(np.array(values, dtype=np.int64))
    for value, h in zip(values, hashes):
        assert int(h) == HashPartitioner._stable_hash(value)


# -- shuffle ---------------------------------------------------------------

@pytest.mark.parametrize("n_reducers", [1, 2, 7])
def test_shuffle_fast_matches_generic_hash_partitioner(n_reducers):
    rng = random.Random(13)
    map_outputs = [
        [(rng.randint(-50, 50), rng.random()) for _ in range(rng.randint(0, 80))]
        for _ in range(5)
    ]
    fast = _shuffle_fast(map_outputs, HashPartitioner(), n_reducers)
    assert fast is not None
    _assert_same_result(fast, _shuffle_generic(map_outputs, HashPartitioner(), n_reducers))
    _assert_same_result(shuffle(map_outputs, HashPartitioner(), n_reducers),
                        _shuffle_generic(map_outputs, HashPartitioner(), n_reducers))


def test_shuffle_fast_constant_key_with_array_values():
    map_outputs = [
        [("all", np.arange(i + 3, dtype=np.int64)) for i in range(4)],
        [("all", np.arange(2, dtype=np.int64))],
    ]
    fast = _shuffle_fast(map_outputs, ConstantKeyPartitioner(), 1)
    assert fast is not None
    want = _shuffle_generic(map_outputs, ConstantKeyPartitioner(), 1)
    assert fast.partition_bytes == want.partition_bytes
    assert [k for k, _ in fast.partitions[0]] == [k for k, _ in want.partitions[0]]
    for (_, gv), (_, wv) in zip(fast.partitions[0], want.partitions[0]):
        assert all(np.array_equal(a, b) for a, b in zip(gv, wv))


def test_shuffle_str_keys_under_hash_partitioner_stay_scalar():
    map_outputs = [[("a", 1), ("b", 2)]]
    assert _shuffle_fast(map_outputs, HashPartitioner(), 2) is None
    # Public entry point still works (generic path).
    result = shuffle(map_outputs, HashPartitioner(), 2)
    assert sum(result.records_for(r) for r in range(2)) == 2


class _ModPartitioner(Partitioner):
    def partition(self, key, n_reducers):
        return key % n_reducers


def test_custom_partitioner_stays_generic():
    map_outputs = [[(i, i) for i in range(20)]]
    assert _shuffle_fast(map_outputs, _ModPartitioner(), 4) is None
    result = shuffle(map_outputs, _ModPartitioner(), 4)
    assert [result.records_for(r) for r in range(4)] == [5, 5, 5, 5]


def test_shuffle_empty_outputs():
    result = shuffle([[], []], HashPartitioner(), 3)
    assert result.shuffled_bytes == 0
    assert result.partitions == [[], [], []]
