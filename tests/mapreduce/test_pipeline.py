"""Unit tests for chained jobs (Figure 5 pattern)."""

import pytest

from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.pipeline import JobPipeline
from repro.mapreduce.runner import JobRunner


class AddOneMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value + 1)


class DoubleMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value * 2)


@pytest.fixture()
def env():
    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=256, seed=0)
    hdfs.put_records("in", [(i, i) for i in range(10)], record_bytes=16)
    return hdfs, JobRunner(hdfs)


class TestJobPipeline:
    def test_stage_output_feeds_next_stage(self, env):
        hdfs, runner = env
        pipe = JobPipeline(
            [
                lambda src: JobSpec("add", AddOneMapper, [src], "mid"),
                lambda src: JobSpec("double", DoubleMapper, [src], "final"),
            ]
        )
        result = pipe.run(runner, "in")
        assert result.output_path == "final"
        out = dict(hdfs.read_records("final"))
        assert out == {i: (i + 1) * 2 for i in range(10)}

    def test_counters_and_time_aggregate(self, env):
        hdfs, runner = env
        pipe = JobPipeline(
            [
                lambda src: JobSpec("add", AddOneMapper, [src], "mid"),
                lambda src: JobSpec("double", DoubleMapper, [src], "final"),
            ]
        )
        result = pipe.run(runner, "in")
        assert len(result.stages) == 2
        assert result.sim_seconds == pytest.approx(
            sum(s.sim_seconds for s in result.stages)
        )
        from repro.mapreduce.counters import STANDARD

        # Both stages' map inputs are summed: 10 + 10.
        assert (
            result.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS) == 20
        )

    def test_stage_lookup_by_name(self, env):
        hdfs, runner = env
        pipe = JobPipeline([lambda src: JobSpec("only", AddOneMapper, [src], "out")])
        result = pipe.run(runner, "in")
        assert result.stage("only").job_name == "only"
        with pytest.raises(KeyError):
            result.stage("ghost")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            JobPipeline([])

    def test_pipeline_with_reduce_stage(self, env):
        """Pipelines mix map-only and full MR stages freely."""
        from repro.mapreduce.job import Reducer

        class SumReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.emit(key, sum(values))

        class ParityMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value % 2, value)

        hdfs, runner = env
        pipe = JobPipeline(
            [
                lambda src: JobSpec("add", AddOneMapper, [src], "mid2"),
                lambda src: JobSpec(
                    "parity-sum", ParityMapper, [src], "final2",
                    reducer=SumReducer, num_reducers=2,
                ),
            ]
        )
        result = pipe.run(runner, "in")
        out = dict(hdfs.read_records("final2"))
        # values 1..10: odds sum 25, evens sum 30.
        assert out == {0: 30, 1: 25}
        assert result.stages[1].n_reduce_tasks == 2

    def test_failure_in_first_stage_stops_pipeline(self, env):
        hdfs, runner = env

        class Boom(Mapper):
            def map(self, key, value, ctx):
                raise RuntimeError("boom")

        pipe = JobPipeline(
            [
                lambda src: JobSpec("boom", Boom, [src], "mid"),
                lambda src: JobSpec("never", AddOneMapper, [src], "final"),
            ]
        )
        with pytest.raises(RuntimeError, match="boom"):
            pipe.run(runner, "in")
        assert not hdfs.exists("final")
