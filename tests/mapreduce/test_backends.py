"""The execution-backend layer: factory wiring, worker validation,
cross-backend equivalence, and the process backend's shared-memory
chunk transport + cache broadcast."""

import os

import numpy as np
import pytest

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS, MapReduceConfig
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner


class WordCountMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class CountMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("n", 1)


class PidMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(os.getpid(), 1)


class NearestPOIMapper(Mapper):
    """Reads traces from the chunk and centroids from the distributed
    cache — exercises both shm transports of the process backend."""

    def setup(self, ctx):
        self._coords = ctx.cache.get("poi_coords")

    def map(self, key, trace, ctx):
        d = np.hypot(
            self._coords[:, 0] - trace.latitude,
            self._coords[:, 1] - trace.longitude,
        )
        ctx.emit(int(np.argmin(d)), 1)


def _wordcount_hdfs():
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64, seed=0)
    lines = ["a b a", "b c", "a c c"] * 4
    hdfs.put_records("in", list(enumerate(lines)), record_bytes=16)
    return hdfs


def _trace_hdfs():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=2, days=1, seed=9))
    corpus = dataset.flat().sort_by_time()
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    return hdfs


# -- factory and validation --------------------------------------------------

def test_create_backend_dispatch():
    assert isinstance(create_backend(MapReduceConfig("serial"), 4), SerialBackend)
    assert isinstance(create_backend(MapReduceConfig("threads"), 4), ThreadBackend)
    backend = create_backend(MapReduceConfig("processes"), 4)
    assert isinstance(backend, ProcessBackend)
    backend.close()


@pytest.mark.parametrize("workers", [0, -1, -7])
def test_runner_rejects_nonpositive_workers(workers):
    hdfs = _wordcount_hdfs()
    with pytest.raises(ValueError, match="max_workers"):
        JobRunner(hdfs, executor="threads", max_workers=workers)


def test_runner_rejects_bool_and_nonint_workers():
    hdfs = _wordcount_hdfs()
    with pytest.raises(ValueError, match="max_workers"):
        JobRunner(hdfs, executor="threads", max_workers=True)
    with pytest.raises(ValueError, match="max_workers"):
        JobRunner(hdfs, executor="processes", max_workers=2.5)


def test_runner_rejects_unknown_executor():
    hdfs = _wordcount_hdfs()
    with pytest.raises(ValueError, match="unknown executor backend"):
        JobRunner(hdfs, executor="greenlets")


# -- cross-backend equivalence -----------------------------------------------

def _run_wordcount(backend):
    hdfs = _wordcount_hdfs()
    workers = None if backend == "serial" else 2
    with JobRunner(hdfs, executor=backend, max_workers=workers) as runner:
        result = runner.run(
            JobSpec("wc", WordCountMapper, ["in"], "out",
                    reducer=SumReducer, num_reducers=3)
        )
        return sorted(hdfs.read_records("out")), result.counters


def test_wordcount_identical_across_backends():
    base_records, base_counters = _run_wordcount("serial")
    assert dict(base_records) == {"a": 12, "b": 8, "c": 12}
    for backend in BACKENDS[1:]:
        records, counters = _run_wordcount(backend)
        assert records == base_records, backend
        assert counters == base_counters, backend


def _run_poi_job(backend, n_jobs=2):
    """Two jobs on one runner: the second re-broadcasts an updated cache
    and re-reads the same chunks (segment reuse on the process pool)."""
    hdfs = _trace_hdfs()
    workers = None if backend == "serial" else 2
    outputs = []
    with JobRunner(hdfs, executor=backend, max_workers=workers) as runner:
        for i in range(n_jobs):
            coords = np.array(
                [[39.9 + 0.01 * i, 116.3], [40.0, 116.4 - 0.01 * i]]
            )
            runner.cache.replace("poi_coords", coords)
            result = runner.run(
                JobSpec(f"poi-{i}", NearestPOIMapper, ["input/traces"],
                        f"out/poi-{i}", reducer=SumReducer, num_reducers=2)
            )
            outputs.append(
                (sorted(hdfs.read_records(f"out/poi-{i}")), result.counters)
            )
    return outputs


def test_trace_array_jobs_identical_across_backends():
    base = _run_poi_job("serial")
    for backend in BACKENDS[1:]:
        got = _run_poi_job(backend)
        for (g_records, g_counters), (b_records, b_counters) in zip(got, base):
            assert g_records == b_records, backend
            assert g_counters == b_counters, backend


def test_process_backend_uses_multiple_workers():
    """With >1 chunk and max_workers=2 the map phase really crosses the
    process boundary (worker PIDs differ from the driver's)."""
    hdfs = _trace_hdfs()
    assert len(hdfs.chunks("input/traces")) > 1
    with JobRunner(hdfs, executor="processes", max_workers=2) as runner:
        runner.run(
            JobSpec("pids", PidMapper, ["input/traces"], "out/pids",
                    reducer=SumReducer, num_reducers=1)
        )
        pids = [k for k, _ in hdfs.read_records("out/pids")]
    assert all(pid != os.getpid() for pid in pids)


# -- shared-memory lifecycle -------------------------------------------------

def test_process_backend_segments_unlinked_on_close():
    from multiprocessing import shared_memory

    hdfs = _trace_hdfs()
    runner = JobRunner(hdfs, executor="processes", max_workers=2)
    runner.run(
        JobSpec("count", CountMapper, ["input/traces"], "out/n",
                reducer=SumReducer, num_reducers=1)
    )
    backend = runner._backend
    names = [entry[1][0] for entry in backend._state.segments.values()]
    assert names, "expected shared-memory segments for the trace chunks"
    runner.close()
    runner.close()  # idempotent
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_process_backend_single_worker_runs_inline():
    """max_workers=1 short-circuits inline: no pool, no segments."""
    hdfs = _trace_hdfs()
    with JobRunner(hdfs, executor="processes", max_workers=1) as runner:
        runner.run(
            JobSpec("count", CountMapper, ["input/traces"], "out/n",
                    reducer=SumReducer, num_reducers=1)
        )
        assert runner._backend._state.pool is None
        assert not runner._backend._state.segments
