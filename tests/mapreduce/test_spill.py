"""Unit tests for the out-of-core machinery (``repro.mapreduce.spill``).

The contract under test everywhere: a memory budget changes *where data
lives*, never *what is computed* — paged chunks rehydrate byte-identical,
an externally sorted shuffle groups exactly like the in-memory one, and
spilled map outputs reload exactly what was emitted.
"""

import pickle

import pytest

from repro.mapreduce.bench import synthetic_corpus
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.job import HashPartitioner
from repro.mapreduce.spill import (
    PayloadStore,
    ShuffleSpiller,
    SpillDirectory,
    SpillManager,
    SpillStats,
    WorkerSpillSpec,
    as_groups,
    as_pairs,
    spill_map_output,
)
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.types import RecordPayload


def _payload(n, tag="k"):
    return RecordPayload([(f"{tag}{i}", i) for i in range(n)])


class TestSpillDirectory:
    def test_new_paths_never_repeat(self, tmp_path):
        d = SpillDirectory(tmp_path / "s")
        paths = {d.new_path("run") for _ in range(10)}
        assert len(paths) == 10

    def test_cleanup_removes_tree_and_is_idempotent(self, tmp_path):
        d = SpillDirectory(tmp_path / "s")
        p = d.new_path("run")
        p.write_bytes(b"x")
        d.cleanup()
        assert not (tmp_path / "s").exists()
        d.cleanup()  # no error


class TestPayloadStore:
    def test_under_budget_nothing_pages(self, tmp_path):
        store = PayloadStore(10 * MB, SpillDirectory(tmp_path / "s"))
        store.put("c0", _payload(5))
        assert store.stats.pages_out == 0
        assert store.get("c0").records == _payload(5).records

    def test_over_budget_pages_lru_and_rehydrates(self, tmp_path):
        payloads = [_payload(50, tag=f"t{i}-") for i in range(4)]
        budget = payloads[0].nbytes() * 2 + 1
        store = PayloadStore(budget, SpillDirectory(tmp_path / "s"))
        for i, p in enumerate(payloads):
            store.put(f"c{i}", p)
        assert store.stats.pages_out > 0
        assert store.resident_bytes <= budget
        # Every chunk — paged or resident — reads back byte-identical.
        for i, p in enumerate(payloads):
            assert store.get(f"c{i}").records == p.records
        assert store.stats.pages_in > 0

    def test_get_repins_to_mru(self, tmp_path):
        a, b, c = (_payload(50, tag=t) for t in ("a", "b", "c"))
        budget = a.nbytes() * 2 + 1
        store = PayloadStore(budget, SpillDirectory(tmp_path / "s"))
        store.put("a", a)
        store.put("b", b)
        store.get("a")  # now MRU; "b" is the eviction victim
        store.put("c", c)
        assert "a" in store._resident and "b" not in store._resident

    def test_at_least_one_resident(self, tmp_path):
        store = PayloadStore(1, SpillDirectory(tmp_path / "s"))
        store.put("big", _payload(100))
        assert len(store._resident) == 1

    def test_duplicate_put_rejected(self, tmp_path):
        store = PayloadStore(MB, SpillDirectory(tmp_path / "s"))
        store.put("c", _payload(1))
        with pytest.raises(ValueError, match="already registered"):
            store.put("c", _payload(1))

    def test_unknown_chunk_raises(self, tmp_path):
        store = PayloadStore(MB, SpillDirectory(tmp_path / "s"))
        with pytest.raises(KeyError):
            store.get("nope")

    def test_paged_stub_refuses_to_pickle(self, tmp_path):
        store = PayloadStore(MB, SpillDirectory(tmp_path / "s"))
        payload = _payload(3)
        store.put("c", payload)
        stub = store.paged_stub("c", payload)
        assert stub.materialize().records == payload.records
        with pytest.raises(pickle.PicklingError, match="process boundary"):
            pickle.dumps(stub)


class TestMapOutputSpill:
    def test_round_trip(self, tmp_path):
        spec = WorkerSpillSpec(str(tmp_path), threshold_bytes=1, prefix="j1")
        output = [(i % 3, f"v{i}") for i in range(20)]
        handle = spill_map_output(spec, "map-0000", output, 640)
        assert handle.n_records == 20 and handle.nbytes == 640
        assert as_pairs(handle) == output
        handle.delete()
        assert as_pairs(output) is output  # lists pass through untouched
        handle.delete()  # idempotent


def _reference(map_outputs, n_reducers):
    sh = shuffle(map_outputs, HashPartitioner(), n_reducers)
    return [sh.partition(r) for r in range(n_reducers)], sh


def _spilled(map_outputs, n_reducers, budget_bytes, tmp_path):
    spiller = ShuffleSpiller(
        budget_bytes, SpillDirectory(tmp_path / "sp"), n_reducers,
        HashPartitioner(), SpillStats(),
    )
    sh = shuffle(map_outputs, HashPartitioner(), n_reducers, spiller=spiller)
    return [sh.partition(r) for r in range(n_reducers)], sh


class TestShuffleSpillerEquivalence:
    @pytest.mark.parametrize("n_reducers", [1, 3])
    def test_int_keys_identical(self, tmp_path, n_reducers):
        outputs = [[(i % 11, (t, i)) for i in range(60)] for t in range(4)]
        want, _ = _reference(outputs, n_reducers)
        got, sh = _spilled(outputs, n_reducers, budget_bytes=256, tmp_path=tmp_path)
        assert sh.spilled and got == want

    def test_str_keys_identical(self, tmp_path):
        outputs = [[(f"user{i % 7}", i * t) for i in range(40)] for t in range(3)]
        want, _ = _reference(outputs, 2)
        got, sh = _spilled(outputs, 2, budget_bytes=128, tmp_path=tmp_path)
        assert sh.spilled and got == want

    def test_equal_keys_keep_arrival_order(self, tmp_path):
        # Every record shares one key: grouping reduces to pure arrival
        # order, the property external sorting is most likely to break.
        outputs = [[(0, (t, i)) for i in range(30)] for t in range(5)]
        want, _ = _reference(outputs, 2)
        got, sh = _spilled(outputs, 2, budget_bytes=64, tmp_path=tmp_path)
        assert sh.spilled and got == want

    def test_unsortable_keys_fall_back_identically(self, tmp_path):
        # Int keys long enough to cut runs, then tuple keys: external
        # sorting is impossible, the fallback must still match exactly.
        outputs = [
            [(i % 5, i) for i in range(50)],
            [((1, 2), "odd"), ((0, 1), "ball")],
        ]
        want, _ = _reference(outputs, 2)
        got, sh = _spilled(outputs, 2, budget_bytes=64, tmp_path=tmp_path)
        assert not sh.spilled and got == want

    def test_under_budget_uses_in_memory_path(self, tmp_path):
        outputs = [[(i, i) for i in range(5)]]
        want, _ = _reference(outputs, 2)
        got, sh = _spilled(outputs, 2, budget_bytes=10 * MB, tmp_path=tmp_path)
        assert not sh.spilled and got == want

    def test_spilled_result_metadata_lazy(self, tmp_path):
        outputs = [[(i % 4, i) for i in range(80)] for _ in range(3)]
        _, want_sh = _reference(outputs, 2)
        _, sh = _spilled(outputs, 2, budget_bytes=128, tmp_path=tmp_path)
        for r in range(2):
            assert sh.records_for(r) == want_sh.records_for(r)
            assert sh.groups_for(r) == want_sh.groups_for(r)
        assert sh.shuffled_bytes == want_sh.shuffled_bytes
        assert sh.partition_bytes == want_sh.partition_bytes
        sh.release()

    def test_bad_partitioner_rejected(self, tmp_path):
        class Bad:
            def partition(self, key, n):
                return n  # out of range

        spiller = ShuffleSpiller(
            64, SpillDirectory(tmp_path / "sp"), 2, Bad(), SpillStats()
        )
        with pytest.raises(ValueError, match="partitioner returned"):
            spiller.feed([(1, 1)])


class TestSpillManager:
    def test_specs_and_cleanup(self, tmp_path):
        mgr = SpillManager(1024, tmp_path / "mgr")
        j1, j2 = mgr.next_job(), mgr.next_job()
        assert j2 == j1 + 1
        spec = mgr.worker_spec(j1)
        assert spec.threshold_bytes == 1024 and str(mgr.directory.path) == spec.directory
        spiller = mgr.shuffle_spiller(j1, 2, HashPartitioner())
        assert spiller.budget_bytes == 1024
        mgr.close()
        assert not (tmp_path / "mgr").exists()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SpillManager(0)


class TestBudgetedHDFS:
    def test_paged_file_reads_back_identical(self, tmp_path):
        corpus = synthetic_corpus(4000, seed=1)
        plain = SimulatedHDFS(paper_cluster(3), chunk_size=16 * 1024, seed=0)
        paged = SimulatedHDFS(
            paper_cluster(3), chunk_size=16 * 1024, seed=0,
            memory_budget_mb=0.01, spill_root=str(tmp_path / "hdfs"),
        )
        plain.put_trace_array("f", corpus)
        paged.put_trace_array("f", corpus)
        assert paged.spill_stats.pages_out > 0
        a, b = plain.read_trace_array("f"), paged.read_trace_array("f")
        assert (a.latitude == b.latitude).all()
        assert (a.timestamp == b.timestamp).all()
        assert plain.spill_stats is None

    def test_stream_ingest_matches_bulk_ingest(self):
        corpus = synthetic_corpus(3000, seed=2)
        bulk = SimulatedHDFS(paper_cluster(3), chunk_size=8 * 1024, seed=0)
        bulk.put_trace_array("f", corpus)
        streamed = SimulatedHDFS(paper_cluster(3), chunk_size=8 * 1024, seed=0)
        pieces = [corpus[i : i + 700] for i in range(0, len(corpus), 700)]
        n = streamed.put_trace_stream("f", pieces)
        assert n == len(corpus)
        want, got = bulk.chunks("f"), streamed.chunks("f")
        assert [c.n_records for c in got] == [c.n_records for c in want]
        for cw, cg in zip(want, got):
            aw, ag = cw.trace_array(), cg.trace_array()
            assert (aw.latitude == ag.latitude).all()
            assert (aw.user_index == ag.user_index).all()

    def test_iter_records_streams_whole_file(self):
        hdfs = SimulatedHDFS(
            paper_cluster(3), chunk_size=4 * 1024, seed=0, memory_budget_mb=0.005
        )
        corpus = synthetic_corpus(2000, seed=3)
        hdfs.put_trace_array("f", corpus)
        assert list(hdfs.iter_records("f")) == hdfs.read_records("f")


class TestSpilledReduceInput:
    def test_as_groups_round_trip(self, tmp_path):
        spiller = ShuffleSpiller(
            32, SpillDirectory(tmp_path / "sp"), 2, HashPartitioner(), SpillStats()
        )
        spiller.feed([(i % 3, i) for i in range(40)])
        spiller.finish()
        assert spiller.spilled()
        partitions, events = spiller.merge()
        assert len(partitions) == 2 and len(events) == 2
        for handle in partitions:
            groups = as_groups(handle)
            assert handle.n_groups == len(groups)
            assert handle.n_records == sum(len(vs) for _, vs in groups)
            assert as_groups(groups) is groups
            handle.delete()
