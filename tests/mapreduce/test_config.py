"""Unit tests for the Hadoop-style Configuration."""

import pytest

from repro.mapreduce.config import Configuration


class TestConfiguration:
    def test_basic_access(self):
        conf = Configuration({"a": 1}, b="x")
        assert conf["a"] == 1
        assert conf.get("b") == "x"
        assert conf.get("missing", 7) == 7
        assert "a" in conf and "missing" not in conf
        assert len(conf) == 2
        assert sorted(conf) == ["a", "b"]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Configuration()["nope"]

    def test_copy_with_overrides(self):
        base = Configuration({"a": 1, "b": 2})
        derived = base.copy(b=3, c=4)
        assert derived["a"] == 1 and derived["b"] == 3 and derived["c"] == 4
        assert base["b"] == 2  # original untouched

    def test_equality(self):
        assert Configuration({"a": 1}) == Configuration(a=1)
        assert Configuration({"a": 1}) != Configuration(a=2)

    def test_as_dict_is_copy(self):
        conf = Configuration(a=1)
        d = conf.as_dict()
        d["a"] = 99
        assert conf["a"] == 1


class TestTypedGetters:
    def test_int_coercion(self):
        conf = Configuration({"k": "11"})
        assert conf.get_int("k") == 11

    def test_int_default(self):
        assert Configuration().get_int("k", 5) == 5

    def test_int_missing_required(self):
        with pytest.raises(KeyError, match="missing required"):
            Configuration().get_int("k")

    def test_int_bad_value(self):
        with pytest.raises(ValueError, match="'k'"):
            Configuration({"k": "eleven"}).get_int("k")

    def test_float(self):
        assert Configuration({"d": "0.5"}).get_float("d") == 0.5

    def test_bool_from_strings(self):
        conf = Configuration(t="true", f="False", one="1", zero="no")
        assert conf.get_bool("t") is True
        assert conf.get_bool("f") is False
        assert conf.get_bool("one") is True
        assert conf.get_bool("zero") is False

    def test_bool_bad_string(self):
        with pytest.raises(ValueError):
            Configuration(x="maybe").get_bool("x")

    def test_bool_passthrough(self):
        assert Configuration(x=True).get_bool("x") is True

    def test_str(self):
        assert Configuration(x=42).get_str("x") == "42"

    def test_require(self):
        conf = Configuration(a=1)
        conf.require("a")
        with pytest.raises(KeyError, match=r"\['b', 'c'\]"):
            conf.require("a", "b", "c")
