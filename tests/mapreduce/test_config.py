"""Unit tests for the Hadoop-style Configuration."""

import pytest

from repro.mapreduce.config import (
    Configuration,
    MapReduceConfig,
    validate_tenants,
)


class TestConfiguration:
    def test_basic_access(self):
        conf = Configuration({"a": 1}, b="x")
        assert conf["a"] == 1
        assert conf.get("b") == "x"
        assert conf.get("missing", 7) == 7
        assert "a" in conf and "missing" not in conf
        assert len(conf) == 2
        assert sorted(conf) == ["a", "b"]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Configuration()["nope"]

    def test_copy_with_overrides(self):
        base = Configuration({"a": 1, "b": 2})
        derived = base.copy(b=3, c=4)
        assert derived["a"] == 1 and derived["b"] == 3 and derived["c"] == 4
        assert base["b"] == 2  # original untouched

    def test_equality(self):
        assert Configuration({"a": 1}) == Configuration(a=1)
        assert Configuration({"a": 1}) != Configuration(a=2)

    def test_as_dict_is_copy(self):
        conf = Configuration(a=1)
        d = conf.as_dict()
        d["a"] = 99
        assert conf["a"] == 1


class TestTypedGetters:
    def test_int_coercion(self):
        conf = Configuration({"k": "11"})
        assert conf.get_int("k") == 11

    def test_int_default(self):
        assert Configuration().get_int("k", 5) == 5

    def test_int_missing_required(self):
        with pytest.raises(KeyError, match="missing required"):
            Configuration().get_int("k")

    def test_int_bad_value(self):
        with pytest.raises(ValueError, match="'k'"):
            Configuration({"k": "eleven"}).get_int("k")

    def test_float(self):
        assert Configuration({"d": "0.5"}).get_float("d") == 0.5

    def test_bool_from_strings(self):
        conf = Configuration(t="true", f="False", one="1", zero="no")
        assert conf.get_bool("t") is True
        assert conf.get_bool("f") is False
        assert conf.get_bool("one") is True
        assert conf.get_bool("zero") is False

    def test_bool_bad_string(self):
        with pytest.raises(ValueError):
            Configuration(x="maybe").get_bool("x")

    def test_bool_passthrough(self):
        assert Configuration(x=True).get_bool("x") is True

    def test_str(self):
        assert Configuration(x=42).get_str("x") == "42"

    def test_require(self):
        conf = Configuration(a=1)
        conf.require("a")
        with pytest.raises(KeyError, match=r"\['b', 'c'\]"):
            conf.require("a", "b", "c")


class TestValidateTenants:
    """The tenant-roster validation MapReduceConfig runs at construction."""

    def test_bare_weights_normalized(self):
        roster = validate_tenants({"alice": 2, "bob": 1.5})
        assert roster == {
            "alice": {"weight": 2.0, "max_queued": None},
            "bob": {"weight": 1.5, "max_queued": None},
        }

    def test_knob_dict_spelling(self):
        roster = validate_tenants({"a": {"weight": 3, "max_queued": 4}, "b": {}})
        assert roster["a"] == {"weight": 3.0, "max_queued": 4}
        assert roster["b"] == {"weight": 1.0, "max_queued": None}  # defaults

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            validate_tenants({})

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            validate_tenants(["alice", "bob"])

    @pytest.mark.parametrize("name", ["", "   ", 7, None])
    def test_blank_or_nonstring_names_rejected(self, name):
        with pytest.raises(ValueError, match="non-empty strings"):
            validate_tenants({name: 1.0})

    @pytest.mark.parametrize(
        "weight", [0, -1, -0.5, float("nan"), float("inf"), True, "2", None]
    )
    def test_bad_weights_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            validate_tenants({"t": weight})

    @pytest.mark.parametrize("quota", [0, -3, 1.5, True, "4"])
    def test_bad_quotas_rejected(self, quota):
        with pytest.raises(ValueError, match="max_queued"):
            validate_tenants({"t": {"weight": 1.0, "max_queued": quota}})

    def test_unknown_knobs_rejected(self):
        with pytest.raises(ValueError, match="unknown knobs.*'priority'"):
            validate_tenants({"t": {"weight": 1.0, "priority": 9}})

    def test_mapreduce_config_validates_at_construction(self):
        MapReduceConfig("serial", tenants={"alice": 2.0})  # fine
        with pytest.raises(ValueError, match="weight"):
            MapReduceConfig("serial", tenants={"alice": -2.0})

    def test_none_means_single_tenant(self):
        assert MapReduceConfig("serial").tenants is None
