"""Out-of-core equivalence suite: a memory budget must be invisible.

Every paper driver, on every execution backend, under a fixed chaos
schedule, is run twice — unbudgeted and under a budget far below the
dataset size.  Outputs must be byte-identical and the traced histories
identical once the extra ``spill_*`` events (and the ``spill_s`` timing
key) are set aside: spilling is an execution detail, not an observable.

The ``bench``-marked test at the bottom is the acceptance run: k-means
and DJ-Cluster over 10^6 synthetic traces with the budget well below the
dataset, byte-identical with spill events recorded.
"""

import numpy as np
import pytest

from repro.mapreduce.chaos import (
    DRIVERS,
    _build_corpus,
    _run_once,
    default_schedule,
)
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.job import Mapper, Reducer

SPILL_KINDS = {"spill_start", "spill_merge"}

#: ~10 KB — far below even the tiny 3-user campaign corpus, so the
#: shuffle-heavy drivers are forced through the external-sort path.
TINY_BUDGET_MB = 0.01

#: Drivers whose campaign runs must actually spill under TINY_BUDGET_MB.
#: Sampling (map-only: no shuffle, and the in-driver fault path keeps
#: map outputs in memory) and MMC (per-user shuffles under the run-cut
#: size) legitimately have nothing to spill at this corpus scale.
SPILLING_DRIVERS = {"kmeans", "djcluster"}


def _normalize(events):
    """History minus everything a budget is allowed to add."""
    out = []
    for e in events:
        if e["kind"] in SPILL_KINDS:
            continue
        e = dict(e)
        e.pop("seq", None)  # spill events shift later sequence numbers
        data = dict(e.get("data") or {})
        if "timing" in data:
            timing = dict(data["timing"])
            timing.pop("spill_s", None)
            data["timing"] = timing
            e["data"] = data
        out.append(e)
    return out


@pytest.fixture(scope="module")
def campaign():
    array = _build_corpus(3, 1, 42)
    context = {}
    from repro.algorithms.kmeans import kmeans_sequential

    context["poi_coords"] = kmeans_sequential(
        array.coordinates(), k=4, seed=0
    ).centroids
    return array, context, default_schedule(3)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("driver", list(DRIVERS))
def test_budget_is_invisible_under_chaos(campaign, driver, backend):
    array, context, schedule = campaign
    kwargs = dict(executor=backend, max_workers=2)
    base = _run_once(
        DRIVERS[driver], array, context, 3, 64 * 1024, schedule, **kwargs
    )
    budgeted = _run_once(
        DRIVERS[driver], array, context, 3, 64 * 1024, schedule,
        memory_budget_mb=TINY_BUDGET_MB, **kwargs,
    )
    assert budgeted.signature == base.signature
    assert budgeted.makespan_s == base.makespan_s
    assert _normalize(budgeted.events) == _normalize(base.events)
    n_spills = sum(1 for e in budgeted.events if e["kind"] in SPILL_KINDS)
    if driver in SPILLING_DRIVERS:
        assert n_spills > 0, "budgeted run never spilled — budget too large?"
    assert not any(e["kind"] in SPILL_KINDS for e in base.events)


class FanOut(Mapper):
    def map(self, key, value, ctx):
        for i in range(40):
            ctx.emit((value * 40 + i) % 97, value, nbytes=64)


class Total(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _fanout_job(executor, budget):
    """A shuffle-heavy job: every input record fans out 40 pairs, so both
    the per-task map-output threshold and the shuffle run budget trip."""
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.job import JobSpec
    from repro.mapreduce.runner import JobRunner

    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=2048, seed=0)
    hdfs.put_records("in", [(i, i) for i in range(600)], record_bytes=16)
    with JobRunner(
        hdfs, executor=executor, max_workers=2, memory_budget_mb=budget
    ) as runner:
        runner.run(
            JobSpec("fan", FanOut, ["in"], "out", reducer=Total, num_reducers=3)
        )
        stats = runner.spill_stats
        events = [e.to_dict() for e in runner.history]
    return hdfs.read_records("out"), stats, events


def test_spill_events_record_io_and_cost():
    _, _, events = _fanout_job("serial", budget=0.002)
    starts = [e for e in events if e["kind"] == "spill_start"]
    merges = [e for e in events if e["kind"] == "spill_merge"]
    assert {e["data"]["source"] for e in starts} == {"map", "shuffle"}
    for e in starts:
        assert e["data"]["bytes"] > 0 and e["data"]["write_s"] > 0
    assert merges
    for e in merges:
        assert e["data"]["records"] >= e["data"]["groups"] > 0
        assert e["data"]["read_s"] > 0
    finishes = [e for e in events if e["kind"] == "job_finish"]
    assert any("spill_s" in e["data"]["timing"] for e in finishes), (
        "no job reported background spill time"
    )


def test_worker_side_spill_on_processes_backend():
    """Map outputs over the threshold spill where the attempt runs and the
    handle — not the data — crosses the IPC boundary."""
    base, _, base_events = _fanout_job("processes", budget=None)
    budgeted, stats, _ = _fanout_job("processes", budget=0.002)
    assert budgeted == base
    assert stats.map_spills > 0 and stats.map_spill_bytes > 0
    assert stats.runs_spilled > 0 and stats.merges > 0
    assert not any(e["kind"] in SPILL_KINDS for e in base_events)


def test_spill_benchmark_in_process_smoke(tmp_path):
    from repro.mapreduce.bench import render_spill_result, run_spill_benchmark

    doc = run_spill_benchmark(
        sizes=[20_000], budget_mb=0.25, max_iter=2, isolate_cells=False
    )
    (entry,) = doc["results"]
    cells = entry["cells"]
    assert cells["budgeted"]["centroids_sha256"] == cells["unbudgeted"]["centroids_sha256"]
    assert cells["budgeted"]["spill"]["runs_spilled"] > 0
    assert cells["budgeted"]["paging"]["pages_out"] > 0
    assert cells["unbudgeted"]["spill"] is None
    assert cells["budgeted"]["peak_rss_mb"] is None  # not isolated
    assert "budgeted" in render_spill_result(doc)


@pytest.mark.bench
# Budgets sit well below the 64 MB modelled / ~24 MB resident corpus;
# DJ-Cluster's widest stage moves ~2 MB per map task, so its budget must
# sit below that for the per-task spill threshold to trip.
@pytest.mark.parametrize(
    ("driver", "budget_mb"), [("kmeans", 8.0), ("djcluster", 1.0)]
)
def test_acceptance_million_traces_spill_equivalence(driver, budget_mb):
    """ISSUE acceptance: 10^6 traces, budget well below the dataset,
    byte-identical outputs, spill events recorded."""
    from repro.algorithms.djcluster import DJClusterParams, run_preprocessing_pipeline
    from repro.algorithms.kmeans import run_kmeans_mapreduce
    from repro.mapreduce.bench import synthetic_corpus_blocks
    from repro.mapreduce.chaos import _trace_array_signature
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import MB, SimulatedHDFS
    from repro.mapreduce.runner import JobRunner

    # A 1-second timestamp step makes the blob-hopping corpus read as
    # fast movement, which DJ-Cluster's speed filter would discard
    # wholesale (nothing left to spill); a huge step makes every trace
    # stationary so the full corpus flows through both map-only filters.
    step = 1.0 if driver == "kmeans" else 1e7

    def run(budget):
        hdfs = SimulatedHDFS(
            paper_cluster(4), chunk_size=2 * MB, seed=0, memory_budget_mb=budget
        )
        hdfs.put_trace_stream(
            "input/traces",
            synthetic_corpus_blocks(1_000_000, seed=0, timestamp_step=step),
        )
        with JobRunner(
            hdfs, executor="serial", memory_budget_mb=budget
        ) as runner:
            if driver == "kmeans":
                init = np.array(
                    [[39.7, 116.1], [39.9, 116.3], [40.1, 116.5], [40.2, 116.7]]
                )
                result = run_kmeans_mapreduce(
                    runner, "input/traces", k=4, max_iter=3,
                    initial_centroids=init, use_combiner=False,
                    workdir="tmp/kmeans",
                )
                sig = result.centroids.tobytes()
            else:
                pipeline = run_preprocessing_pipeline(
                    runner, "input/traces", DJClusterParams(), workdir="tmp/dj"
                )
                sig = _trace_array_signature(
                    hdfs.read_trace_array(pipeline.output_path)
                ).encode()
            spilled = [
                e for e in runner.history
                if e.kind in ("spill_start", "spill_merge")
            ]
        return sig, spilled

    base_sig, base_spills = run(None)
    budget_sig, budget_spills = run(budget_mb)
    assert budget_sig == base_sig
    assert not base_spills
    assert budget_spills, f"{driver} never spilled under {budget_mb} MB"
