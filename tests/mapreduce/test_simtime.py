"""Unit tests for the cost model (Table III calibration)."""

import pytest

from repro.mapreduce.scheduler import Locality
from repro.mapreduce.simtime import CostModel, JobTiming, MB_F
from repro.mapreduce.types import ArrayPayload, Chunk

import numpy as np

from repro.geo.trace import TraceArray


def _chunk_of_mb(mb: float) -> Chunk:
    n = int(mb * MB_F / 64)
    arr = TraceArray.from_columns(["u"], np.zeros(n), np.zeros(n), np.arange(n, dtype=float))
    return Chunk("c", ArrayPayload(arr, record_bytes=64))


class TestMapTaskTime:
    def test_scales_linearly_with_chunk_size(self):
        model = CostModel()
        t32 = model.map_task_time(_chunk_of_mb(32), Locality.NODE_LOCAL)
        t64 = model.map_task_time(_chunk_of_mb(64), Locality.NODE_LOCAL)
        assert t64 - t32 == pytest.approx(32 * model.map_cost_s_per_mb, rel=1e-6)

    def test_cost_factor_multiplies_compute_only(self):
        model = CostModel()
        chunk = _chunk_of_mb(64)
        base = model.map_task_time(chunk, Locality.NODE_LOCAL, 1.0)
        haversine = model.map_task_time(chunk, Locality.NODE_LOCAL, 3.2)
        assert haversine > base
        expected = model.task_startup_s + 64 * (
            model.map_io_s_per_mb + model.map_compute_s_per_mb * 3.2
        )
        assert haversine == pytest.approx(expected, rel=1e-6)
        # End-to-end the Haversine map is well under 3.2x (I/O is shared),
        # matching the ~1.2x map-phase ratio Table III implies.
        assert haversine / base < 2.0

    def test_locality_penalties_ordered(self):
        model = CostModel()
        chunk = _chunk_of_mb(64)
        local = model.map_task_time(chunk, Locality.NODE_LOCAL)
        rack = model.map_task_time(chunk, Locality.RACK_LOCAL)
        remote = model.map_task_time(chunk, Locality.REMOTE)
        assert local < rack < remote


class TestReduceTaskTime:
    def test_scales_with_input(self):
        model = CostModel()
        small = model.reduce_task_time(int(1 * MB_F))
        big = model.reduce_task_time(int(100 * MB_F))
        assert big > small

    def test_zero_input_is_startup_only(self):
        model = CostModel()
        assert model.reduce_task_time(0) == pytest.approx(model.task_startup_s)


class TestTableIIICalibration:
    """One-wave iteration time = setup + map task + reduce; the default
    constants must land within a few seconds of every Table III cell."""

    PAPER = [
        # (data_mb, metric_factor, chunk_mb, paper_seconds)
        (66, 1.0, 64, 48),
        (66, 1.0, 32, 41),
        (66, 3.2, 64, 57),
        (66, 3.2, 32, 45),
        (128, 1.0, 64, 51),
        (128, 1.0, 32, 45),
        (128, 3.2, 64, 60),
        (128, 3.2, 32, 48),
    ]

    @pytest.mark.parametrize("data_mb,factor,chunk_mb,paper_s", PAPER)
    def test_within_tolerance_of_paper(self, data_mb, factor, chunk_mb, paper_s):
        model = CostModel()
        # One wave: makespan = longest (full-size) chunk task.
        map_s = model.map_task_time(_chunk_of_mb(chunk_mb), Locality.NODE_LOCAL, factor)
        # Paper's mapper shuffles every trace: reduce input ~ dataset bytes.
        reduce_s = model.reduce_task_time(int(data_mb * MB_F))
        total = model.job_setup_s + map_s + reduce_s
        assert total == pytest.approx(paper_s, abs=6.0), (
            f"{total:.1f}s vs paper {paper_s}s"
        )

    def test_haversine_factor_matches_metric_registry(self):
        from repro.geo.distance import METRIC_COST

        # The Table III parametrization above must use the shipped factor.
        assert METRIC_COST["haversine"] == pytest.approx(3.2)


class TestJobTiming:
    def test_total(self):
        t = JobTiming(setup_s=10.0, map_s=5.0, reduce_s=3.0, retry_penalty_s=2.0)
        assert t.total_s == 20.0

    def test_repr_mentions_components(self):
        t = JobTiming(1.0, 2.0, 3.0)
        s = repr(t)
        assert "setup" in s and "map" in s and "reduce" in s


class TestCacheBroadcast:
    def test_broadcast_cost(self):
        model = CostModel()
        assert model.cache_broadcast_time(0) == 0.0
        assert model.cache_broadcast_time(int(10 * MB_F)) == pytest.approx(
            10 * model.cache_broadcast_s_per_mb
        )
