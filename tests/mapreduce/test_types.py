"""Unit tests for chunk payloads and size accounting."""

import numpy as np
import pytest

from repro.geo.trace import MobilityTrace, TraceArray
from repro.mapreduce.types import (
    ArrayPayload,
    Chunk,
    DEFAULT_RECORD_BYTES,
    RecordPayload,
    estimate_nbytes,
    record_stream,
)


class TestEstimateNbytes:
    def test_numpy_array_uses_buffer_size(self):
        a = np.zeros(10, dtype=np.float64)
        assert estimate_nbytes(a) == 80

    def test_strings_and_bytes(self):
        assert estimate_nbytes("abcd") == 4
        assert estimate_nbytes(b"abc") == 3

    def test_scalars(self):
        assert estimate_nbytes(1) == 8
        assert estimate_nbytes(1.5) == 8
        assert estimate_nbytes(None) == 8

    def test_trace_array_real_columnar_size(self):
        arr = TraceArray.from_columns(["u"], np.zeros(5), np.zeros(5), np.arange(5.0))
        # Packed 36-byte rows plus the user side table — the actual buffer
        # footprint, not DEFAULT_RECORD_BYTES * n (the text-record model).
        assert estimate_nbytes(arr) == arr.data_nbytes + len("u")
        assert estimate_nbytes(arr) != 5 * DEFAULT_RECORD_BYTES

    def test_generic_object_picklable(self):
        assert estimate_nbytes({"a": [1, 2, 3]}) > 0


class TestRecordPayload:
    def test_counts(self):
        p = RecordPayload([(1, "a"), (2, "bb")])
        assert p.n_records == 2
        assert p.nbytes() == (8 + 1) + (8 + 2)
        assert list(p.iter_records()) == [(1, "a"), (2, "bb")]


class TestArrayPayload:
    def _array(self, n=4):
        return TraceArray.from_columns(
            ["u"], 39.9 + np.arange(n) * 0.001, np.full(n, 116.4), np.arange(n, dtype=float)
        )

    def test_counts(self):
        p = ArrayPayload(self._array(4), record_bytes=64)
        assert p.n_records == 4
        assert p.nbytes() == 256

    def test_iter_records_uses_global_offset(self):
        p = ArrayPayload(self._array(3), offset=100)
        keys = [k for k, _ in p.iter_records()]
        assert keys == [100, 101, 102]
        values = [v for _, v in p.iter_records()]
        assert all(isinstance(v, MobilityTrace) for v in values)


class TestChunk:
    def test_trace_array_from_array_payload(self):
        arr = TraceArray.from_columns(["u"], np.zeros(3), np.zeros(3), np.arange(3.0))
        c = Chunk("c0", ArrayPayload(arr))
        assert len(c.trace_array()) == 3
        assert c.n_records == 3

    def test_trace_array_from_trace_records(self):
        traces = [
            MobilityTrace("u", 0.0, 0.0, float(i)) for i in range(3)
        ]
        c = Chunk("c0", RecordPayload([(i, t) for i, t in enumerate(traces)]))
        assert len(c.trace_array()) == 3

    def test_trace_array_rejects_non_traces(self):
        c = Chunk("c0", RecordPayload([(1, "not a trace")]))
        with pytest.raises(TypeError):
            c.trace_array()

    def test_record_stream_flattens(self):
        c1 = Chunk("a", RecordPayload([(1, "x")]))
        c2 = Chunk("b", RecordPayload([(2, "y")]))
        assert list(record_stream([c1, c2])) == [(1, "x"), (2, "y")]
