"""Unit tests for the jobtracker scheduler."""

import pytest

from repro.mapreduce.cluster import ClusterSpec, Node, paper_cluster
from repro.mapreduce.scheduler import (
    FairShareJob,
    Locality,
    plan_fair_share,
    plan_map_phase,
    plan_reduce_phase,
)
from repro.mapreduce.types import Chunk, RecordPayload


def _chunk(cid, replicas, n_bytes=64):
    payload = RecordPayload([(i, "x" * 56) for i in range(max(1, n_bytes // 64))])
    return Chunk(cid, payload, replicas=tuple(replicas))


def _flat_time(chunk, locality):
    return 10.0


class TestLocalityPreference:
    def test_all_node_local_when_replicas_everywhere(self):
        cluster = paper_cluster(4)
        workers = [n.name for n in cluster.tasktrackers()]
        chunks = [_chunk(f"c{i}", [workers[i % len(workers)]]) for i in range(8)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        counts = plan.locality_counts()
        assert counts[Locality.NODE_LOCAL] == 8
        assert counts[Locality.REMOTE] == 0

    def test_remote_when_no_replicas_on_workers(self):
        cluster = paper_cluster(3)
        chunks = [_chunk("c0", ["nonexistent-node"])]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.locality_counts()[Locality.REMOTE] == 1

    def test_rack_local_classification(self):
        cluster = paper_cluster(8, nodes_per_rack=4)
        # Replica only on worker00 (rack1); with one chunk per slot on
        # worker04..07 (rack2) busy, the scheduler can still pick rack.
        chunk = _chunk("c0", ["worker01"])
        # Force assignment to a same-rack node by making worker01 busy:
        # simplest check — classification helper via single-node cluster.
        from repro.mapreduce.scheduler import _classify_locality

        assert _classify_locality(cluster, "worker01", chunk) == Locality.NODE_LOCAL
        assert _classify_locality(cluster, "worker02", chunk) == Locality.RACK_LOCAL
        assert _classify_locality(cluster, "worker05", chunk) == Locality.REMOTE

    def test_disabling_locality_changes_preference(self):
        cluster = paper_cluster(4)
        workers = [n.name for n in cluster.tasktrackers()]
        # All chunks live on one node; with locality on, that node's slots
        # take them preferentially when free.
        chunks = [_chunk(f"c{i}", [workers[0]]) for i in range(8)]
        plan_on = plan_map_phase(chunks, cluster, _flat_time, prefer_locality=True)
        plan_off = plan_map_phase(chunks, cluster, _flat_time, prefer_locality=False)
        on_local = plan_on.locality_counts()[Locality.NODE_LOCAL]
        off_local = plan_off.locality_counts()[Locality.NODE_LOCAL]
        assert on_local >= off_local


class TestMakespan:
    def test_single_wave_makespan_is_longest_task(self):
        cluster = paper_cluster(5)  # 10 map slots
        chunks = [_chunk(f"c{i}", ["worker00"], n_bytes=64 * (i + 1)) for i in range(4)]
        plan = plan_map_phase(
            chunks, cluster, lambda c, loc: c.nbytes / 64.0
        )
        assert plan.waves == 1
        assert plan.makespan == pytest.approx(4.0)  # largest chunk: 4 records

    def test_two_waves_when_tasks_exceed_slots(self):
        cluster = paper_cluster(2)  # 4 map slots
        chunks = [_chunk(f"c{i}", []) for i in range(6)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.waves == 2
        assert plan.makespan == pytest.approx(20.0)

    def test_slot_contention_serializes_on_one_node(self):
        cluster = ClusterSpec([Node("solo", "r", map_slots=1)])
        chunks = [_chunk(f"c{i}", ["solo"]) for i in range(3)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.makespan == pytest.approx(30.0)
        starts = sorted(a.start_time for a in plan.assignments)
        assert starts == [0.0, 10.0, 20.0]

    def test_negative_duration_rejected(self):
        cluster = paper_cluster(2)
        with pytest.raises(ValueError):
            plan_map_phase([_chunk("c", [])], cluster, lambda c, loc: -1.0)

    def test_empty_chunk_list(self):
        plan = plan_map_phase([], paper_cluster(2), _flat_time)
        assert plan.assignments == []
        assert plan.makespan == 0.0
        assert plan.waves == 0


class TestSpeculation:
    def test_straggler_gets_duplicate(self):
        cluster = paper_cluster(4)
        # One huge chunk, several small ones.
        chunks = [_chunk("c-big", ["worker00"], n_bytes=64 * 100)] + [
            _chunk(f"c{i}", ["worker01"], n_bytes=64) for i in range(6)
        ]
        plan = plan_map_phase(
            chunks,
            cluster,
            lambda c, loc: c.nbytes / 64.0,
            speculative=True,
            straggler_factor=1.5,
        )
        spec = [a for a in plan.assignments if a.speculative]
        assert len(spec) >= 1
        # Duplicate runs on a different node than the original attempt.
        originals = {a.task_id: a.node for a in plan.assignments if not a.speculative}
        for a in spec:
            assert a.node != originals[a.task_id]

    def test_no_speculation_when_balanced(self):
        cluster = paper_cluster(4)
        chunks = [_chunk(f"c{i}", []) for i in range(8)]
        plan = plan_map_phase(chunks, cluster, _flat_time, speculative=True)
        assert not any(a.speculative for a in plan.assignments)


class TestDeadNodes:
    def test_dead_nodes_receive_no_tasks(self):
        cluster = paper_cluster(3)
        chunks = [_chunk(f"c{i}", ["worker00"]) for i in range(6)]
        plan = plan_map_phase(
            chunks, cluster, _flat_time, dead_nodes=frozenset({"worker00"})
        )
        assert all(a.node != "worker00" for a in plan.assignments)

    def test_all_dead_raises(self):
        cluster = paper_cluster(2)
        dead = frozenset(n.name for n in cluster.tasktrackers())
        with pytest.raises(RuntimeError):
            plan_map_phase([_chunk("c", [])], cluster, _flat_time, dead_nodes=dead)


class TestReducePhase:
    def test_lpt_packing(self):
        cluster = ClusterSpec([Node("a", "r", reduce_slots=1), Node("b", "r", reduce_slots=1)])
        durations = {0: 5.0, 1: 4.0, 2: 3.0, 3: 3.0}
        placements, makespan = plan_reduce_phase(4, cluster, lambda r: durations[r])
        assert len(placements) == 4
        # LPT: {5, 3} and {4, 3} -> makespan 8.
        assert makespan == pytest.approx(8.0)

    def test_single_reducer(self):
        placements, makespan = plan_reduce_phase(1, paper_cluster(3), lambda r: 2.0)
        assert len(placements) == 1
        assert makespan == pytest.approx(2.0)


class TestFairShare:
    """The multi-tenant stride planner behind JobService.report()."""

    @staticmethod
    def _jobs(n_per_tenant=4, n_maps=6, dur=10.0,
              weights=(("alice", 2.0), ("bob", 1.0))):
        jobs = []
        order = 0
        for tenant, weight in weights:
            for j in range(n_per_tenant):
                jobs.append(
                    FairShareJob(
                        tenant=tenant, weight=weight,
                        name=f"{tenant}:job-{j}", order=order,
                        map_durations=(dur,) * n_maps,
                        reduce_durations=(dur / 2.0,),
                    )
                )
                order += 1
        return jobs

    def test_weighted_shares_within_gate(self):
        # Enough small tasks that slot quantization can't mask the
        # weighting (the gate is over slot-seconds, not task counts).
        plan = plan_fair_share(
            self._jobs(n_per_tenant=8, n_maps=20, dur=2.0), paper_cluster(4)
        )
        deviations = plan.fairness_deviations()
        # The acceptance gate the contention benchmark enforces.
        assert max(abs(d) for d in deviations.values()) <= 0.2
        shares = plan.tenant_shares()
        assert shares["alice"] > shares["bob"]

    def test_equal_weights_equal_slot_seconds(self):
        jobs = self._jobs(weights=(("a", 1.0), ("b", 1.0)))
        plan = plan_fair_share(jobs, paper_cluster(4))
        used = plan.slot_seconds(plan.contended_window())
        assert used["a"] == pytest.approx(used["b"], rel=0.15)

    def test_no_starvation_under_extreme_weights(self):
        """A weight-100 tenant cannot lock a weight-1 peer out of the
        contended window entirely: stride vtime guarantees progress."""
        jobs = self._jobs(weights=(("big", 100.0), ("small", 1.0)))
        plan = plan_fair_share(jobs, paper_cluster(4))
        used = plan.slot_seconds(plan.contended_window())
        assert used["small"] > 0.0
        first_small = min(
            t.start for t in plan.tasks if t.tenant == "small"
        )
        # The small tenant runs within the first couple of task slots,
        # not after the big tenant's whole backlog.
        assert first_small <= 20.0

    def test_deterministic_across_calls(self):
        a = plan_fair_share(self._jobs(), paper_cluster(4))
        b = plan_fair_share(self._jobs(), paper_cluster(4))
        assert a.tasks == b.tasks
        assert a.makespan == b.makespan

    def test_fifo_within_tenant(self):
        plan = plan_fair_share(self._jobs(), paper_cluster(4))
        for tenant in ("alice", "bob"):
            starts = {}
            for task in plan.tasks:
                if task.tenant == tenant and task.phase == "map":
                    starts.setdefault(task.job, task.start)
            jobs_by_first_start = sorted(starts, key=lambda j: starts[j])
            assert jobs_by_first_start == sorted(starts)  # job-0, job-1, ...

    def test_reduce_waits_for_own_map_phase(self):
        plan = plan_fair_share(self._jobs(), paper_cluster(4))
        map_done = {}
        for task in plan.tasks:
            if task.phase == "map":
                map_done[task.job] = max(map_done.get(task.job, 0.0), task.end)
        for task in plan.tasks:
            if task.phase == "reduce":
                assert task.start >= map_done[task.job]

    def test_conflicting_weights_rejected(self):
        jobs = [
            FairShareJob("t", 1.0, "t:a", 0, (1.0,)),
            FairShareJob("t", 2.0, "t:b", 1, (1.0,)),
        ]
        with pytest.raises(ValueError, match="conflicting weights"):
            plan_fair_share(jobs, paper_cluster(2))

    def test_all_dead_raises(self):
        cluster = paper_cluster(2)
        dead = frozenset(n.name for n in cluster.tasktrackers())
        with pytest.raises(RuntimeError, match="no alive tasktrackers"):
            plan_fair_share(self._jobs(), cluster, dead_nodes=dead)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative task duration"):
            FairShareJob("t", 1.0, "t:a", 0, (1.0, -0.5))

    def test_empty_plan(self):
        plan = plan_fair_share([], paper_cluster(2))
        assert plan.tasks == [] and plan.makespan == 0.0
        assert plan.contended_window() == 0.0
