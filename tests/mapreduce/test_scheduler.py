"""Unit tests for the jobtracker scheduler."""

import pytest

from repro.mapreduce.cluster import ClusterSpec, Node, paper_cluster
from repro.mapreduce.scheduler import (
    Locality,
    plan_map_phase,
    plan_reduce_phase,
)
from repro.mapreduce.types import Chunk, RecordPayload


def _chunk(cid, replicas, n_bytes=64):
    payload = RecordPayload([(i, "x" * 56) for i in range(max(1, n_bytes // 64))])
    return Chunk(cid, payload, replicas=tuple(replicas))


def _flat_time(chunk, locality):
    return 10.0


class TestLocalityPreference:
    def test_all_node_local_when_replicas_everywhere(self):
        cluster = paper_cluster(4)
        workers = [n.name for n in cluster.tasktrackers()]
        chunks = [_chunk(f"c{i}", [workers[i % len(workers)]]) for i in range(8)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        counts = plan.locality_counts()
        assert counts[Locality.NODE_LOCAL] == 8
        assert counts[Locality.REMOTE] == 0

    def test_remote_when_no_replicas_on_workers(self):
        cluster = paper_cluster(3)
        chunks = [_chunk("c0", ["nonexistent-node"])]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.locality_counts()[Locality.REMOTE] == 1

    def test_rack_local_classification(self):
        cluster = paper_cluster(8, nodes_per_rack=4)
        # Replica only on worker00 (rack1); with one chunk per slot on
        # worker04..07 (rack2) busy, the scheduler can still pick rack.
        chunk = _chunk("c0", ["worker01"])
        # Force assignment to a same-rack node by making worker01 busy:
        # simplest check — classification helper via single-node cluster.
        from repro.mapreduce.scheduler import _classify_locality

        assert _classify_locality(cluster, "worker01", chunk) == Locality.NODE_LOCAL
        assert _classify_locality(cluster, "worker02", chunk) == Locality.RACK_LOCAL
        assert _classify_locality(cluster, "worker05", chunk) == Locality.REMOTE

    def test_disabling_locality_changes_preference(self):
        cluster = paper_cluster(4)
        workers = [n.name for n in cluster.tasktrackers()]
        # All chunks live on one node; with locality on, that node's slots
        # take them preferentially when free.
        chunks = [_chunk(f"c{i}", [workers[0]]) for i in range(8)]
        plan_on = plan_map_phase(chunks, cluster, _flat_time, prefer_locality=True)
        plan_off = plan_map_phase(chunks, cluster, _flat_time, prefer_locality=False)
        on_local = plan_on.locality_counts()[Locality.NODE_LOCAL]
        off_local = plan_off.locality_counts()[Locality.NODE_LOCAL]
        assert on_local >= off_local


class TestMakespan:
    def test_single_wave_makespan_is_longest_task(self):
        cluster = paper_cluster(5)  # 10 map slots
        chunks = [_chunk(f"c{i}", ["worker00"], n_bytes=64 * (i + 1)) for i in range(4)]
        plan = plan_map_phase(
            chunks, cluster, lambda c, loc: c.nbytes / 64.0
        )
        assert plan.waves == 1
        assert plan.makespan == pytest.approx(4.0)  # largest chunk: 4 records

    def test_two_waves_when_tasks_exceed_slots(self):
        cluster = paper_cluster(2)  # 4 map slots
        chunks = [_chunk(f"c{i}", []) for i in range(6)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.waves == 2
        assert plan.makespan == pytest.approx(20.0)

    def test_slot_contention_serializes_on_one_node(self):
        cluster = ClusterSpec([Node("solo", "r", map_slots=1)])
        chunks = [_chunk(f"c{i}", ["solo"]) for i in range(3)]
        plan = plan_map_phase(chunks, cluster, _flat_time)
        assert plan.makespan == pytest.approx(30.0)
        starts = sorted(a.start_time for a in plan.assignments)
        assert starts == [0.0, 10.0, 20.0]

    def test_negative_duration_rejected(self):
        cluster = paper_cluster(2)
        with pytest.raises(ValueError):
            plan_map_phase([_chunk("c", [])], cluster, lambda c, loc: -1.0)

    def test_empty_chunk_list(self):
        plan = plan_map_phase([], paper_cluster(2), _flat_time)
        assert plan.assignments == []
        assert plan.makespan == 0.0
        assert plan.waves == 0


class TestSpeculation:
    def test_straggler_gets_duplicate(self):
        cluster = paper_cluster(4)
        # One huge chunk, several small ones.
        chunks = [_chunk("c-big", ["worker00"], n_bytes=64 * 100)] + [
            _chunk(f"c{i}", ["worker01"], n_bytes=64) for i in range(6)
        ]
        plan = plan_map_phase(
            chunks,
            cluster,
            lambda c, loc: c.nbytes / 64.0,
            speculative=True,
            straggler_factor=1.5,
        )
        spec = [a for a in plan.assignments if a.speculative]
        assert len(spec) >= 1
        # Duplicate runs on a different node than the original attempt.
        originals = {a.task_id: a.node for a in plan.assignments if not a.speculative}
        for a in spec:
            assert a.node != originals[a.task_id]

    def test_no_speculation_when_balanced(self):
        cluster = paper_cluster(4)
        chunks = [_chunk(f"c{i}", []) for i in range(8)]
        plan = plan_map_phase(chunks, cluster, _flat_time, speculative=True)
        assert not any(a.speculative for a in plan.assignments)


class TestDeadNodes:
    def test_dead_nodes_receive_no_tasks(self):
        cluster = paper_cluster(3)
        chunks = [_chunk(f"c{i}", ["worker00"]) for i in range(6)]
        plan = plan_map_phase(
            chunks, cluster, _flat_time, dead_nodes=frozenset({"worker00"})
        )
        assert all(a.node != "worker00" for a in plan.assignments)

    def test_all_dead_raises(self):
        cluster = paper_cluster(2)
        dead = frozenset(n.name for n in cluster.tasktrackers())
        with pytest.raises(RuntimeError):
            plan_map_phase([_chunk("c", [])], cluster, _flat_time, dead_nodes=dead)


class TestReducePhase:
    def test_lpt_packing(self):
        cluster = ClusterSpec([Node("a", "r", reduce_slots=1), Node("b", "r", reduce_slots=1)])
        durations = {0: 5.0, 1: 4.0, 2: 3.0, 3: 3.0}
        placements, makespan = plan_reduce_phase(4, cluster, lambda r: durations[r])
        assert len(placements) == 4
        # LPT: {5, 3} and {4, 3} -> makespan 8.
        assert makespan == pytest.approx(8.0)

    def test_single_reducer(self):
        placements, makespan = plan_reduce_phase(1, paper_cluster(3), lambda r: 2.0)
        assert len(placements) == 1
        assert makespan == pytest.approx(2.0)
