"""Unit/integration tests for the job runner."""

import numpy as np
import pytest

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner


class WordCountMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class IdentityMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value)


class FirstValueCombiner(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _wordcount_input(hdfs, path="in", lines=None):
    lines = lines or ["a b a", "b c", "a c c"] * 4
    hdfs.put_records(path, list(enumerate(lines)), record_bytes=16)


@pytest.fixture()
def small_hdfs():
    return SimulatedHDFS(paper_cluster(4), chunk_size=64, seed=0)


class TestWordCount:
    def test_counts_correct(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer, num_reducers=3))
        counts = dict(small_hdfs.read_records("out"))
        assert counts == {"a": 12, "b": 8, "c": 12}

    def test_multiple_chunks_created(self, small_hdfs):
        _wordcount_input(small_hdfs)
        assert len(small_hdfs.chunks("in")) > 1

    def test_counters(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        res = runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer))
        t = res.counters.group(STANDARD.GROUP_TASK)
        assert t[STANDARD.MAP_INPUT_RECORDS] == 12
        assert t[STANDARD.MAP_OUTPUT_RECORDS] == 32  # total words
        assert t[STANDARD.REDUCE_INPUT_RECORDS] == 32
        assert t[STANDARD.REDUCE_INPUT_GROUPS] == 3
        assert t[STANDARD.REDUCE_OUTPUT_RECORDS] == 3
        assert t[STANDARD.SHUFFLE_BYTES] > 0
        s = res.counters.group(STANDARD.GROUP_SCHEDULER)
        assert s[STANDARD.MAP_TASKS] == res.n_map_tasks

    def test_output_exists_refused(self, small_hdfs):
        _wordcount_input(small_hdfs)
        small_hdfs.put_records("out", [(0, 0)])
        runner = JobRunner(small_hdfs)
        with pytest.raises(FileExistsError):
            runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer))

    def test_missing_input_raises(self, small_hdfs):
        runner = JobRunner(small_hdfs)
        with pytest.raises(FileNotFoundError):
            runner.run(JobSpec("wc", WordCountMapper, ["ghost"], "out", reducer=SumReducer))

    def test_threads_executor_equivalent(self, small_hdfs):
        _wordcount_input(small_hdfs)
        serial = JobRunner(small_hdfs)
        serial.run(JobSpec("wc", WordCountMapper, ["in"], "o1", reducer=SumReducer))
        threads = JobRunner(small_hdfs, executor="threads", max_workers=4)
        threads.run(JobSpec("wc", WordCountMapper, ["in"], "o2", reducer=SumReducer))
        assert dict(small_hdfs.read_records("o1")) == dict(small_hdfs.read_records("o2"))

    def test_unknown_executor_rejected(self, small_hdfs):
        with pytest.raises(ValueError):
            JobRunner(small_hdfs, executor="gpu")


class TestMapOnly:
    def test_map_only_writes_map_output(self, small_hdfs):
        _wordcount_input(small_hdfs, lines=["x y"])
        runner = JobRunner(small_hdfs)
        res = runner.run(JobSpec("ident", IdentityMapper, ["in"], "out"))
        assert res.n_reduce_tasks == 0
        assert dict(small_hdfs.read_records("out")) == {0: "x y"}
        assert res.timing.reduce_s == 0.0

    def test_array_output_fast_path(self, small_hdfs):
        arr = TraceArray.from_columns(
            ["u"], np.zeros(10), np.zeros(10), np.arange(10.0)
        )
        small_hdfs.put_trace_array("traces", arr, record_bytes=64)

        class PassThrough(Mapper):
            def run(self, chunk, ctx):
                ctx.emit_array(chunk.trace_array())

        runner = JobRunner(small_hdfs)
        runner.run(JobSpec("pass", PassThrough, ["traces"], "out"))
        back = small_hdfs.read_trace_array("out")
        assert len(back) == 10
        assert np.allclose(np.sort(back.timestamp), np.arange(10.0))

    def test_mixed_output_falls_back_to_records(self, small_hdfs):
        """A mapper emitting both array blocks and plain records gets the
        generic record-file output, not the columnar fast path."""
        arr = TraceArray.from_columns(["u"], np.zeros(5), np.zeros(5), np.arange(5.0))
        small_hdfs.put_trace_array("traces", arr, record_bytes=64)

        class Mixed(Mapper):
            def run(self, chunk, ctx):
                ctx.emit_array(chunk.trace_array())
                ctx.emit("stats", chunk.n_records)

        runner = JobRunner(small_hdfs)
        runner.run(JobSpec("mixed", Mixed, ["traces"], "out"))
        records = small_hdfs.read_records("out")
        stats_total = sum(v for k, v in records if k == "stats")
        assert stats_total == 5  # one "stats" record per chunk, summing to n
        with pytest.raises(TypeError):
            small_hdfs.read_trace_array("out")

    def test_empty_map_output_creates_empty_file(self, small_hdfs):
        small_hdfs.put_records("in", [(0, "x")], record_bytes=16)

        class DropAll(Mapper):
            def map(self, key, value, ctx):
                pass

        runner = JobRunner(small_hdfs)
        runner.run(JobSpec("drop", DropAll, ["in"], "out"))
        assert small_hdfs.exists("out")
        assert small_hdfs.read_records("out") == []


class TestCombiner:
    def test_combiner_preserves_result_and_cuts_shuffle(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        plain = runner.run(
            JobSpec("wc", WordCountMapper, ["in"], "plain", reducer=SumReducer)
        )
        combined = runner.run(
            JobSpec(
                "wc+c",
                WordCountMapper,
                ["in"],
                "combined",
                reducer=SumReducer,
                combiner=FirstValueCombiner,
            )
        )
        assert dict(small_hdfs.read_records("plain")) == dict(
            small_hdfs.read_records("combined")
        )
        assert combined.counters.value(
            STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES
        ) < plain.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES)
        assert combined.counters.value(
            STANDARD.GROUP_TASK, STANDARD.COMBINE_INPUT_RECORDS
        ) == 32

    def test_combine_output_records_counted(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        res = runner.run(
            JobSpec(
                "wc",
                WordCountMapper,
                ["in"],
                "out",
                reducer=SumReducer,
                combiner=FirstValueCombiner,
            )
        )
        out_records = res.counters.value(
            STANDARD.GROUP_TASK, STANDARD.COMBINE_OUTPUT_RECORDS
        )
        assert 0 < out_records <= 32


class TestSimulatedTime:
    def test_timing_components_positive(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        res = runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer))
        assert res.timing.setup_s > 0
        assert res.timing.map_s > 0
        assert res.timing.reduce_s > 0
        assert res.sim_seconds == pytest.approx(
            res.timing.setup_s + res.timing.map_s + res.timing.reduce_s
        )

    def test_more_data_costs_more_map_time(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=10 * 1024 * 1024)
        small = [(i, "x" * 60) for i in range(100)]
        big = [(i, "x" * 60) for i in range(100)] * 50
        hdfs.put_records("small", small, record_bytes=64)
        hdfs.put_records("big", big, record_bytes=64)
        runner = JobRunner(hdfs)
        r_small = runner.run(JobSpec("a", IdentityMapper, ["small"], "o1"))
        r_big = runner.run(JobSpec("b", IdentityMapper, ["big"], "o2"))
        assert r_big.timing.map_s > r_small.timing.map_s

    def test_deploy_overhead_reported(self, small_hdfs):
        runner = JobRunner(small_hdfs)
        assert runner.deploy_overhead_s == pytest.approx(25.0)


class TestJobResultSummary:
    def test_summary_fields(self, small_hdfs):
        _wordcount_input(small_hdfs)
        runner = JobRunner(small_hdfs)
        res = runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer))
        line = res.summary()
        assert "wc:" in line
        assert "maps" in line and "reduces" in line
        assert "shuffle" in line and "sim" in line

    def test_map_only_summary(self, small_hdfs):
        _wordcount_input(small_hdfs, lines=["x"])
        runner = JobRunner(small_hdfs)
        res = runner.run(JobSpec("ident", IdentityMapper, ["in"], "out"))
        assert "map-only" in res.summary()

    def test_retries_mentioned(self, small_hdfs):
        from repro.mapreduce.failures import FailureInjector

        _wordcount_input(small_hdfs)
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=1)
        runner = JobRunner(small_hdfs, failure_injector=inj)
        res = runner.run(JobSpec("wc", WordCountMapper, ["in"], "out", reducer=SumReducer))
        assert "retried" in res.summary()


class TestSpeculativeExecution:
    def test_output_unchanged_and_counted(self):
        """The runner executes primary attempts only; speculation shows
        up in counters and (possibly) a shorter simulated map phase."""
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 1000, seed=0)
        # One big chunk + several small: classic straggler layout.
        arr_big = TraceArray.from_columns(
            ["u"], np.zeros(5000), np.zeros(5000), np.arange(5000.0)
        )
        hdfs.put_trace_array("big", arr_big)
        hdfs.put_records("small", [(i, 1) for i in range(12)], record_bytes=16)

        class CountMapper(Mapper):
            def run(self, chunk, ctx):
                ctx.emit("n", chunk.n_records)

        plain = JobRunner(hdfs, speculative=False)
        spec = JobRunner(hdfs, speculative=True)
        r1 = plain.run(JobSpec("j", CountMapper, ["big", "small"], "o1", reducer=SumReducer))
        r2 = spec.run(JobSpec("j", CountMapper, ["big", "small"], "o2", reducer=SumReducer))
        assert dict(hdfs.read_records("o1")) == dict(hdfs.read_records("o2"))
        assert r2.timing.map_s <= r1.timing.map_s + 1e-9
        # Speculative attempts never run twice in the data plane.
        assert r1.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS) == (
            r2.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS)
        )


class TestMultipleInputs:
    def test_two_input_paths(self, small_hdfs):
        small_hdfs.put_records("in1", [(0, "a a")], record_bytes=16)
        small_hdfs.put_records("in2", [(0, "a b")], record_bytes=16)
        runner = JobRunner(small_hdfs)
        runner.run(
            JobSpec("wc", WordCountMapper, ["in1", "in2"], "out", reducer=SumReducer)
        )
        assert dict(small_hdfs.read_records("out")) == {"a": 3, "b": 1}
