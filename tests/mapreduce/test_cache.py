"""Unit tests for the distributed cache."""

import numpy as np
import pytest

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.runner import JobRunner


class TestDistributedCache:
    def test_put_get(self):
        cache = DistributedCache()
        cache.put("model", {"k": 3})
        assert cache.get("model") == {"k": 3}
        assert "model" in cache
        assert len(cache) == 1
        assert list(cache) == ["model"]

    def test_put_duplicate_rejected(self):
        cache = DistributedCache()
        cache.put("x", 1)
        with pytest.raises(KeyError):
            cache.put("x", 2)

    def test_replace_overwrites(self):
        cache = DistributedCache()
        cache.replace("x", 1)
        cache.replace("x", 2)
        assert cache.get("x") == 2

    def test_missing_entry(self):
        with pytest.raises(KeyError):
            DistributedCache().get("ghost")

    def test_nbytes_counts_numpy(self):
        cache = DistributedCache()
        cache.put("arr", np.zeros(100))
        assert cache.nbytes() == 800


class TestCacheVisibleToTasks:
    def test_mapper_reads_cache_in_setup(self):
        hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64, seed=0)
        hdfs.put_records("in", [(i, i) for i in range(8)], record_bytes=16)
        runner = JobRunner(hdfs)
        runner.cache.put("offset", 100)

        class OffsetMapper(Mapper):
            def setup(self, ctx):
                self.offset = ctx.cache.get("offset")

            def map(self, key, value, ctx):
                ctx.emit(key, value + self.offset)

        runner.run(JobSpec("j", OffsetMapper, ["in"], "out"))
        out = dict(hdfs.read_records("out"))
        assert out == {i: i + 100 for i in range(8)}

    def test_cache_broadcast_charged_in_setup_time(self):
        hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64, seed=0)
        hdfs.put_records("in", [(0, 0)], record_bytes=16)

        class Echo(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, value)

        bare = JobRunner(hdfs)
        r1 = bare.run(JobSpec("j", Echo, ["in"], "o1"))
        heavy = JobRunner(hdfs)
        heavy.cache.put("big", np.zeros(10_000_000))  # 80 MB side data
        r2 = heavy.run(JobSpec("j", Echo, ["in"], "o2"))
        assert r2.timing.setup_s > r1.timing.setup_s
