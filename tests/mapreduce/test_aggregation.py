"""The aggregation algebra: monoid exactness, the canonical merge tree,
map-side pre-aggregation, the metadata-only shuffle, and equivalence of
every shuffle path under backends, memory budgets and chaos."""

import numpy as np
import pytest

from repro.algorithms.kmeans import KMeansAggregation
from repro.mapreduce.aggregation import (
    AggregateEnvelope,
    AggregationReducer,
    CountAggregation,
    CountSumReducer,
    coalesce_by_node,
    fold_envelopes,
    preaggregate,
)
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.failures import ChaosSchedule, Fault, FaultKind
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import HashPartitioner, JobSpec, Mapper, ReduceContext
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.shuffle import shuffle
from repro.observability.events import EventKind

BACKENDS = ("serial", "threads", "processes")


class _ObjectOnlyCount(CountAggregation):
    """CountAggregation with the vectorized fast path disabled."""

    def lift_pairs(self, pairs):
        return None


class _ObjectOnlyKMeans(KMeansAggregation):
    def lift_pairs(self, pairs):
        return None


# -- vectorized lift_pairs vs the object loop ---------------------------------

@pytest.mark.parametrize(
    "pairs",
    [
        [(3, 1), (1, 2), (3, 4), (-7, 5), (1, 1), (0, 0)],
        [(0, 1)],
        [(5, -2), (5, -3), (5, 1000)],
        [(k % 4, k) for k in range(100)],
        [],
    ],
)
def test_count_lift_pairs_matches_object_loop(pairs):
    fast, fast_c = preaggregate(CountAggregation(), pairs, "n1", "map-0000")
    slow, slow_c = preaggregate(_ObjectOnlyCount(), pairs, "n1", "map-0000")
    assert fast == slow
    assert fast_c.to_dict() == slow_c.to_dict()


def test_count_lift_pairs_declines_non_int_keys():
    agg = CountAggregation()
    assert agg.lift_pairs([("u1", 1), ("u2", 2)]) is None
    assert agg.lift_pairs([(True, 1)]) is None  # bool is not int here
    assert agg.lift_pairs([(1, 2.0)]) is None
    # preaggregate still folds them through the object loop.
    pairs, _ = preaggregate(agg, [("b", 1), ("a", 2), ("b", 3)], "n1", "map-0000")
    assert [(k, e.value, e.records) for k, e in pairs] == [("a", 2, 1), ("b", 4, 2)]


def test_kmeans_lift_pairs_matches_object_loop_bitwise():
    rng = np.random.default_rng(7)
    pairs = [
        (int(cid), rng.normal(size=(n, 2)) * 10)
        for cid, n in [(2, 17), (0, 3), (2, 5), (1, 1)]
    ]
    fast, _ = preaggregate(KMeansAggregation(), pairs, "n1", "map-0000")
    slow, _ = preaggregate(_ObjectOnlyKMeans(), pairs, "n1", "map-0000")
    assert [k for k, _ in fast] == [k for k, _ in slow]
    for (_, fe), (_, se) in zip(fast, slow):
        assert fe.value[0].tobytes() == se.value[0].tobytes()
        assert fe.value[1] == se.value[1]
        assert fe.records == se.records


# -- canonical merge tree ------------------------------------------------------

def _float_envelopes():
    """Envelopes whose float partials detect any merge-order change."""
    rng = np.random.default_rng(11)
    envs = []
    for node, task in [
        ("n2", "map-0003"), ("n1", "map-0001"), ("n1", "map-0004"),
        ("n3", "map-0000"), ("n2", "map-0002"), ("n1", "map-0007"),
    ]:
        envs.append(
            AggregateEnvelope(
                value=(rng.normal(size=2) * 10.0 ** float(rng.integers(-3, 6)), 1),
                node=node, task=task, records=1, nbytes=24,
            )
        )
    return envs


def test_fold_envelopes_invariant_under_permutation():
    agg = KMeansAggregation()
    envs = _float_envelopes()
    want = fold_envelopes(agg, envs)
    for seed in range(5):
        shuffled = list(envs)
        np.random.default_rng(seed).shuffle(shuffled)
        got = fold_envelopes(agg, shuffled)
        assert got[0].tobytes() == want[0].tobytes()
        assert got[1] == want[1]


def test_fold_after_coalesce_is_bitwise_identical():
    """Transport coalescing replays the per-node fold exactly, so the
    reducer's result is the same whether envelopes arrive per-task or
    pre-coalesced per node."""
    agg = KMeansAggregation()
    envs = _float_envelopes()
    coalesced = coalesce_by_node(agg, envs)
    assert len(coalesced) == 3  # one per source node
    a = fold_envelopes(agg, envs)
    b = fold_envelopes(agg, coalesced)
    assert a[0].tobytes() == b[0].tobytes()
    assert a[1] == b[1]


def test_coalesce_preserves_record_counts_and_node_labels():
    agg = KMeansAggregation()
    coalesced = coalesce_by_node(agg, _float_envelopes())
    assert sorted(e.node for e in coalesced) == ["n1", "n2", "n3"]
    assert sum(e.records for e in coalesced) == 6
    # The surviving task label is the node's first task in canonical order.
    by_node = {e.node: e.task for e in coalesced}
    assert by_node["n1"] == "map-0001"
    assert by_node["n2"] == "map-0002"


def test_fold_seeds_with_first_partial_not_zero():
    """A single -0.0 partial must come back with its sign bit intact:
    folding through ``zero()`` would compute ``0.0 + (-0.0) == 0.0``."""
    agg = KMeansAggregation()
    env = AggregateEnvelope(
        value=(np.array([-0.0, -0.0]), 0), node="n1", task="map-0000",
        records=0, nbytes=24,
    )
    total, count = fold_envelopes(agg, [env])
    assert np.signbit(total).all()
    assert count == 0


def test_preaggregate_counters():
    pairs = [(1, 1), (2, 1), (1, 1), (1, 1)]
    out, counters = preaggregate(CountAggregation(), pairs, "n1", "map-0000")
    assert counters.value(STANDARD.GROUP_TASK, STANDARD.PREAGG_INPUT_RECORDS) == 4
    assert counters.value(STANDARD.GROUP_TASK, STANDARD.PREAGG_OUTPUT_RECORDS) == 2
    assert [(k, e.value, e.records, e.nbytes) for k, e in out] == [
        (1, 3, 3, 16), (2, 1, 1, 16),
    ]


# -- metadata-only shuffle -----------------------------------------------------

def _envelope_outputs():
    """Three map tasks on two nodes emitting pre-aggregated counts."""
    agg = CountAggregation()
    outs = []
    for node, task, pairs in [
        ("nodeA", "map-0000", [(1, 2), (2, 3)]),
        ("nodeB", "map-0001", [(1, 5), (3, 1)]),
        ("nodeA", "map-0002", [(2, 7)]),
    ]:
        env_pairs, _ = preaggregate(agg, pairs, node, task)
        outs.append(env_pairs)
    return agg, outs


def test_metadata_shuffle_coalesces_and_accounts():
    agg, outs = _envelope_outputs()
    sh = shuffle(outs, HashPartitioner(), 2, aggregation=agg)
    assert sh.preagg is not None
    assert sh.node_bytes is not None
    # 5 per-task envelopes; key 2 appears twice on nodeA and coalesces.
    assert sh.preagg["pre_coalesce_envelopes"] == 5
    assert sh.preagg["envelopes"] == 4
    assert sh.preagg["raw_records"] == 5
    assert sh.preagg["envelope_bytes"] == 4 * agg.envelope_nbytes
    assert sh.shuffled_bytes == 4 * agg.envelope_nbytes
    for r in range(2):
        assert sh.partition_bytes[r] == sum(sh.node_bytes[r].values())
        # Shipped records are envelopes; raw accounting sees through them.
        assert sh.records_for(r) <= sh.raw_records_for(r)
    assert sum(sh.raw_records_for(r) for r in range(2)) == 5


def test_metadata_shuffle_reduce_matches_legacy_paths():
    agg, outs = _envelope_outputs()
    meta = shuffle(outs, HashPartitioner(), 2, aggregation=agg)
    legacy = shuffle(outs, HashPartitioner(), 2, aggregation=agg, metadata_only=False)
    no_agg = shuffle(outs, HashPartitioner(), 2)
    assert legacy.preagg is None and no_agg.preagg is None

    def reduce_out(sh):
        reducer = AggregationReducer(agg)
        ctx = ReduceContext(None, None, None, "reduce-0000", "n1")
        for r in range(sh.n_reducers):
            for key, values in sh.partition(r):
                reducer.reduce(key, values, ctx)
        return sorted(ctx.output)

    assert reduce_out(meta) == reduce_out(legacy) == reduce_out(no_agg)
    assert reduce_out(meta) == [(1, 7), (2, 10), (3, 1)]


def test_one_raw_pair_disables_metadata_shuffle():
    agg, outs = _envelope_outputs()
    outs[1] = outs[1] + [(9, 4)]  # a raw (key, int) pair sneaks in
    sh = shuffle(outs, HashPartitioner(), 2, aggregation=agg)
    assert sh.preagg is None
    assert sh.node_bytes is None


def test_spilled_partition_accounting_matches_materialized():
    """records_for/groups_for/raw_records_for answer from spill metadata
    without touching disk — and agree with the materialized groups."""
    from repro.mapreduce.spill import ShuffleSpiller, SpillDirectory, SpillStats

    outputs = [[(k % 5, k) for k in range(i, 60, 3)] for i in range(3)]
    directory = SpillDirectory(None)
    try:
        spiller = ShuffleSpiller(1, directory, 2, HashPartitioner(), SpillStats())
        sh = shuffle(outputs, HashPartitioner(), 2, spiller=spiller)
        assert sh.spilled
        for r in range(2):
            groups = sh.partition(r)
            assert sh.records_for(r) == sum(len(vs) for _, vs in groups)
            assert sh.groups_for(r) == len(groups)
            # No pre-aggregation: every shipped record IS a raw record.
            assert sh.raw_records_for(r) == sh.records_for(r)
        assert sum(sh.partition_bytes) == sh.shuffled_bytes
        sh.release()
    finally:
        directory.cleanup()


# -- full-engine equivalence: backends x budget x shuffle path ----------------

class _ModMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(int(value) % 7, 1, nbytes=16)


def _count_hdfs():
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=256, seed=0)
    hdfs.put_records("in", list(enumerate(range(199))), record_bytes=16)
    return hdfs


def _count_spec():
    return JobSpec(
        "modsum", _ModMapper, ["in"], "out",
        reducer=CountSumReducer, aggregation=CountAggregation, num_reducers=3,
    )


def _run_count_job(backend, *, preagg=True, metadata=True, budget=None, chaos=None):
    hdfs = _count_hdfs()
    workers = None if backend == "serial" else 2
    with JobRunner(
        hdfs, executor=backend, max_workers=workers, preagg=preagg,
        metadata_shuffle=metadata, memory_budget_mb=budget, chaos=chaos,
    ) as runner:
        result = runner.run(_count_spec())
        return sorted(hdfs.read_records("out")), result, runner.history


EXPECTED = sorted((k, len(range(k, 199, 7))) for k in range(7))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("budget", [None, 1])
def test_shuffle_paths_identical_across_backends_and_budget(backend, budget):
    """Pre-agg + metadata-only, pre-agg + legacy transport, and the raw
    declared-reducer path all emit identical records on every backend,
    with or without a memory budget."""
    outputs = {}
    for preagg, metadata in [(True, True), (True, False), (False, False)]:
        records, result, _ = _run_count_job(
            backend, preagg=preagg, metadata=metadata, budget=budget
        )
        outputs[(preagg, metadata)] = records
        assert records == EXPECTED, (backend, preagg, metadata, budget)
    assert len(set(map(tuple, outputs.values()))) == 1


def test_preagg_moves_fewer_bytes_than_raw():
    _, agg_result, _ = _run_count_job("serial")
    _, raw_result, _ = _run_count_job("serial", preagg=False, metadata=False)
    agg_bytes = agg_result.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES)
    raw_bytes = raw_result.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES)
    assert 0 < agg_bytes < raw_bytes


def test_shuffle_transfer_events_see_through_envelopes():
    """On the metadata-only path each shuffle_transfer event reports
    both the shipped envelope count and the raw mapper records behind
    it; the raw counts sum to the job's true map output."""
    _, _, history = _run_count_job("serial")
    transfers = [
        e for e in history.events_for("modsum")
        if e.kind == EventKind.SHUFFLE_TRANSFER
    ]
    assert len(transfers) == 3
    for e in transfers:
        assert e.data["records"] <= e.data["raw_records"]
    assert sum(e.data["raw_records"] for e in transfers) == 199


# -- chaos: metadata-only partitions survive failures -------------------------

def test_metadata_partition_survives_shuffle_fetch_and_node_loss():
    """A fetch timeout on a metadata-only partition and the loss of a
    map node mid-job are both absorbed: the re-fetch pulls envelopes
    (labeled with their planned node, so the canonical merge tree is
    unchanged) and output records stay identical to the pristine run."""
    chaos = ChaosSchedule(
        seed=5,
        faults=(
            Fault(FaultKind.SHUFFLE_FETCH, task="reduce-0001"),
            Fault(FaultKind.NODE_LOSS, node="worker01", job="modsum"),
        ),
    )
    pristine, _, _ = _run_count_job("serial")
    for backend in BACKENDS:
        records, result, history = _run_count_job(backend, chaos=chaos)
        assert records == pristine == EXPECTED
        refetches = result.counters.value(
            STANDARD.GROUP_SCHEDULER, STANDARD.SHUFFLE_REFETCHES
        )
        assert refetches >= 1
        # The run really took the metadata-only path.
        preagg_events = [
            e for e in history.events_for("modsum")
            if e.kind == EventKind.SHUFFLE_PREAGG
        ]
        assert len(preagg_events) == 1
        assert preagg_events[0].data["envelopes"] > 0


def test_chaos_run_is_bit_reproducible_on_metadata_path():
    chaos = ChaosSchedule(
        seed=5, faults=(Fault(FaultKind.SHUFFLE_FETCH, task="reduce-0000"),)
    )
    a_records, a_result, _ = _run_count_job("serial", chaos=chaos)
    b_records, b_result, _ = _run_count_job("serial", chaos=chaos)
    assert a_records == b_records
    assert a_result.counters.to_dict() == b_result.counters.to_dict()
    assert a_result.timing.total_s == b_result.timing.total_s
