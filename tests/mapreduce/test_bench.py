"""The backend benchmark harness: corpus synthesis, the timing run's
divergence guard, and the baseline regression check."""

import numpy as np
import pytest

from repro.mapreduce.bench import (
    check_against_baseline,
    load_result,
    render_result,
    run_backend_benchmark,
    save_result,
    synthetic_corpus,
)


def _doc(times_by_size, cpu_count=4, schema=1):
    return {
        "schema": schema,
        "cpu_count": cpu_count,
        "results": [
            {"size": size, "times_s": dict(times)}
            for size, times in times_by_size.items()
        ],
    }


# -- synthetic corpus --------------------------------------------------------

def test_synthetic_corpus_shape_and_determinism():
    a = synthetic_corpus(500, seed=3)
    b = synthetic_corpus(500, seed=3)
    assert len(a) == 500
    assert np.array_equal(a.latitude, b.latitude)
    assert np.array_equal(a.longitude, b.longitude)
    assert len(synthetic_corpus(500, seed=4)) == 500
    assert not np.array_equal(synthetic_corpus(500, seed=4).latitude, a.latitude)


# -- the benchmark run -------------------------------------------------------

def test_small_benchmark_run_and_roundtrip(tmp_path):
    doc = run_backend_benchmark(
        sizes=(2_000,), backends=("serial", "threads"), iterations=1,
        max_iter=2, max_workers=2,
    )
    (entry,) = doc["results"]
    assert entry["size"] == 2_000
    assert set(entry["times_s"]) == {"serial", "threads"}
    assert all(t > 0 for t in entry["times_s"].values())
    assert entry["speedup_vs_serial"].keys() == {"threads"}
    assert "traces" in render_result(doc)

    path = save_result(doc, tmp_path / "bench.json")
    assert load_result(path) == doc


def test_benchmark_rejects_bad_arguments():
    with pytest.raises(ValueError, match="unknown backend"):
        run_backend_benchmark(sizes=(100,), backends=("serial", "fibers"))
    with pytest.raises(ValueError, match="iterations"):
        run_backend_benchmark(sizes=(100,), iterations=0)


# -- the regression check ----------------------------------------------------

def test_check_passes_within_tolerance():
    base = _doc({1000: {"serial": 1.0, "processes": 0.5}})
    cur = _doc({1000: {"serial": 1.2, "processes": 0.6}})
    assert check_against_baseline(cur, base, tolerance=0.25) == []


def test_check_flags_absolute_regression_on_same_host():
    base = _doc({1000: {"serial": 1.0, "processes": 0.5}})
    cur = _doc({1000: {"serial": 1.0, "processes": 0.8}})
    problems = check_against_baseline(cur, base, tolerance=0.25)
    # The provenance header leads, then the one regressed cell.
    assert len(problems) == 2
    assert "provenance" in problems[0] and "cpu_count=4" in problems[0]
    assert "raw wall-clock" in problems[0]
    assert "processes" in problems[1] and "wall-clock" in problems[1]


def test_check_normalizes_on_different_host():
    base = _doc({1000: {"serial": 1.0, "processes": 0.5}}, cpu_count=4)
    # Host is 3x slower overall but the processes/serial ratio is intact:
    # not a regression in the backend machinery.
    cur = _doc({1000: {"serial": 3.0, "processes": 1.5}}, cpu_count=2)
    assert check_against_baseline(cur, base, tolerance=0.25) == []
    # Same hosts, but the ratio itself collapsed: flagged.
    worse = _doc({1000: {"serial": 3.0, "processes": 3.0}}, cpu_count=2)
    problems = check_against_baseline(worse, base, tolerance=0.25)
    assert len(problems) == 2
    assert "provenance" in problems[0] and "different hosts" in problems[0]
    assert "serial-normalized" in problems[1]


def test_check_skips_noise_floor_cells():
    base = _doc({1000: {"serial": 0.05}})
    cur = _doc({1000: {"serial": 0.2}})  # 4x, but 50 ms is jitter territory
    assert check_against_baseline(cur, base, min_seconds=0.25) == []
    assert check_against_baseline(cur, base, min_seconds=0.01) != []


def test_check_reports_schema_mismatch_and_no_overlap():
    base = _doc({1000: {"serial": 1.0}}, schema=0)
    cur = _doc({1000: {"serial": 1.0}})
    assert "schema mismatch" in check_against_baseline(cur, base)[0]

    base = _doc({1000: {"serial": 1.0}})
    cur = _doc({2000: {"serial": 1.0}})
    problems = check_against_baseline(cur, base)
    assert any("no overlapping corpus sizes" in p for p in problems)
