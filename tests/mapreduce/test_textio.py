"""Tests for the text-line (record-at-a-time) GeoLife path."""

import numpy as np
import pytest

from repro.algorithms.sampling import sample_array
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.textio import (
    GeoLifeTextMapper,
    put_geolife_text,
    read_geolife_text,
    run_text_sampling_job,
)


def _array(n=200, seed=0, user="u"):
    rng = np.random.default_rng(seed)
    return TraceArray.from_columns(
        [user],
        39.9 + rng.normal(0, 0.01, n),
        116.4 + rng.normal(0, 0.01, n),
        np.sort(rng.uniform(1.2e9, 1.2e9 + 7200, n)),
        np.full(n, 120.0),
    )


@pytest.fixture()
def hdfs():
    return SimulatedHDFS(paper_cluster(4), chunk_size=4096, seed=0)


class TestTextRoundtrip:
    def test_put_read_roundtrip(self, hdfs):
        arr = _array(100)
        put_geolife_text(hdfs, "text", arr)
        back = read_geolife_text(hdfs, "text")
        assert len(back) == 100
        assert np.allclose(np.sort(back.latitude), np.sort(arr.latitude), atol=1e-6)

    def test_chunks_reflect_text_bytes(self, hdfs):
        arr = _array(300)
        put_geolife_text(hdfs, "text", arr)
        chunks = hdfs.chunks("text")
        assert len(chunks) > 1
        # ~60-70 bytes per line, 4 KB chunks -> ~55-65 records each.
        for chunk in chunks[:-1]:
            assert 40 <= chunk.n_records <= 80

    def test_dataset_input_accepted(self, hdfs):
        ds = GeolocatedDataset([Trail("a", _array(10, user="a"))])
        put_geolife_text(hdfs, "text", ds)
        assert hdfs.file_records("text") == 10


class TestGeoLifeTextMapper:
    def test_malformed_lines_counted_and_skipped(self, hdfs):
        hdfs.put_records(
            "in",
            [("u", "39.9,116.4,0,120,39173.5,2007-04-01,12:00:00"), ("u", "garbage")],
        )

        class CollectMapper(GeoLifeTextMapper):
            def map_trace(self, trace, ctx):
                ctx.emit(trace.user_id, trace.timestamp)

        runner = JobRunner(hdfs)
        res = runner.run(JobSpec("parse", CollectMapper, ["in"], "out"))
        assert len(hdfs.read_records("out")) == 1
        assert res.counters.value("textio", "malformed_lines") == 1


class TestTextSampling:
    @pytest.mark.parametrize("technique", ["upper", "middle"])
    def test_text_path_equals_vectorized_path(self, technique):
        """The paper's record-at-a-time algorithm and the columnar kernel
        are the same algorithm: identical representatives on one chunk."""
        arr = _array(500, seed=3)
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=10**7, seed=0)
        put_geolife_text(hdfs, "text", arr)
        runner = JobRunner(hdfs)
        run_text_sampling_job(runner, "text", "out", 300.0, technique)
        text_result = read_geolife_text(hdfs, "out").sort_by_time()
        vec_result = sample_array(arr, 300.0, technique).sort_by_time()
        assert len(text_result) == len(vec_result)
        assert np.allclose(text_result.timestamp, vec_result.timestamp, atol=0.01)
        assert np.allclose(text_result.latitude, vec_result.latitude, atol=1e-6)

    def test_multi_chunk_artifact_bounded(self):
        arr = _array(500, seed=4)
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=4096, seed=0)
        put_geolife_text(hdfs, "text", arr)
        n_chunks = len(hdfs.chunks("text"))
        assert n_chunks > 2
        runner = JobRunner(hdfs)
        run_text_sampling_job(runner, "text", "out", 300.0)
        seq = sample_array(arr, 300.0)
        got = hdfs.file_records("out")
        assert len(seq) <= got <= len(seq) + n_chunks

    def test_window_parameter_validated(self, hdfs):
        put_geolife_text(hdfs, "text", _array(10))
        with pytest.raises(ValueError):
            run_text_sampling_job(JobRunner(hdfs), "text", "out", 0.0)
