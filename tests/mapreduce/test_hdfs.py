"""Unit tests for the simulated HDFS."""

import numpy as np
import pytest

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import ClusterSpec, Node, paper_cluster
from repro.mapreduce.hdfs import MB, SimulatedHDFS


def _traces(n):
    return TraceArray.from_columns(
        ["u"], 39.9 + np.arange(n) * 1e-5, np.full(n, 116.4), np.arange(n, dtype=float)
    )


class TestChunking:
    def test_records_chunked_by_modelled_bytes(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=100)
        hdfs.put_records("f", [(i, i) for i in range(20)], record_bytes=16)
        chunks = hdfs.chunks("f")
        # 100 // 16 -> 6 records per chunk, 20 records -> 4 chunks
        assert len(chunks) == 4
        assert sum(c.n_records for c in chunks) == 20

    def test_trace_array_chunking_matches_record_model(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * MB)
        arr = _traces(100)
        hdfs.put_trace_array("t", arr, record_bytes=64)
        # 64 MB / 64 B = 1M records per chunk; 100 records -> 1 chunk.
        assert len(hdfs.chunks("t")) == 1
        hdfs2 = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 40)
        hdfs2.put_trace_array("t", arr, record_bytes=64)
        assert len(hdfs2.chunks("t")) == 3  # 40 + 40 + 20

    def test_array_offsets_are_cumulative(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 10)
        hdfs.put_trace_array("t", _traces(25), record_bytes=64)
        offsets = [c.payload.offset for c in hdfs.chunks("t")]
        assert offsets == [0, 10, 20]

    def test_read_trace_array_roundtrip(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 7)
        arr = _traces(30)
        hdfs.put_trace_array("t", arr)
        back = hdfs.read_trace_array("t")
        assert len(back) == 30
        assert np.allclose(back.timestamp, arr.timestamp)

    def test_file_accounting(self):
        hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64 * 10)
        hdfs.put_trace_array("t", _traces(25), record_bytes=64)
        assert hdfs.file_records("t") == 25
        assert hdfs.file_nbytes("t") == 25 * 64

    def test_empty_array_file(self):
        hdfs = SimulatedHDFS(paper_cluster(4))
        hdfs.put_trace_array("t", TraceArray.empty())
        assert hdfs.file_records("t") == 0
        assert len(hdfs.read_trace_array("t")) == 0


class TestNamespace:
    def test_no_clobber(self):
        hdfs = SimulatedHDFS(paper_cluster(4))
        hdfs.put_records("f", [(1, 1)])
        with pytest.raises(FileExistsError):
            hdfs.put_records("f", [(2, 2)])

    def test_missing_file(self):
        hdfs = SimulatedHDFS(paper_cluster(4))
        with pytest.raises(FileNotFoundError):
            hdfs.chunks("ghost")
        with pytest.raises(FileNotFoundError):
            hdfs.delete("ghost")
        hdfs.delete("ghost", missing_ok=True)  # no raise

    def test_ls_and_exists(self):
        hdfs = SimulatedHDFS(paper_cluster(4))
        hdfs.put_records("b", [(1, 1)])
        hdfs.put_records("a", [(1, 1)])
        assert hdfs.ls() == ["a", "b"]
        assert hdfs.exists("a") and not hdfs.exists("c")

    def test_rename(self):
        hdfs = SimulatedHDFS(paper_cluster(4))
        hdfs.put_records("src", [(1, 1)])
        hdfs.rename("src", "dst")
        assert hdfs.exists("dst") and not hdfs.exists("src")
        with pytest.raises(FileNotFoundError):
            hdfs.rename("src", "x")


class TestReplicaPlacement:
    def _multi_rack_cluster(self):
        return paper_cluster(n_workers=8, nodes_per_rack=4)

    def test_three_replicas_distinct_nodes(self):
        hdfs = SimulatedHDFS(self._multi_rack_cluster(), replication=3, seed=0)
        hdfs.put_records("f", [(i, i) for i in range(10)])
        for chunk_id, replicas in hdfs.replica_report("f").items():
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_rack_aware_policy(self):
        cluster = self._multi_rack_cluster()
        hdfs = SimulatedHDFS(cluster, replication=3, seed=0)
        hdfs.put_records("f", [(i, i) for i in range(30)], writer="worker00")
        for replicas in hdfs.replica_report("f").values():
            # First copy local to the writer.
            assert replicas[0] == "worker00"
            racks = [cluster.rack_of(r) for r in replicas]
            # Second replica shares the writer's rack; third is off-rack.
            assert racks[1] == racks[0]
            assert racks[2] != racks[0]

    def test_replication_capped_by_cluster_size(self):
        cluster = ClusterSpec([Node("only", "r")])
        hdfs = SimulatedHDFS(cluster, replication=3)
        hdfs.put_records("f", [(1, 1)])
        (replicas,) = hdfs.replica_report("f").values()
        assert replicas == ("only",)


class TestFailures:
    def test_chunks_survive_single_datanode_loss(self):
        hdfs = SimulatedHDFS(paper_cluster(6), replication=3, seed=3)
        hdfs.put_records("f", [(i, i) for i in range(50)])
        victim = hdfs.chunks("f")[0].replicas[0]
        hdfs.kill_datanode(victim)
        for chunk in hdfs.chunks("f"):
            assert victim not in chunk.replicas
            assert len(chunk.replicas) >= 1
        assert len(hdfs.read_records("f")) == 50

    def test_all_replicas_lost_raises(self):
        hdfs = SimulatedHDFS(paper_cluster(3), replication=2, seed=0)
        hdfs.put_records("f", [(1, 1)])
        for chunk in hdfs.chunks("f"):
            for node in chunk.replicas:
                hdfs.kill_datanode(node)
        with pytest.raises(IOError, match="lost all replicas"):
            hdfs.chunks("f")

    def test_revive(self):
        hdfs = SimulatedHDFS(paper_cluster(3), seed=0)
        hdfs.put_records("f", [(1, 1)])
        node = hdfs.chunks("f")[0].replicas[0]
        hdfs.kill_datanode(node)
        hdfs.revive_datanode(node)
        assert node in hdfs.chunks("f")[0].replicas

    def test_kill_non_datanode_rejected(self):
        hdfs = SimulatedHDFS(paper_cluster(3))
        with pytest.raises(KeyError):
            hdfs.kill_datanode("namenode")

    def test_writes_avoid_dead_nodes(self):
        hdfs = SimulatedHDFS(paper_cluster(4), seed=0)
        hdfs.kill_datanode("worker00")
        hdfs.put_records("f", [(i, i) for i in range(20)])
        for replicas in hdfs.replica_report("f").values():
            assert "worker00" not in replicas


class TestHealing:
    def test_heal_restores_replication_factor(self):
        hdfs = SimulatedHDFS(paper_cluster(8, nodes_per_rack=4), replication=3, seed=2)
        hdfs.put_records("f", [(i, i) for i in range(40)])
        victim = hdfs.chunks("f")[0].replicas[0]
        hdfs.kill_datanode(victim)
        created = hdfs.heal()
        assert created > 0
        for replicas in hdfs.replica_report("f").values():
            alive = [r for r in replicas if r != victim]
            assert len(alive) == 3

    def test_heal_prefers_new_rack(self):
        cluster = paper_cluster(8, nodes_per_rack=4)
        hdfs = SimulatedHDFS(cluster, replication=2, seed=1)
        hdfs.put_records("f", [(1, 1)], writer="worker00")
        (replicas,) = hdfs.replica_report("f").values()
        # Kill the off-rack replica so the survivor is rack-concentrated.
        survivors = [replicas[0]]
        for r in replicas[1:]:
            hdfs.kill_datanode(r)
        hdfs.heal()
        (new_replicas,) = hdfs.replica_report("f").values()
        fresh = [r for r in new_replicas if r not in survivors]
        assert fresh
        survivor_rack = cluster.rack_of(survivors[0])
        assert any(cluster.rack_of(r) != survivor_rack for r in fresh)

    def test_heal_is_idempotent(self):
        hdfs = SimulatedHDFS(paper_cluster(6), replication=3, seed=3)
        hdfs.put_records("f", [(i, i) for i in range(10)])
        hdfs.kill_datanode(hdfs.chunks("f")[0].replicas[0])
        hdfs.heal()
        assert hdfs.heal() == 0

    def test_heal_skips_fully_lost_chunks(self):
        hdfs = SimulatedHDFS(paper_cluster(3), replication=2, seed=0)
        hdfs.put_records("f", [(1, 1)])
        (replicas,) = hdfs.replica_report("f").values()
        for node in replicas:
            hdfs.kill_datanode(node)
        assert hdfs.heal() == 0
        with pytest.raises(IOError):
            hdfs.chunks("f")

    def test_healthy_cluster_heals_nothing(self):
        hdfs = SimulatedHDFS(paper_cluster(6), replication=3, seed=0)
        hdfs.put_records("f", [(i, i) for i in range(10)])
        assert hdfs.heal() == 0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            SimulatedHDFS(paper_cluster(3), chunk_size=0)
        with pytest.raises(ValueError):
            SimulatedHDFS(paper_cluster(3), replication=0)
