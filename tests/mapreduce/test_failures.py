"""Failure injection and retry-policy tests."""

import pytest

from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.failures import FailureInjector, MAX_TASK_ATTEMPTS, TaskFailure
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner


class EchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@pytest.fixture()
def loaded_hdfs():
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=64, seed=0)
    hdfs.put_records("in", [(i, 1) for i in range(12)], record_bytes=16)
    return hdfs


class TestInjector:
    def test_scripted_failure_fires(self):
        inj = FailureInjector(scripted={("map-0000", 1)})
        with pytest.raises(TaskFailure):
            inj.fail_attempt("map-0000", 1)
        inj.fail_attempt("map-0000", 2)  # second attempt survives
        inj.fail_attempt("map-0001", 1)  # other tasks unaffected

    def test_script_failures_helper(self):
        inj = FailureInjector()
        inj.script_failures("map-0003", attempts=2)
        assert ("map-0003", 1) in inj.scripted
        assert ("map-0003", 2) in inj.scripted
        assert ("map-0003", 3) not in inj.scripted

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FailureInjector(probability=1.5)

    def test_probability_deterministic_with_seed(self):
        hits_a = []
        inj = FailureInjector(probability=0.5, seed=7)
        for i in range(20):
            try:
                inj.fail_attempt(f"t{i}", 1)
                hits_a.append(False)
            except TaskFailure:
                hits_a.append(True)
        inj2 = FailureInjector(probability=0.5, seed=7)
        hits_b = []
        for i in range(20):
            try:
                inj2.fail_attempt(f"t{i}", 1)
                hits_b.append(False)
            except TaskFailure:
                hits_b.append(True)
        assert hits_a == hits_b
        assert any(hits_a) and not all(hits_a)


class TestRunnerRetries:
    def test_map_retry_succeeds_and_is_counted(self, loaded_hdfs):
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=2)
        runner = JobRunner(loaded_hdfs, failure_injector=inj)
        res = runner.run(JobSpec("j", EchoMapper, ["in"], "out", reducer=SumReducer))
        assert dict(loaded_hdfs.read_records("out"))  # output produced
        assert res.counters.value(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS) == 2
        assert res.timing.retry_penalty_s > 0

    def test_output_identical_with_and_without_failures(self, loaded_hdfs):
        clean = JobRunner(loaded_hdfs)
        clean.run(JobSpec("j", EchoMapper, ["in"], "clean", reducer=SumReducer))
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=1)
        inj.script_failures("reduce-0000", attempts=1)
        flaky = JobRunner(loaded_hdfs, failure_injector=inj)
        flaky.run(JobSpec("j", EchoMapper, ["in"], "flaky", reducer=SumReducer))
        assert dict(loaded_hdfs.read_records("clean")) == dict(
            loaded_hdfs.read_records("flaky")
        )

    def test_task_exceeding_attempts_fails_job(self, loaded_hdfs):
        inj = FailureInjector()
        inj.script_failures("map-0000", attempts=MAX_TASK_ATTEMPTS)
        runner = JobRunner(loaded_hdfs, failure_injector=inj)
        with pytest.raises(RuntimeError, match="failed"):
            runner.run(JobSpec("j", EchoMapper, ["in"], "out", reducer=SumReducer))

    def test_reduce_retry(self, loaded_hdfs):
        inj = FailureInjector()
        inj.script_failures("reduce-0000", attempts=2)
        runner = JobRunner(loaded_hdfs, failure_injector=inj)
        res = runner.run(
            JobSpec("j", EchoMapper, ["in"], "out", reducer=SumReducer, num_reducers=1)
        )
        assert res.counters.value(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS) == 2

    def test_random_failures_still_converge(self, loaded_hdfs):
        inj = FailureInjector(probability=0.2, seed=11)
        runner = JobRunner(loaded_hdfs, failure_injector=inj, max_attempts=10)
        runner.run(JobSpec("j", EchoMapper, ["in"], "out", reducer=SumReducer))
        assert sum(v for _, v in loaded_hdfs.read_records("out")) == 12

    def test_max_attempts_validated(self, loaded_hdfs):
        with pytest.raises(ValueError):
            JobRunner(loaded_hdfs, max_attempts=0)


class TestDatanodeLossDuringJob:
    def test_job_runs_from_surviving_replicas(self):
        hdfs = SimulatedHDFS(paper_cluster(6), chunk_size=64, replication=3, seed=2)
        hdfs.put_records("in", [(i, 1) for i in range(12)], record_bytes=16)
        victim = hdfs.chunks("in")[0].replicas[0]
        hdfs.kill_datanode(victim)
        runner = JobRunner(hdfs)
        res = runner.run(JobSpec("j", EchoMapper, ["in"], "out", reducer=SumReducer))
        assert sum(v for _, v in hdfs.read_records("out")) == 12
        assert all(a.node != victim for a in res.map_plan.assignments)
