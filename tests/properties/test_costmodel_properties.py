"""Property-based tests: cost-model monotonicity laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.trace import TraceArray
from repro.mapreduce.scheduler import Locality
from repro.mapreduce.simtime import CostModel
from repro.mapreduce.types import ArrayPayload, Chunk


def _chunk(n_traces: int) -> Chunk:
    arr = TraceArray.from_columns(
        ["u"], np.zeros(n_traces), np.zeros(n_traces), np.arange(n_traces, dtype=float)
    )
    return Chunk("c", ArrayPayload(arr, record_bytes=64))


sizes = st.integers(min_value=1, max_value=2_000_000)
factors = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(sizes, sizes, factors)
def test_map_time_monotone_in_chunk_size(n1, n2, factor):
    model = CostModel()
    small, big = sorted((n1, n2))
    t_small = model.map_task_time(_chunk(small), Locality.NODE_LOCAL, factor)
    t_big = model.map_task_time(_chunk(big), Locality.NODE_LOCAL, factor)
    assert t_small <= t_big + 1e-12


@settings(max_examples=60, deadline=None)
@given(sizes, factors)
def test_map_time_monotone_in_locality(n, factor):
    model = CostModel()
    chunk = _chunk(n)
    local = model.map_task_time(chunk, Locality.NODE_LOCAL, factor)
    rack = model.map_task_time(chunk, Locality.RACK_LOCAL, factor)
    remote = model.map_task_time(chunk, Locality.REMOTE, factor)
    assert local <= rack <= remote


@settings(max_examples=60, deadline=None)
@given(sizes, factors, factors)
def test_map_time_monotone_in_cost_factor(n, f1, f2):
    model = CostModel()
    chunk = _chunk(n)
    lo, hi = sorted((f1, f2))
    assert model.map_task_time(chunk, Locality.NODE_LOCAL, lo) <= model.map_task_time(
        chunk, Locality.NODE_LOCAL, hi
    ) + 1e-12


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=2**31))
def test_reduce_time_monotone_in_input(b1, b2):
    model = CostModel()
    lo, hi = sorted((b1, b2))
    assert model.reduce_task_time(lo) <= model.reduce_task_time(hi) + 1e-12


@settings(max_examples=60, deadline=None)
@given(sizes, factors)
def test_all_times_positive(n, factor):
    model = CostModel()
    chunk = _chunk(n)
    for locality in (Locality.NODE_LOCAL, Locality.RACK_LOCAL, Locality.REMOTE):
        assert model.map_task_time(chunk, locality, factor) > 0
    assert model.reduce_task_time(n * 64, factor) > 0
