"""Property-based laws of the aggregation algebra and metadata shuffle."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.aggregation import (
    AggregationReducer,
    CountAggregation,
    coalesce_by_node,
    fold_envelopes,
    preaggregate,
)
from repro.mapreduce.job import HashPartitioner, ReduceContext
from repro.mapreduce.shuffle import shuffle

int_pairs = st.lists(
    st.tuples(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.integers(min_value=-(2**40), max_value=2**40),
    ),
    max_size=120,
)
task_outputs = st.lists(int_pairs, min_size=1, max_size=5)


class _ObjectOnlyCount(CountAggregation):
    def lift_pairs(self, pairs):
        return None


@given(int_pairs)
def test_vectorized_lift_matches_object_loop(pairs):
    """``np.add.reduceat`` over the columnar layout produces the same
    envelopes, counts and counters as the generic lift+merge loop."""
    fast, fast_c = preaggregate(CountAggregation(), pairs, "n1", "map-0000")
    slow, slow_c = preaggregate(_ObjectOnlyCount(), pairs, "n1", "map-0000")
    assert fast == slow
    assert fast_c.to_dict() == slow_c.to_dict()


@given(int_pairs)
def test_preaggregate_conserves_sums_and_records(pairs):
    out, _ = preaggregate(CountAggregation(), pairs, "n1", "map-0000")
    want = Counter()
    for k, v in pairs:
        want[k] += v
    assert {k: e.value for k, e in out} == dict(want)
    assert sum(e.records for _, e in out) == len(pairs)


def _reduce_out(agg, sh):
    reducer = AggregationReducer(agg)
    ctx = ReduceContext(None, None, None, "reduce-0000", "n1")
    for r in range(sh.n_reducers):
        for key, values in sh.partition(r):
            reducer.reduce(key, values, ctx)
    return sorted(ctx.output)


@settings(max_examples=40, deadline=None)
@given(task_outputs, st.integers(min_value=1, max_value=5))
def test_metadata_shuffle_law(outputs, n_reducers):
    """For any per-task integer outputs, reduce over the metadata-only
    shuffle equals reduce over the legacy transport equals the sequential
    per-key sum — and the metadata path never ships more bytes."""
    agg = CountAggregation()
    env_outputs = []
    for i, pairs in enumerate(outputs):
        env_pairs, _ = preaggregate(agg, pairs, f"n{i % 3}", f"map-{i:04d}")
        env_outputs.append(env_pairs)
    meta = shuffle(env_outputs, HashPartitioner(), n_reducers, aggregation=agg)
    legacy = shuffle(
        env_outputs, HashPartitioner(), n_reducers,
        aggregation=agg, metadata_only=False,
    )
    want = Counter()
    for pairs in outputs:
        for k, v in pairs:
            want[k] += v
    sequential = sorted(want.items())
    assert _reduce_out(agg, meta) == _reduce_out(agg, legacy) == sequential
    if any(env_outputs):
        assert meta.preagg is not None
        assert meta.shuffled_bytes <= legacy.shuffled_bytes
        assert meta.preagg["raw_records"] == sum(len(p) for p in outputs)


@settings(max_examples=40, deadline=None)
@given(task_outputs, st.randoms(use_true_random=False))
def test_fold_order_invariance_for_exact_monoid(outputs, rnd):
    """Integer addition is exactly associative: any arrival order and any
    transport coalescing folds to the same per-key totals."""
    agg = CountAggregation()
    envelopes = []
    for i, pairs in enumerate(outputs):
        env_pairs, _ = preaggregate(agg, pairs, f"n{i % 2}", f"map-{i:04d}")
        envelopes.extend(env_pairs)
    by_key: dict[int, list] = {}
    for key, env in envelopes:
        by_key.setdefault(key, []).append(env)
    for key, envs in by_key.items():
        want = fold_envelopes(agg, envs)
        shuffled = list(envs)
        rnd.shuffle(shuffled)
        assert fold_envelopes(agg, shuffled) == want
        assert fold_envelopes(agg, coalesce_by_node(agg, shuffled)) == want
