"""Property-based tests: down-sampling invariants (Section V)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sampling import SamplingTechnique, sample_array
from repro.geo.trace import TraceArray


@st.composite
def trace_arrays(draw):
    n = draw(st.integers(min_value=0, max_value=300))
    ts = draw(
        st.lists(
            st.floats(min_value=0, max_value=100_000, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    users = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    if n == 0:
        return TraceArray.empty()
    return TraceArray.from_columns(
        users,
        np.linspace(39.0, 41.0, n),
        np.linspace(116.0, 117.0, n),
        np.array(ts),
    )


windows = st.floats(min_value=1.0, max_value=10_000.0)
techniques = st.sampled_from([SamplingTechnique.UPPER, SamplingTechnique.MIDDLE])


@settings(max_examples=80, deadline=None)
@given(trace_arrays(), windows, techniques)
def test_output_is_subset_of_input(arr, window, technique):
    out = sample_array(arr, window, technique)
    in_set = set(zip(arr.timestamp.tolist(), arr.latitude.tolist()))
    out_set = set(zip(out.timestamp.tolist(), out.latitude.tolist()))
    assert out_set <= in_set


@settings(max_examples=80, deadline=None)
@given(trace_arrays(), windows, techniques)
def test_never_grows(arr, window, technique):
    out = sample_array(arr, window, technique)
    assert len(out) <= len(arr)


@settings(max_examples=80, deadline=None)
@given(trace_arrays(), windows, techniques)
def test_one_per_user_window(arr, window, technique):
    out = sample_array(arr, window, technique)
    seen = set()
    for user, ts in zip(out.user_ids(), out.timestamp):
        key = (user, int(ts // window))
        assert key not in seen, "two representatives in one window"
        seen.add(key)


@settings(max_examples=80, deadline=None)
@given(trace_arrays(), windows, techniques)
def test_every_occupied_window_represented(arr, window, technique):
    out = sample_array(arr, window, technique)
    want = {
        (user, int(ts // window))
        for user, ts in zip(arr.user_ids(), arr.timestamp)
    }
    got = {
        (user, int(ts // window))
        for user, ts in zip(out.user_ids(), out.timestamp)
    }
    assert got == want


@settings(max_examples=50, deadline=None)
@given(trace_arrays(), windows)
def test_deterministic(arr, window):
    a = sample_array(arr, window, "upper")
    b = sample_array(arr, window, "upper")
    assert np.array_equal(a.timestamp, b.timestamp)
