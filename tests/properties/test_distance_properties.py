"""Property-based tests: distance metric axioms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import (
    euclidean,
    haversine_km,
    manhattan,
    squared_euclidean,
)

lat = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
lon = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
coord = st.tuples(lat, lon)


@given(coord)
def test_haversine_identity(p):
    assert haversine_km(p[0], p[1], p[0], p[1]) == 0.0


@given(coord, coord)
def test_haversine_symmetry(p, q):
    d1 = haversine_km(p[0], p[1], q[0], q[1])
    d2 = haversine_km(q[0], q[1], p[0], p[1])
    assert np.isclose(d1, d2, rtol=1e-12, atol=1e-12)


@given(coord, coord)
def test_haversine_nonnegative_and_bounded(p, q):
    d = haversine_km(p[0], p[1], q[0], q[1])
    assert 0.0 <= d <= 6371.01 * np.pi


@settings(max_examples=200)
@given(coord, coord, coord)
def test_haversine_triangle_inequality(p, q, r):
    pq = haversine_km(p[0], p[1], q[0], q[1])
    qr = haversine_km(q[0], q[1], r[0], r[1])
    pr = haversine_km(p[0], p[1], r[0], r[1])
    assert pr <= pq + qr + 1e-6


@given(coord, coord)
def test_euclidean_is_sqrt_of_squared(p, q):
    d = euclidean(p[0], p[1], q[0], q[1])
    d2 = squared_euclidean(p[0], p[1], q[0], q[1])
    assert np.isclose(d * d, d2, rtol=1e-9, atol=1e-12)


@given(coord, coord, coord)
def test_squared_euclidean_preserves_nearest(p, a, b):
    """The order relationship the paper relies on: argmin under squared
    Euclidean equals argmin under Euclidean."""
    da = euclidean(p[0], p[1], a[0], a[1])
    db = euclidean(p[0], p[1], b[0], b[1])
    sa = squared_euclidean(p[0], p[1], a[0], a[1])
    sb = squared_euclidean(p[0], p[1], b[0], b[1])
    assert (da < db) == (sa < sb) or np.isclose(da, db)


@given(coord, coord)
def test_manhattan_dominates_euclidean(p, q):
    m = manhattan(p[0], p[1], q[0], q[1])
    e = euclidean(p[0], p[1], q[0], q[1])
    assert m >= e - 1e-12
