"""Property-based tests: Mobility Markov Chain invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.mmc import build_mmc, visit_sequence
from repro.geo.trace import TraceArray

POIS = np.array(
    [[39.90, 116.40], [39.95, 116.50], [39.85, 116.30], [40.00, 116.60]]
)


@st.composite
def visit_trails(draw):
    seq = draw(st.lists(st.integers(0, 3), min_size=0, max_size=60))
    lat, lon, ts = [], [], []
    t = 0.0
    for s in seq:
        lat.append(POIS[s, 0])
        lon.append(POIS[s, 1])
        ts.append(t)
        t += 600.0
    if not seq:
        return TraceArray.empty(), seq
    return (
        TraceArray.from_columns(["u"], np.array(lat), np.array(lon), np.array(ts)),
        seq,
    )


@settings(max_examples=100, deadline=None)
@given(visit_trails(), st.floats(min_value=0.0, max_value=2.0))
def test_rows_always_stochastic(data, smoothing):
    arr, seq = data
    mmc = build_mmc(arr, POIS, smoothing=smoothing)
    assert np.allclose(mmc.transitions.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(mmc.transitions >= 0)


@settings(max_examples=100, deadline=None)
@given(visit_trails())
def test_visit_sequence_collapses_repeats(data):
    arr, seq = data
    got = visit_sequence(arr, POIS)
    # Expected: seq with consecutive duplicates collapsed.
    want = [s for i, s in enumerate(seq) if i == 0 or s != seq[i - 1]]
    assert list(got) == want


@settings(max_examples=60, deadline=None)
@given(visit_trails())
def test_stationary_distribution_is_probability_vector(data):
    arr, _ = data
    mmc = build_mmc(arr, POIS, smoothing=0.05)
    pi = mmc.stationary_distribution()
    assert np.isclose(pi.sum(), 1.0, atol=1e-6)
    assert np.all(pi >= -1e-12)
    # Fixed point property.
    assert np.allclose(pi @ mmc.transitions, pi, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(visit_trails())
def test_visit_counts_match_sequence(data):
    arr, seq = data
    mmc = build_mmc(arr, POIS)
    collapsed = [s for i, s in enumerate(seq) if i == 0 or s != seq[i - 1]]
    want = np.bincount(collapsed, minlength=4) if collapsed else np.zeros(4)
    assert np.array_equal(mmc.visit_counts, want)
