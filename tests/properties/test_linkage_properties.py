"""Property-based tests: MR linkage attack ≡ serial reference.

Two families of invariants:

* end-to-end: on random corpora the MapReduce attack reproduces the
  tie-break-fixed serial reference byte for byte on every backend and
  chunking, and the blocking audit stays exact;
* geometry: the candidate-blocking cover never drops a point with
  spatial evidence — for any two points within the match distance, the
  cover of one contains the cell of the other.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.linkage_mr import (
    SYNTH_ATTACK_PARAMS,
    blocking_cell,
    cover_cells,
    deanonymization_attack_reference,
    linkage_signature,
    run_linkage_attack,
    synthetic_linkage_corpus,
)
from repro.geo.distance import haversine_m
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner

_R_M = 6_371_008.8


@settings(max_examples=8, deadline=None)
@given(
    n_users=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    backend=st.sampled_from(BACKENDS),
    chunk_traces=st.sampled_from([11, 64, 100_000]),
)
def test_mr_attack_equals_serial_reference(n_users, seed, backend, chunk_traces):
    train, target, truth = synthetic_linkage_corpus(n_users, seed=seed)
    reference = deanonymization_attack_reference(
        train, target, truth, params=SYNTH_ATTACK_PARAMS
    )
    hdfs = SimulatedHDFS(paper_cluster(3), chunk_size=64 * chunk_traces, seed=0)
    hdfs.put_trace_array("input/train", train, record_bytes=64)
    hdfs.put_trace_array("input/target", target, record_bytes=64)
    runner = JobRunner(hdfs, executor=backend)
    try:
        outcome = run_linkage_attack(
            runner,
            "input/train",
            "input/target",
            truth,
            params=SYNTH_ATTACK_PARAMS,
        )
    finally:
        runner.close()
    assert outcome.signature() == linkage_signature(reference)
    assert outcome.result.linkage == reference.linkage
    assert outcome.result.scores == reference.scores
    # Blocking never drops a pair with spatial evidence.
    assert outcome.blocking_exact in (True, None)


@settings(max_examples=300, deadline=None)
@given(
    lat=st.floats(min_value=-89.5, max_value=89.5),
    lon=st.floats(min_value=-180.0, max_value=180.0),
    bearing=st.floats(min_value=0.0, max_value=2.0 * math.pi),
    frac=st.floats(min_value=0.0, max_value=1.0),
    d=st.sampled_from([100.0, 500.0, 2_000.0]),
)
def test_cover_never_drops_a_point_within_match_distance(lat, lon, bearing, frac, d):
    # Walk up to the match distance from (lat, lon) along any bearing.
    dist = frac * d
    dlat = math.degrees(dist * math.cos(bearing) / _R_M)
    plat = lat + dlat
    if abs(plat) > 89.9:
        return  # degenerate pole geometry is collapsed to one cell anyway
    dlon = math.degrees(
        dist * math.sin(bearing)
        / (_R_M * max(math.cos(math.radians(lat)), 1e-9))
    )
    plon = lon + dlon
    if plon > 180.0:
        plon -= 360.0
    if plon < -180.0:
        plon += 360.0
    if haversine_m(lat, lon, plat, plon) > d:
        return  # the planar walk overshot the haversine ball
    assert blocking_cell(plat, plon, d) in cover_cells(lat, lon, d)
    # Symmetric direction: the shuffle co-locates the pair whichever
    # side plays "training" (cover) and whichever plays "target" (cell).
    assert blocking_cell(lat, lon, d) in cover_cells(plat, plon, d)
