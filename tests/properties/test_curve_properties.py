"""Property-based tests: space-filling curve invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.spacefilling import (
    hilbert_key,
    hilbert_xy_from_key,
    normalize_to_grid,
    zorder_key,
)

orders = st.integers(min_value=1, max_value=8)


@st.composite
def grid_points(draw):
    order = draw(orders)
    n_cells = 1 << order
    n = draw(st.integers(min_value=1, max_value=64))
    xs = draw(
        st.lists(st.integers(0, n_cells - 1), min_size=n, max_size=n)
    )
    ys = draw(
        st.lists(st.integers(0, n_cells - 1), min_size=n, max_size=n)
    )
    return order, np.array(xs, dtype=float), np.array(ys, dtype=float)


@given(grid_points())
def test_hilbert_key_in_range(data):
    order, xs, ys = data
    n_cells = 1 << order
    bounds = (0.0, 0.0, float(n_cells - 1), float(n_cells - 1))
    keys = hilbert_key(xs, ys, bounds, order)
    assert np.all(keys < n_cells * n_cells)


@given(grid_points())
def test_hilbert_roundtrip(data):
    order, xs, ys = data
    n_cells = 1 << order
    bounds = (0.0, 0.0, float(n_cells - 1), float(n_cells - 1))
    gx, gy = normalize_to_grid(xs, ys, bounds, order)
    keys = hilbert_key(xs, ys, bounds, order)
    bx, by = hilbert_xy_from_key(keys, order)
    assert np.array_equal(bx, gx)
    assert np.array_equal(by, gy)


@given(grid_points())
def test_zorder_injective_on_distinct_cells(data):
    order, xs, ys = data
    n_cells = 1 << order
    bounds = (0.0, 0.0, float(n_cells - 1), float(n_cells - 1))
    keys = zorder_key(xs, ys, bounds, order)
    cells = set(zip(xs.astype(int).tolist(), ys.astype(int).tolist()))
    assert len(np.unique(keys)) == len(cells)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-80, max_value=80, allow_nan=False),
            st.floats(min_value=-170, max_value=170, allow_nan=False),
        ),
        min_size=2,
        max_size=50,
    )
)
def test_curves_accept_arbitrary_float_coordinates(points):
    pts = np.array(points)
    bounds = (
        float(pts[:, 0].min()),
        float(pts[:, 1].min()),
        float(pts[:, 0].max()),
        float(pts[:, 1].max()),
    )
    for curve in (zorder_key, hilbert_key):
        keys = curve(pts[:, 0], pts[:, 1], bounds, 10)
        assert len(keys) == len(pts)
        assert np.all(keys <= np.uint64((1 << 20) - 1) * np.uint64(1 << 20))
