"""Property-based tests: GeoLife PLT line round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.geolife import (
    format_plt_line,
    ole_days_to_unix,
    parse_plt_line,
    unix_to_ole_days,
)

lat = st.floats(min_value=-89.999, max_value=89.999, allow_nan=False)
lon = st.floats(min_value=-179.999, max_value=179.999, allow_nan=False)
alt = st.floats(min_value=-777.0, max_value=30_000.0, allow_nan=False)
# Timestamps within GeoLife's plausible era (1990..2035).
ts = st.floats(min_value=631_152_000.0, max_value=2_051_222_400.0, allow_nan=False)


@settings(max_examples=300)
@given(lat, lon, alt, ts)
def test_line_roundtrip(latitude, longitude, altitude, timestamp):
    line = format_plt_line(latitude, longitude, altitude, timestamp)
    got_lat, got_lon, got_alt, got_ts = parse_plt_line(line)
    assert got_lat == round(latitude, 6) or abs(got_lat - latitude) <= 5e-7
    assert abs(got_lon - longitude) <= 5e-7
    assert got_alt == round(altitude)
    # The days field carries ~millisecond precision at this era.
    assert abs(got_ts - timestamp) <= 0.01


@settings(max_examples=300)
@given(ts)
def test_epoch_conversion_roundtrip(timestamp):
    assert abs(float(ole_days_to_unix(unix_to_ole_days(timestamp))) - timestamp) < 1e-4


@settings(max_examples=200)
@given(lat, lon, alt, ts)
def test_line_shape(latitude, longitude, altitude, timestamp):
    line = format_plt_line(latitude, longitude, altitude, timestamp)
    parts = line.split(",")
    assert len(parts) == 7
    assert parts[2] == "0"  # the meaningless third field
    assert len(parts[5].split("-")) == 3  # yyyy-mm-dd
    assert len(parts[6].split(":")) == 3  # HH:MM:SS
