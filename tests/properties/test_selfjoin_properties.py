"""Property-based tests: the radius self-join equals per-point R-tree
queries for arbitrary point sets and radii."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.rtree import RTree
from repro.index.selfjoin import radius_self_join

point_sets = st.lists(
    st.tuples(
        st.floats(min_value=35.0, max_value=45.0, allow_nan=False),
        st.floats(min_value=110.0, max_value=120.0, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)
radii = st.floats(min_value=0.0, max_value=100_000.0, allow_nan=False)


@settings(max_examples=80, deadline=None)
@given(point_sets, radii)
def test_equals_rtree_queries(points, radius):
    pts = np.array(points)
    hoods = radius_self_join(pts, radius)
    tree = RTree.bulk_load(pts)
    for i, hood in enumerate(hoods):
        want = tree.query_radius(pts[i, 0], pts[i, 1], radius)
        assert np.array_equal(hood, want)


@settings(max_examples=80, deadline=None)
@given(point_sets, radii)
def test_batch_equals_per_point_queries(points, radius):
    pts = np.array(points)
    tree = RTree.bulk_load(pts)
    batch = tree.query_radius_batch(pts, radius)
    assert len(batch) == len(pts)
    for i, got in enumerate(batch):
        want = tree.query_radius(pts[i, 0], pts[i, 1], radius)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


@settings(max_examples=80, deadline=None)
@given(point_sets, st.floats(min_value=1.0, max_value=50_000.0))
def test_reflexive_and_symmetric(points, radius):
    pts = np.array(points)
    hoods = radius_self_join(pts, radius)
    sets = [set(h.tolist()) for h in hoods]
    for i, s in enumerate(sets):
        assert i in s
        for j in s:
            assert i in sets[j]


@settings(max_examples=40, deadline=None)
@given(point_sets, st.floats(min_value=1.0, max_value=10_000.0))
def test_monotone_in_radius(points, radius):
    pts = np.array(points)
    small = radius_self_join(pts, radius)
    big = radius_self_join(pts, radius * 2)
    for s, b in zip(small, big):
        assert set(s.tolist()) <= set(b.tolist())
