"""Property-based tests: sanitizer contracts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.geo.trace import TraceArray
from repro.sanitization.aggregation import SpatialAggregator
from repro.sanitization.masks import GaussianMask, RoundingMask, UniformNoiseMask


@st.composite
def arrays(draw):
    n = draw(st.integers(min_value=0, max_value=150))
    if n == 0:
        return TraceArray.empty()
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return TraceArray.from_columns(
        ["u"],
        39.9 + rng.normal(0, 0.02, n),
        116.4 + rng.normal(0, 0.02, n),
        np.sort(rng.uniform(0, 1e5, n)),
    )


masks = st.one_of(
    st.builds(GaussianMask, st.floats(0.0, 500.0), st.integers(0, 100)),
    st.builds(UniformNoiseMask, st.floats(0.0, 500.0), st.integers(0, 100)),
    st.builds(RoundingMask, st.floats(1.0, 2000.0)),
    st.builds(SpatialAggregator, st.floats(1.0, 2000.0)),
)


@settings(max_examples=60, deadline=None)
@given(arrays(), masks)
def test_sanitizers_preserve_counts_and_metadata(arr, sanitizer):
    out = sanitizer.sanitize_array(arr)
    assert len(out) == len(arr)
    assert np.array_equal(out.timestamp, arr.timestamp)
    assert np.array_equal(out.user_index, arr.user_index)


@settings(max_examples=60, deadline=None)
@given(arrays(), masks)
def test_sanitizers_keep_coordinates_valid(arr, sanitizer):
    out = sanitizer.sanitize_array(arr)
    assert np.all(out.latitude >= -90.0) and np.all(out.latitude <= 90.0)
    assert np.all(out.longitude >= -180.0) and np.all(out.longitude <= 180.0)


@settings(max_examples=40, deadline=None)
@given(arrays(), st.floats(1.0, 300.0), st.integers(0, 50))
def test_uniform_mask_respects_radius_bound(arr, radius, seed):
    out = UniformNoiseMask(radius, seed).sanitize_array(arr)
    if len(arr):
        d = np.asarray(
            haversine_m(arr.latitude, arr.longitude, out.latitude, out.longitude)
        )
        assert d.max() <= radius * 1.02


@settings(max_examples=40, deadline=None)
@given(arrays(), st.integers(0, 20), st.integers(1, 149))
def test_gaussian_mask_chunk_invariance(arr, seed, cut):
    """The MapReduce contract: per-chunk noise equals whole-array noise."""
    mask = GaussianMask(100.0, seed)
    whole = mask.sanitize_array(arr)
    cut = min(cut, len(arr))
    a = mask.sanitize_array(arr[:cut])
    b = mask.sanitize_array(arr[cut:])
    recombined = np.concatenate([a.latitude, b.latitude])
    assert np.allclose(whole.latitude, recombined)
