"""Property-based tests: R-tree equals brute force on arbitrary data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.distance import haversine_m
from repro.index.rtree import Rect, RTree

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=39.0, max_value=41.0, allow_nan=False),
        st.floats(min_value=115.0, max_value=118.0, allow_nan=False),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(points_strategy, st.integers(min_value=2, max_value=16))
def test_bulk_load_invariants(points, fanout):
    pts = np.array(points)
    tree = RTree.bulk_load(pts, max_entries=fanout)
    tree.check_invariants()
    assert len(tree) == len(pts)


@settings(max_examples=60, deadline=None)
@given(
    points_strategy,
    st.floats(min_value=39.0, max_value=41.0),
    st.floats(min_value=115.0, max_value=118.0),
    st.floats(min_value=0.0, max_value=50_000.0),
)
def test_radius_query_equals_brute_force(points, qlat, qlon, radius):
    pts = np.array(points)
    tree = RTree.bulk_load(pts)
    got = set(tree.query_radius(qlat, qlon, radius).tolist())
    d = np.asarray(haversine_m(qlat, qlon, pts[:, 0], pts[:, 1]))
    want = set(np.flatnonzero(d <= radius).tolist())
    assert got == want


@settings(max_examples=60, deadline=None)
@given(
    points_strategy,
    st.floats(min_value=39.0, max_value=41.0),
    st.floats(min_value=115.0, max_value=118.0),
    st.floats(min_value=0.0, max_value=2.0),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_rect_query_equals_brute_force(points, lo_lat, lo_lon, dlat, dlon):
    pts = np.array(points)
    tree = RTree.bulk_load(pts)
    rect = Rect(lo_lat, lo_lon, lo_lat + dlat, lo_lon + dlon)
    got = set(tree.query_rect(rect).tolist())
    want = set(
        np.flatnonzero(
            (pts[:, 0] >= rect.min_lat)
            & (pts[:, 0] <= rect.max_lat)
            & (pts[:, 1] >= rect.min_lon)
            & (pts[:, 1] <= rect.max_lon)
        ).tolist()
    )
    assert got == want


@settings(max_examples=40, deadline=None)
@given(points_strategy, st.integers(min_value=1, max_value=20))
def test_knn_matches_brute_force(points, k):
    pts = np.array(points)
    tree = RTree.bulk_load(pts)
    got = [i for i, _ in tree.knn(40.0, 116.5, k)]
    d = np.asarray(haversine_m(40.0, 116.5, pts[:, 0], pts[:, 1]))
    want_dists = np.sort(d)[: min(k, len(pts))]
    got_dists = np.sort(d[got])
    # Compare by distance (ids may tie); sets of distances must agree.
    assert np.allclose(got_dists, want_dists)


@settings(max_examples=30, deadline=None)
@given(points_strategy)
def test_insert_path_equals_bulk_load(points):
    pts = np.array(points)
    dynamic = RTree(max_entries=6)
    for i, p in enumerate(pts):
        dynamic.insert(i, p[0], p[1])
    dynamic.check_invariants()
    bulk = RTree.bulk_load(pts, max_entries=6)
    rect = Rect(39.5, 115.5, 40.5, 117.5)
    assert set(dynamic.query_rect(rect).tolist()) == set(bulk.query_rect(rect).tolist())
