"""Equivalence under failure: chaos must be invisible to the algorithms.

The paper's correctness story — "the MapReduce adaptation computes what
GEPETO computes" — has to survive infrastructure faults, because a real
Hadoop deployment absorbs them routinely.  hypothesis draws randomized
seeded :class:`ChaosSchedule`\\ s (probabilistic knobs *and* scripted
faults over fault kind x phase x task index) and asserts that every
driver's output is **byte-identical** to its no-fault run; separate
tests pin the no-fault MR run to the sequential GEPETO baseline, closing
the chain sequential == MR == MR-under-chaos.

Runs are expensive (each example is a full simulated deployment), so the
example counts are deliberately small; the schedules are seeded, so any
found counterexample replays exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.djcluster import DJClusterParams, preprocess_array
from repro.algorithms.kmeans import kmeans_sequential
from repro.algorithms.sampling import sample_array
from repro.attacks.mmc import build_mmc
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.chaos import DRIVERS, _run_once, default_schedule
from repro.mapreduce.config import BACKENDS
from repro.mapreduce.failures import ChaosSchedule, Fault, FaultKind, JobFailedError

# Each hypothesis example is a full simulated deployment, and every test
# now runs once per execution backend — keep the counts small.
MAX_EXAMPLES = 4


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=3, days=1, seed=42))
    return dataset.flat().sort_by_time()


@pytest.fixture(scope="module")
def context(corpus):
    return {"poi_coords": kmeans_sequential(corpus.coordinates(), k=4, seed=0).centroids}


@pytest.fixture(scope="module")
def clean_signatures(corpus, context):
    """Fingerprint of every driver's fault-free run, computed once."""
    return {
        name: _run_once(driver, corpus, context, 3, 64 * 1024, None).signature
        for name, driver in DRIVERS.items()
    }


# -- schedule strategies -----------------------------------------------------

def _task_scoped_fault(kind):
    return st.builds(
        Fault,
        kind=st.just(kind),
        task=st.tuples(
            st.sampled_from(["map", "reduce"]), st.integers(0, 8)
        ).map(lambda p: f"{p[0]}-{p[1]:04d}"),
        attempt=st.integers(1, 3),
    )


scripted_faults = st.lists(
    st.one_of(
        _task_scoped_fault(FaultKind.TASK_CRASH),
        _task_scoped_fault(FaultKind.CACHE_LOAD),
        st.builds(
            Fault,
            kind=st.just(FaultKind.SHUFFLE_FETCH),
            task=st.integers(0, 8).map(lambda i: f"reduce-{i:04d}"),
        ),
        st.builds(
            Fault,
            kind=st.just(FaultKind.SLOW_NODE),
            node=st.integers(0, 2).map(lambda i: f"worker{i:02d}"),
        ),
    ),
    max_size=4,
).map(tuple)

schedules = st.builds(
    ChaosSchedule,
    seed=st.integers(0, 2**32 - 1),
    crash_prob=st.sampled_from([0.0, 0.1, 0.25]),
    cache_load_prob=st.sampled_from([0.0, 0.1]),
    shuffle_fetch_prob=st.sampled_from([0.0, 0.2]),
    slow_node_prob=st.sampled_from([0.0, 0.3]),
    node_loss_prob=st.sampled_from([0.0, 1.0]),
    faults=scripted_faults,
)


def _assert_equivalent(name, corpus, context, clean_signatures, schedule, backend):
    # Two workers force real pool dispatch on threads/processes even on a
    # single-core runner (the backends short-circuit inline at 1 worker).
    workers = None if backend == "serial" else 2
    try:
        artifacts = _run_once(
            DRIVERS[name], corpus, context, 3, 64 * 1024, schedule,
            executor=backend, max_workers=workers,
        )
    except JobFailedError as err:
        # An aggressive schedule may legitimately exhaust a task's retry
        # budget — like Hadoop after max.attempts.  The contract is then a
        # *clean* failure carrying the full chain, never silent corruption.
        assert len(err.failures) == err.max_attempts
        assert err.failure_chain
        return
    assert artifacts.signature == clean_signatures[name], (
        f"{name} output diverged under chaos schedule "
        f"[{schedule.describe()}] on backend {backend}"
    )


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(schedule=schedules)
def test_sampling_equivalent_under_chaos(
    corpus, context, clean_signatures, backend, schedule
):
    _assert_equivalent("sampling", corpus, context, clean_signatures, schedule, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(schedule=schedules)
def test_djcluster_preprocessing_equivalent_under_chaos(
    corpus, context, clean_signatures, backend, schedule
):
    _assert_equivalent("djcluster", corpus, context, clean_signatures, schedule, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(schedule=schedules)
def test_mmc_equivalent_under_chaos(
    corpus, context, clean_signatures, backend, schedule
):
    _assert_equivalent("mmc", corpus, context, clean_signatures, schedule, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=2, deadline=None)  # iterative: the slow driver
@given(schedule=schedules)
def test_kmeans_equivalent_under_chaos(
    corpus, context, clean_signatures, backend, schedule
):
    _assert_equivalent("kmeans", corpus, context, clean_signatures, schedule, backend)


# -- cross-backend byte-identity ---------------------------------------------
#
# The property tests above check output fingerprints per backend; this
# pins the *whole observable execution* — every traced event dict, the
# simulated makespan and the output signature — to be byte-identical
# across serial, threaded and process execution under one fault-heavy
# fixed schedule.

@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_backends_byte_identical_under_fixed_chaos(name, corpus, context):
    schedule = default_schedule(seed=3, node_loss=True)
    runs = {}
    for backend in BACKENDS:
        workers = None if backend == "serial" else 2
        runs[backend] = _run_once(
            DRIVERS[name], corpus, context, 3, 64 * 1024, schedule,
            executor=backend, max_workers=workers,
        )
    base = runs["serial"]
    for backend in BACKENDS[1:]:
        got = runs[backend]
        assert got.signature == base.signature, backend
        assert got.makespan_s == base.makespan_s, backend
        assert got.events == base.events, backend


# -- sequential baselines ----------------------------------------------------
#
# The chaos tests above prove MR == MR-under-chaos; these pin the other
# end of the chain, MR == sequential GEPETO, on the same corpus.  For the
# map-only jobs the comparison uses a single-chunk layout (the bounded
# chunk-boundary artifact of map-only jobs is quantified elsewhere); the
# MMC decomposition is exact for any chunking.

def _single_chunk_runner(corpus, chaos=None):
    from repro.mapreduce.chaos import _fresh_runner

    return _fresh_runner(corpus, 3, 1 << 30, chaos)


def test_sampling_matches_sequential_even_under_chaos(corpus):
    from repro.algorithms.sampling import run_sampling_job

    expected = sample_array(corpus, window_s=600.0)
    runner = _single_chunk_runner(corpus, default_schedule(seed=5))
    result = run_sampling_job(runner, "input/traces", "out/s", window_s=600.0)
    got = runner.hdfs.read_trace_array(result.output_path)
    assert got.users == expected.users
    assert np.array_equal(got.timestamp, expected.timestamp)
    assert np.array_equal(got.latitude, expected.latitude)
    assert np.array_equal(got.longitude, expected.longitude)


def test_djcluster_preprocessing_matches_sequential_even_under_chaos(corpus):
    from repro.algorithms.djcluster import run_preprocessing_pipeline

    params = DJClusterParams()
    _, expected = preprocess_array(corpus, params)
    runner = _single_chunk_runner(corpus, default_schedule(seed=5))
    pipeline = run_preprocessing_pipeline(runner, "input/traces", params, workdir="tmp/dj")
    got = runner.hdfs.read_trace_array(pipeline.output_path)
    assert len(got) == len(expected)
    assert np.array_equal(got.timestamp, expected.timestamp)
    assert np.array_equal(got.latitude, expected.latitude)


def test_mmc_matches_sequential_even_under_chaos(corpus, context):
    from repro.attacks.mmc_mr import run_mmc_mapreduce

    runner = _single_chunk_runner(corpus, default_schedule(seed=5, node_loss=True))
    models = run_mmc_mapreduce(
        runner, "input/traces", context["poi_coords"], output_path="tmp/mmc"
    )
    for user, chain in models.items():
        mask = np.array(corpus.users)[corpus.user_index] == user
        expected = build_mmc(corpus[np.flatnonzero(mask)], context["poi_coords"])
        assert np.array_equal(chain.transitions, expected.transitions), user
        assert np.array_equal(chain.visit_counts, expected.visit_counts), user


def test_kmeans_matches_sequential_baseline(corpus):
    from repro.algorithms.kmeans import run_kmeans_mapreduce

    points = corpus.coordinates()
    init = points[:3].copy()
    expected = kmeans_sequential(
        points, k=3, max_iter=3, initial_centroids=init
    )
    runner = _single_chunk_runner(corpus, default_schedule(seed=5))
    got = run_kmeans_mapreduce(
        runner, "input/traces", k=3, max_iter=3,
        initial_centroids=init, workdir="tmp/km",
    )
    # Float sums associate differently across the combiner tree: allclose,
    # not byte equality, is the right contract against the sequential code.
    assert np.allclose(got.centroids, expected.centroids)
    assert got.n_iterations == expected.n_iterations
