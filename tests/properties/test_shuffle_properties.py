"""Property-based tests: shuffle/sort and MapReduce-vs-sequential laws."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import HashPartitioner, JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.shuffle import group_sorted, shuffle

pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50), st.integers()),
    max_size=200,
)


@given(pairs_strategy)
def test_group_sorted_loses_nothing(pairs):
    groups = group_sorted(pairs)
    regrouped = [(k, v) for k, vs in groups for v in vs]
    assert Counter(regrouped) == Counter(pairs)


@given(pairs_strategy)
def test_group_sorted_keys_unique_and_sorted(pairs):
    groups = group_sorted(pairs)
    keys = [k for k, _ in groups]
    assert len(keys) == len(set(keys))
    assert keys == sorted(keys)


@given(st.lists(pairs_strategy, max_size=5), st.integers(min_value=1, max_value=8))
def test_shuffle_conserves_records(map_outputs, n_reducers):
    result = shuffle(map_outputs, HashPartitioner(), n_reducers)
    delivered = Counter(
        (k, v) for part in result.partitions for k, vs in part for v in vs
    )
    sent = Counter(p for out in map_outputs for p in out)
    assert delivered == sent


@given(st.lists(pairs_strategy, max_size=5), st.integers(min_value=1, max_value=8))
def test_shuffle_key_disjointness(map_outputs, n_reducers):
    """No key appears in two partitions: the defining shuffle contract."""
    result = shuffle(map_outputs, HashPartitioner(), n_reducers)
    seen: dict[int, int] = {}
    for pid, part in enumerate(result.partitions):
        for k, _ in part:
            assert seen.setdefault(k, pid) == pid
    assert sum(result.partition_bytes) == result.shuffled_bytes


class _TokenMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 7, 1)


class _CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=150),
    st.integers(min_value=1, max_value=5),
)
def test_mapreduce_equals_sequential_histogram(values, n_reducers):
    """Full-engine law: MR histogram == sequential histogram, for any
    input and any reducer count."""
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=128, seed=0)
    hdfs.put_records("in", list(enumerate(values)), record_bytes=16)
    runner = JobRunner(hdfs)
    runner.run(
        JobSpec("hist", _TokenMapper, ["in"], "out", reducer=_CountReducer, num_reducers=n_reducers)
    )
    got = dict(hdfs.read_records("out"))
    want = Counter(v % 7 for v in values)
    assert got == dict(want)
