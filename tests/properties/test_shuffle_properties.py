"""Property-based tests: shuffle/sort and MapReduce-vs-sequential laws."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import (
    ConstantKeyPartitioner,
    HashPartitioner,
    JobSpec,
    Mapper,
    Reducer,
)
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.shuffle import (
    _group_sorted_generic,
    _shuffle_fast,
    _shuffle_generic,
    group_sorted,
    shuffle,
)
from repro.mapreduce.spill import ShuffleSpiller, SpillDirectory, SpillStats

pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50), st.integers()),
    max_size=200,
)

# Every scalar key population the fast paths discriminate on: bools,
# arbitrary-width ints, floats including NaN/inf/-0.0, strings including
# NUL bytes — plus their mixtures.
scalar_key = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(alphabet=st.characters(codec="utf-8"), max_size=6),
)
scalar_pairs = st.lists(st.tuples(scalar_key, st.integers()), max_size=120)

# Homogeneous streams drive the vectorized paths directly (a mixed draw
# from ``scalar_key`` almost always falls back before exercising them).
float_pairs = st.lists(
    st.tuples(
        st.floats(allow_nan=True, allow_infinity=True, width=64), st.integers()
    ),
    max_size=120,
)
int_pairs = st.lists(
    st.tuples(st.integers(min_value=-(2**70), max_value=2**70), st.integers()),
    max_size=120,
)


def _canon_groups(groups):
    """Groups with every NaN key collapsed to one sentinel.

    Results that round-trip through spill files carry *unpickled* NaN
    keys, so the identity shortcut that makes ``[nan] == [nan]`` true for
    shared objects no longer applies; distinct NaN objects stay distinct
    groups on both sides, so order-preserving collapse is faithful.
    """
    return [
        (("__nan__",) if isinstance(k, float) and k != k else k, vs)
        for k, vs in groups
    ]


@given(pairs_strategy)
def test_group_sorted_loses_nothing(pairs):
    groups = group_sorted(pairs)
    regrouped = [(k, v) for k, vs in groups for v in vs]
    assert Counter(regrouped) == Counter(pairs)


@given(pairs_strategy)
def test_group_sorted_keys_unique_and_sorted(pairs):
    groups = group_sorted(pairs)
    keys = [k for k, _ in groups]
    assert len(keys) == len(set(keys))
    assert keys == sorted(keys)


@given(st.lists(pairs_strategy, max_size=5), st.integers(min_value=1, max_value=8))
def test_shuffle_conserves_records(map_outputs, n_reducers):
    result = shuffle(map_outputs, HashPartitioner(), n_reducers)
    delivered = Counter(
        (k, v) for part in result.partitions for k, vs in part for v in vs
    )
    sent = Counter(p for out in map_outputs for p in out)
    assert delivered == sent


@given(st.lists(pairs_strategy, max_size=5), st.integers(min_value=1, max_value=8))
def test_shuffle_key_disjointness(map_outputs, n_reducers):
    """No key appears in two partitions: the defining shuffle contract."""
    result = shuffle(map_outputs, HashPartitioner(), n_reducers)
    seen: dict[int, int] = {}
    for pid, part in enumerate(result.partitions):
        for k, _ in part:
            assert seen.setdefault(k, pid) == pid
    assert sum(result.partition_bytes) == result.shuffled_bytes


class _TokenMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 7, 1)


class _CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=150),
    st.integers(min_value=1, max_value=5),
)
def test_mapreduce_equals_sequential_histogram(values, n_reducers):
    """Full-engine law: MR histogram == sequential histogram, for any
    input and any reducer count."""
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=128, seed=0)
    hdfs.put_records("in", list(enumerate(values)), record_bytes=16)
    runner = JobRunner(hdfs)
    runner.run(
        JobSpec("hist", _TokenMapper, ["in"], "out", reducer=_CountReducer, num_reducers=n_reducers)
    )
    got = dict(hdfs.read_records("out"))
    want = Counter(v % 7 for v in values)
    assert got == dict(want)


# -- fast-path vs generic laws ------------------------------------------------

@given(st.one_of(scalar_pairs, float_pairs, int_pairs))
def test_group_sorted_fast_path_matches_generic(pairs):
    """Whatever path ``group_sorted`` dispatches to — vectorized argsort
    for homogeneous keys, dict-and-sort otherwise — the result equals the
    generic reference.  Both sides share the same key objects, so list
    equality holds even for NaN keys (identity short-circuit)."""
    assert group_sorted(pairs) == _group_sorted_generic(pairs)


@given(
    st.lists(st.one_of(scalar_pairs, float_pairs, int_pairs), max_size=4),
    st.integers(min_value=1, max_value=5),
)
def test_shuffle_fast_matches_generic(map_outputs, n_reducers):
    """Whenever the vectorized shuffle accepts an input, its result is
    element-identical to the generic per-record loop — partitions, byte
    accounting and all.  (NaN or mixed-type keys make it decline, which
    is itself part of the contract: declined inputs reach this property
    through ``shuffle``'s fallback in the other tests.)"""
    for partitioner in (HashPartitioner(), ConstantKeyPartitioner()):
        fast = _shuffle_fast(map_outputs, partitioner, n_reducers)
        if fast is None:
            continue
        ref = _shuffle_generic(map_outputs, partitioner, n_reducers)
        assert fast.partitions == ref.partitions
        assert fast.shuffled_bytes == ref.shuffled_bytes
        assert fast.partition_bytes == ref.partition_bytes


@given(
    st.lists(st.one_of(scalar_pairs, float_pairs, int_pairs), max_size=4),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_external_shuffle_matches_in_memory(map_outputs, n_reducers):
    """External-sort law: a spiller with a near-zero budget must be
    invisible — same groups in the same order, same byte accounting —
    whether it spills runs, falls back on unsortable keys, or both."""
    partitioner = HashPartitioner()
    reference = shuffle(map_outputs, partitioner, n_reducers)
    directory = SpillDirectory(None)
    try:
        spiller = ShuffleSpiller(
            1, directory, n_reducers, partitioner, SpillStats()
        )
        spilled = shuffle(map_outputs, partitioner, n_reducers, spiller=spiller)
        assert spilled.n_reducers == reference.n_reducers
        for r in range(n_reducers):
            assert _canon_groups(spilled.partition(r)) == _canon_groups(
                reference.partition(r)
            )
        assert spilled.shuffled_bytes == reference.shuffled_bytes
        assert spilled.partition_bytes == reference.partition_bytes
        spilled.release()
    finally:
        directory.cleanup()
