"""Property-based tests: k-means invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kmeans import (
    _update_centroids,
    assign_points,
    kmeans_sequential,
)


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=3, max_value=120))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    return 39.9 + rng.normal(0, 0.05, (n, 2))


@settings(max_examples=50, deadline=None)
@given(point_sets(), st.integers(min_value=1, max_value=3), st.integers(0, 100))
def test_inertia_never_worse_than_single_cluster(points, k, seed):
    k = min(k, len(points))
    single = kmeans_sequential(points, 1, seed=seed)
    multi = kmeans_sequential(points, k, seed=seed)
    assert multi.inertia <= single.inertia + 1e-9


@settings(max_examples=50, deadline=None)
@given(point_sets(), st.integers(0, 100))
def test_lloyd_step_never_increases_inertia(points, seed):
    """One assignment+update step is monotone in the k-means objective
    (the convergence argument)."""
    rng = np.random.default_rng(seed)
    k = min(3, len(points))
    centroids = points[rng.choice(len(points), k, replace=False)]
    for _ in range(4):
        assignment = assign_points(points, centroids, "squared_euclidean")
        before = sum(
            np.sum((points[assignment == c] - centroids[c]) ** 2)
            for c in range(k)
        )
        centroids = _update_centroids(points, assignment, centroids)
        after_assignment = assign_points(points, centroids, "squared_euclidean")
        after = sum(
            np.sum((points[after_assignment == c] - centroids[c]) ** 2)
            for c in range(k)
        )
        assert after <= before + 1e-9


@settings(max_examples=50, deadline=None)
@given(point_sets(), st.integers(0, 100))
def test_converged_means_fixed_point(points, seed):
    k = min(3, len(points))
    res = kmeans_sequential(points, k, seed=seed, convergence_delta=0.0, max_iter=300)
    if not res.converged:
        return
    assignment = assign_points(points, res.centroids, "squared_euclidean")
    again = _update_centroids(points, assignment, res.centroids)
    assert np.allclose(again, res.centroids, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(point_sets(), st.integers(1, 4), st.integers(0, 100))
def test_assignment_total_and_range(points, k, seed):
    k = min(k, len(points))
    res = kmeans_sequential(points, k, seed=seed, max_iter=5)
    assignment = assign_points(points, res.centroids, "squared_euclidean")
    assert len(assignment) == len(points)
    assert assignment.min() >= 0 and assignment.max() < k
