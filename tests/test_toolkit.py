"""Tests for the GEPETO facade."""

import numpy as np
import pytest

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams
from repro.sanitization import GaussianMask


@pytest.fixture(scope="module")
def gep():
    toolkit, truth = Gepeto.synthetic(n_users=3, days=2, seed=31)
    return toolkit, truth


class TestConstruction:
    def test_synthetic_returns_ground_truth(self, gep):
        toolkit, truth = gep
        assert len(truth) == 3
        assert toolkit.dataset.num_users() == 3
        assert len(toolkit) == len(toolkit.dataset)

    def test_geolife_roundtrip(self, gep, tmp_path):
        toolkit, _ = gep
        small = Gepeto(toolkit.dataset.subset([toolkit.dataset.user_ids[0]]))
        small.save_geolife(tmp_path)
        back = Gepeto.from_geolife(tmp_path)
        assert len(back) == len(small)


class TestLocalOperations:
    def test_sample_reduces(self, gep):
        toolkit, _ = gep
        sampled = toolkit.sample(60.0)
        assert len(sampled) < len(toolkit) / 5

    def test_sanitize_and_utility(self, gep):
        toolkit, _ = gep
        sampled = toolkit.sample(60.0)
        masked = sampled.sanitize(GaussianMask(100.0, seed=1))
        report = masked.utility_versus(sampled)
        assert report.volume_ratio == 1.0
        assert report.mean_distortion_m > 50.0

    def test_kmeans(self, gep):
        toolkit, _ = gep
        res = toolkit.sample(300.0).kmeans(k=4, seed=1, max_iter=30)
        assert res.centroids.shape == (4, 2)

    def test_djcluster_and_poi_attack(self, gep):
        toolkit, truth = gep
        sampled = toolkit.sample(60.0)
        params = DJClusterParams(radius_m=80, min_pts=5)
        res = sampled.djcluster(params)
        assert res.n_clusters > 0
        pois = sampled.poi_attack_all(params)
        assert set(pois) == set(sampled.dataset.user_ids)

    def test_visualize(self, gep):
        toolkit, _ = gep
        out = toolkit.visualize(width=40, height=10)
        assert "lat [" in out

    def test_social_graph(self, gep):
        toolkit, _ = gep
        graph = toolkit.social_graph()
        assert set(graph.nodes) == set(toolkit.dataset.user_ids)

    def test_semantic_places(self, gep):
        toolkit, truth = gep
        places, visits = toolkit.semantic_places(truth[0].user_id, min_stay_s=600)
        assert places and visits
        assert any(p.label == "home" for p in places)

    def test_predictability(self, gep):
        import numpy as np

        toolkit, truth = gep
        user = truth[0]
        coords = np.array([(p.latitude, p.longitude) for p in user.pois])
        report = toolkit.predictability(user.user_id, coords)
        assert report.n_states >= 1
        assert 0.0 <= report.pi_max <= 1.0


class TestDeployment:
    def test_deploy_uploads_dataset(self, gep):
        toolkit, _ = gep
        cluster = toolkit.sample(60.0).deploy(n_workers=4, chunk_size_mb=1)
        assert cluster.runner.hdfs.exists("input/traces")
        assert cluster.deploy_overhead_s == pytest.approx(25.0)

    def test_mr_sampling_roundtrip(self, gep):
        toolkit, _ = gep
        cluster = toolkit.deploy(n_workers=4, chunk_size_mb=64)
        result = cluster.sample(60.0)
        sampled = cluster.read_traces(result.output_path)
        seq = toolkit.sample(60.0)
        assert len(sampled) == len(seq)

    def test_mr_kmeans(self, gep):
        toolkit, _ = gep
        cluster = toolkit.sample(300.0).deploy(n_workers=4, chunk_size_mb=1)
        res = cluster.kmeans(k=3, seed=5, max_iter=10)
        assert res.centroids.shape == (3, 2)
        assert res.history

    def test_mr_djcluster(self, gep):
        toolkit, _ = gep
        cluster = toolkit.sample(300.0).deploy(n_workers=4, chunk_size_mb=64)
        res = cluster.djcluster(DJClusterParams(radius_m=100, min_pts=4))
        assert res.sim_seconds > 0

    def test_mr_rtree(self, gep):
        toolkit, _ = gep
        sampled = toolkit.sample(300.0)
        cluster = sampled.deploy(n_workers=4, chunk_size_mb=1)
        res = cluster.build_rtree(n_partitions=3)
        assert len(res.tree) == len(sampled)

    def test_mr_mmc_learning(self, gep):
        import numpy as np

        toolkit, truth = gep
        sampled = toolkit.sample(60.0)
        cluster = sampled.deploy(n_workers=4, chunk_size_mb=1)
        pois = np.array(
            [(p.latitude, p.longitude) for u in truth for p in u.pois]
        )
        models = cluster.learn_mmcs(pois)
        assert set(models) == set(sampled.dataset.user_ids)

    def test_mr_sanitize(self, gep):
        from repro.sanitization import GaussianMask

        toolkit, _ = gep
        cluster = toolkit.sample(300.0).deploy(n_workers=4, chunk_size_mb=64)
        res = cluster.sanitize(GaussianMask(100.0, seed=2))
        out = cluster.read_traces(res.output_path)
        assert len(out) == len(toolkit.sample(300.0))


class TestDeanonymization:
    def test_facade_links_users(self):
        toolkit, _ = Gepeto.synthetic(n_users=3, days=4, seed=55)
        sampled = toolkit.sample(60.0)
        # Pseudonymize a copy as the "released" dataset.
        from repro.geo.trace import GeolocatedDataset, Trail, TraceArray

        target = GeolocatedDataset()
        truth_map = {}
        for trail in sampled.dataset.trails():
            pseud = f"x-{trail.user_id}"
            arr = trail.traces
            target.add_trail(
                Trail(
                    pseud,
                    TraceArray.from_columns(
                        [pseud], arr.latitude.copy(), arr.longitude.copy(), arr.timestamp.copy()
                    ),
                )
            )
            truth_map[pseud] = trail.user_id
        result = sampled.deanonymize(
            Gepeto(target), truth_map, DJClusterParams(radius_m=80, min_pts=5)
        )
        # Identical data: the fingerprints must match their own user.
        assert result.success_rate == 1.0
