"""Unit tests for visualization/export."""

import json

import numpy as np
import pytest

from repro.attacks.poi import PointOfInterestEstimate
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.viz import ascii_density_map, cluster_summary_table, to_csv, to_geojson


def _ds(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return GeolocatedDataset(
        [
            Trail(
                "u",
                TraceArray.from_columns(
                    ["u"],
                    39.9 + rng.normal(0, 0.01, n),
                    116.4 + rng.normal(0, 0.01, n),
                    np.arange(n, dtype=float),
                ),
            )
        ]
    )


def _poi():
    return PointOfInterestEstimate(39.9, 116.4, 42, 7200.0, np.zeros(24, dtype=int), "home")


class TestAsciiMap:
    def test_dimensions(self):
        out = ascii_density_map(_ds(), width=40, height=10)
        lines = out.splitlines()
        assert lines[0] == "+" + "-" * 40 + "+"
        body = lines[1:-2]
        assert len(body) == 10
        assert all(len(line) == 42 for line in body)

    def test_legend_shows_bounds_and_count(self):
        out = ascii_density_map(_ds(50))
        assert "n=50" in out
        assert "lat [" in out and "lon [" in out

    def test_markers_overlaid(self):
        out = ascii_density_map(_ds(), markers=[(39.9, 116.4, "H")])
        assert "H" in out

    def test_empty_dataset(self):
        assert "empty" in ascii_density_map(GeolocatedDataset())

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_density_map(_ds(), width=1)

    def test_dense_cells_darker_than_sparse(self):
        out = ascii_density_map(_ds(2000, seed=1), width=30, height=10)
        # Both dense-ramp and blank characters should appear.
        body = "".join(out.splitlines()[1:-2])
        assert "@" in body or "%" in body or "#" in body
        assert " " in body


class TestGeoJson:
    def test_valid_geojson_with_traces(self):
        doc = json.loads(to_geojson(_ds(10)))
        assert doc["type"] == "FeatureCollection"
        assert len(doc["features"]) == 10
        feat = doc["features"][0]
        # GeoJSON order: [lon, lat].
        assert feat["geometry"]["coordinates"][0] == pytest.approx(116.4, abs=0.1)
        assert feat["properties"]["kind"] == "trace"

    def test_subsampling_bound(self):
        doc = json.loads(to_geojson(_ds(500), max_traces=50))
        assert len(doc["features"]) == 50

    def test_pois_exported(self):
        doc = json.loads(to_geojson(pois=[_poi()]))
        (feat,) = doc["features"]
        assert feat["properties"]["kind"] == "poi"
        assert feat["properties"]["label"] == "home"

    def test_clusters_require_points(self):
        with pytest.raises(ValueError):
            to_geojson(clusters=[np.array([0, 1])])

    def test_clusters_exported_as_multipoints(self):
        flat = _ds(10).flat()
        doc = json.loads(
            to_geojson(clusters=[np.array([0, 1, 2])], cluster_points=flat)
        )
        (feat,) = doc["features"]
        assert feat["geometry"]["type"] == "MultiPoint"
        assert feat["properties"]["size"] == 3


class TestCsv:
    def test_header_and_rows(self):
        csv = to_csv(_ds(5))
        lines = csv.splitlines()
        assert lines[0] == "user,latitude,longitude,timestamp,altitude"
        assert len(lines) == 6
        assert lines[1].startswith("u,")


class TestSummaryTable:
    def test_table_contains_poi_fields(self):
        table = cluster_summary_table([_poi()])
        assert "home" in table
        assert "42" in table
        assert "2.00" in table  # dwell hours


class TestMmcTable:
    def test_transition_table_renders(self):
        from repro.attacks.mmc import build_mmc
        from repro.viz import mmc_transition_table

        pois = np.array([[39.9, 116.4], [39.95, 116.5]])
        arr = TraceArray.from_columns(
            ["u"],
            np.array([39.9, 39.95, 39.9, 39.95]),
            np.array([116.4, 116.5, 116.4, 116.5]),
            np.arange(4.0) * 600,
        )
        mmc = build_mmc(arr, pois, labels=["home", "work"])
        table = mmc_transition_table(mmc)
        assert "home" in table and "work" in table
        assert "1.00" in table  # deterministic alternation

    def test_max_states_respected(self):
        from repro.attacks.mmc import MobilityMarkovChain
        from repro.viz import mmc_transition_table

        n = 6
        mmc = MobilityMarkovChain(
            states=np.zeros((n, 2)),
            transitions=np.full((n, n), 1.0 / n),
            visit_counts=np.arange(n, dtype=float),
        )
        table = mmc_transition_table(mmc, max_states=3)
        assert len(table.splitlines()) == 5  # header + rule + 3 rows
