"""Unit tests for utility metrics."""

import numpy as np
import pytest

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.metrics.utility import (
    UtilityReport,
    coverage_ratio,
    spatial_distortion_m,
    trace_volume_ratio,
    utility_report,
)
from repro.sanitization.masks import GaussianMask


def _ds(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return GeolocatedDataset(
        [
            Trail(
                "u",
                TraceArray.from_columns(
                    ["u"],
                    39.9 + rng.normal(0, 0.01, n),
                    116.4 + rng.normal(0, 0.01, n),
                    np.arange(n, dtype=float),
                ),
            )
        ]
    )


class TestDistortion:
    def test_identity_has_zero_distortion(self):
        ds = _ds()
        mean, median = spatial_distortion_m(ds, ds)
        assert mean == 0.0 and median == 0.0

    def test_mask_distortion_tracks_sigma(self):
        ds = _ds(1000)
        masked = GaussianMask(100.0, seed=1).sanitize_dataset(ds)
        mean, median = spatial_distortion_m(ds, masked)
        assert mean == pytest.approx(100.0 * np.sqrt(np.pi / 2), rel=0.15)
        assert median > 0

    def test_unmatchable_returns_nan(self):
        ds = _ds()
        other = GeolocatedDataset(
            [
                Trail(
                    "different-user",
                    TraceArray.from_columns(
                        ["different-user"], np.zeros(3), np.zeros(3), np.arange(3.0)
                    ),
                )
            ]
        )
        mean, median = spatial_distortion_m(ds, other)
        assert np.isnan(mean) and np.isnan(median)


class TestVolume:
    def test_identity(self):
        ds = _ds()
        assert trace_volume_ratio(ds, ds) == 1.0

    def test_half_suppressed(self):
        ds = _ds(100)
        half = GeolocatedDataset.from_array(ds.flat()[:50])
        assert trace_volume_ratio(ds, half) == pytest.approx(0.5)

    def test_empty_original(self):
        assert trace_volume_ratio(GeolocatedDataset(), _ds()) == 0.0


class TestCoverage:
    def test_identity_full_coverage(self):
        ds = _ds()
        assert coverage_ratio(ds, ds) == 1.0

    def test_collapsing_everything_reduces_coverage(self):
        ds = _ds(500)
        flat = ds.flat()
        collapsed = GeolocatedDataset.from_array(
            flat.with_coordinates(np.full(len(flat), 39.9), np.full(len(flat), 116.4))
        )
        assert coverage_ratio(ds, collapsed, cell_m=200.0) < 0.2

    def test_empty_original_counts_as_covered(self):
        assert coverage_ratio(GeolocatedDataset(), _ds()) == 1.0


class TestRangeQueryError:
    def test_identity_zero_error(self):
        from repro.metrics.utility import range_query_error

        ds = _ds(500)
        assert range_query_error(ds, ds) == 0.0

    def test_empty_release_full_error(self):
        from repro.metrics.utility import range_query_error

        ds = _ds(500)
        empty = GeolocatedDataset()
        assert range_query_error(ds, empty) == pytest.approx(1.0)

    def test_small_noise_small_error(self):
        from repro.metrics.utility import range_query_error

        ds = _ds(2000)
        slightly = GaussianMask(30.0, seed=1).sanitize_dataset(ds)
        heavily = GaussianMask(2000.0, seed=1).sanitize_dataset(ds)
        err_small = range_query_error(ds, slightly, cell_m=1000.0)
        err_big = range_query_error(ds, heavily, cell_m=1000.0)
        assert err_small < err_big
        assert err_small < 0.35

    def test_deterministic_given_seed(self):
        from repro.metrics.utility import range_query_error

        ds = _ds(500)
        masked = GaussianMask(200.0, seed=2).sanitize_dataset(ds)
        a = range_query_error(ds, masked, seed=7)
        b = range_query_error(ds, masked, seed=7)
        assert a == b

    def test_empty_original(self):
        from repro.metrics.utility import range_query_error

        assert range_query_error(GeolocatedDataset(), _ds()) == 0.0


class TestReport:
    def test_bundles_all_metrics(self):
        ds = _ds()
        masked = GaussianMask(50.0, seed=2).sanitize_dataset(ds)
        report = utility_report(ds, masked)
        assert isinstance(report, UtilityReport)
        row = report.as_row()
        assert set(row) == {
            "mean_distortion_m",
            "median_distortion_m",
            "volume_ratio",
            "coverage",
        }
        assert row["volume_ratio"] == 1.0
        assert row["mean_distortion_m"] > 0
