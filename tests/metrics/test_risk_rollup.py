"""The MapReduce risk rollup equals the driver-side risk metric exactly."""

import pytest

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.runner import JobRunner
from repro.metrics.privacy import window_reidentification_risk
from repro.metrics.risk_rollup import window_risk_mapreduce
from repro.observability.events import EventKind

BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=6, days=1, seed=21))
    return dataset.flat().sort_by_time()


def _run_rollup(corpus, backend, **runner_kwargs):
    hdfs = SimulatedHDFS(paper_cluster(4), chunk_size=48 * 1024, seed=0)
    hdfs.put_trace_array("input/traces", corpus)
    workers = None if backend == "serial" else 2
    with JobRunner(
        hdfs, executor=backend, max_workers=workers, **runner_kwargs
    ) as runner:
        risk, result = window_risk_mapreduce(
            runner, "input/traces", "out/risk", cell_m=400.0, window_s=1800.0
        )
        return risk, result, runner.history


@pytest.mark.parametrize("backend", BACKENDS)
def test_rollup_equals_driver_side_risk(corpus, backend):
    """WindowRisk dataclass equality — counts, risk and anonymity stats
    all match the sequential metric bit for bit."""
    want = window_reidentification_risk(corpus, cell_m=400.0, window_s=1800.0)
    got, _, _ = _run_rollup(corpus, backend)
    assert got == want


def test_rollup_equals_driver_side_without_preagg(corpus):
    want = window_reidentification_risk(corpus, cell_m=400.0, window_s=1800.0)
    got, _, _ = _run_rollup(corpus, "serial", preagg=False, metadata_shuffle=False)
    assert got == want


def test_rollup_takes_metadata_only_path(corpus):
    _, _, history = _run_rollup(corpus, "serial")
    preagg_events = [
        e for e in history.events if e.kind == EventKind.SHUFFLE_PREAGG
    ]
    assert len(preagg_events) == 1
    assert preagg_events[0].data["envelopes"] > 0


def test_rollup_shuffles_fewer_bytes_with_preagg(corpus):
    from repro.mapreduce.counters import STANDARD

    _, with_pa, _ = _run_rollup(corpus, "serial")
    _, without, _ = _run_rollup(
        corpus, "serial", preagg=False, metadata_shuffle=False
    )
    pa = with_pa.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES)
    raw = without.counters.value(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES)
    assert 0 < pa < raw


def test_streaming_rollup_keeps_signature_chain(corpus):
    """The manager's ``risk_rollup`` knob swaps the window risk
    computation for the MR job; every window report, and therefore the
    run signature, is unchanged."""
    from repro.streaming.check import run_stream

    plain = run_stream(corpus, 3 * 3600.0, mode="runner")
    rollup = run_stream(corpus, 3 * 3600.0, mode="runner", risk_rollup=True)
    assert rollup.signature() == plain.signature()
