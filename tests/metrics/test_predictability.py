"""Unit tests for the Song-et-al. predictability metrics."""

import math

import numpy as np
import pytest

from repro.metrics.predictability import (
    max_predictability,
    predictability_report,
    random_entropy,
    real_entropy,
    temporal_uncorrelated_entropy,
)


class TestEntropies:
    def test_random_entropy_counts_states(self):
        assert random_entropy([0, 1, 2, 3]) == 2.0
        assert random_entropy([7, 7, 7]) == 0.0
        assert random_entropy([]) == 0.0

    def test_uncorrelated_entropy_uniform(self):
        # Four equally frequent places: 2 bits.
        seq = [0, 1, 2, 3] * 10
        assert temporal_uncorrelated_entropy(seq) == pytest.approx(2.0)

    def test_uncorrelated_entropy_skewed_below_random(self):
        seq = [0] * 90 + [1] * 5 + [2] * 5
        s_unc = temporal_uncorrelated_entropy(seq)
        assert s_unc < random_entropy(seq)

    def test_real_entropy_constant_sequence_near_zero(self):
        seq = [0] * 50
        assert real_entropy(seq) < 0.6  # finite-size floor, -> 0 as n grows

    def test_real_entropy_periodic_below_uncorrelated(self):
        seq = [0, 1] * 40
        assert real_entropy(seq) < temporal_uncorrelated_entropy(seq) + 0.3
        # And far below random order-free entropy of a random sequence.
        rng = np.random.default_rng(0)
        rand_seq = rng.integers(0, 2, 80)
        assert real_entropy(seq) < real_entropy(rand_seq)

    def test_real_entropy_random_sequence_near_log_n(self):
        rng = np.random.default_rng(1)
        seq = rng.integers(0, 4, 400)
        s = real_entropy(seq)
        assert 1.2 < s <= 2.6  # around log2(4)=2 with estimator bias

    def test_real_entropy_short_sequences(self):
        assert real_entropy([]) == 0.0
        assert real_entropy([3]) == 0.0

    def test_sequence_must_be_1d(self):
        with pytest.raises(ValueError):
            random_entropy(np.zeros((2, 2)))


class TestFanoBound:
    def test_zero_entropy_fully_predictable(self):
        assert max_predictability(0.0, 5) == pytest.approx(1.0, abs=1e-6)

    def test_max_entropy_gives_chance(self):
        n = 8
        assert max_predictability(math.log2(n), n) == pytest.approx(1.0 / n, abs=1e-6)

    def test_monotone_in_entropy(self):
        pis = [max_predictability(s, 10) for s in (0.0, 0.5, 1.0, 2.0, 3.0)]
        assert all(b <= a + 1e-9 for a, b in zip(pis, pis[1:]))

    def test_single_state(self):
        assert max_predictability(0.0, 1) == 1.0

    def test_invalid_states(self):
        with pytest.raises(ValueError):
            max_predictability(1.0, 0)

    def test_song_et_al_ballpark(self):
        """Song et al.'s famous result: S_real ~ 0.8 bits over ~46 places
        gives Pi_max ~ 0.93."""
        pi = max_predictability(0.8, 46)
        assert 0.88 < pi < 0.96


class TestReport:
    def test_commuter_is_highly_predictable(self):
        seq = [0, 1] * 50  # home-work metronome
        report = predictability_report(seq)
        assert report.n_states == 2
        assert report.pi_max > 0.75
        assert report.s_real <= report.s_unc + 0.3

    def test_wanderer_less_predictable(self):
        rng = np.random.default_rng(3)
        wander = predictability_report(rng.integers(0, 8, 300))
        commuter = predictability_report([0, 1] * 150)
        assert wander.pi_max < commuter.pi_max

    def test_on_synthetic_user(self, small_corpus):
        from repro.attacks.mmc import visit_sequence
        from repro.algorithms.sampling import sample_array

        dataset, users = small_corpus
        user = users[0]
        arr = sample_array(dataset.trail(user.user_id).traces, 60.0)
        coords = np.array([(p.latitude, p.longitude) for p in user.pois])
        visits = visit_sequence(arr, coords)
        report = predictability_report(visits)
        assert report.n_visits == len(visits)
        # Schedule-driven synthetic users are far from random.
        if report.n_visits >= 6:
            assert report.pi_max > 1.0 / max(report.n_states, 1)

    def test_as_row_keys(self):
        row = predictability_report([0, 1, 0]).as_row()
        assert set(row) == {"n_visits", "n_states", "s_rand", "s_unc", "s_real", "pi_max"}
