"""Unit tests for privacy metrics."""

import numpy as np
import pytest

from repro.attacks.poi import PointOfInterestEstimate
from repro.geo.synthetic import PointOfInterest
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.metrics.privacy import (
    anonymity_set_sizes,
    mixzone_anonymity_sets,
    poi_recovery,
    privacy_report,
)
from repro.sanitization.mixzones import MixZone


def _estimate(lat, lon, n=10):
    return PointOfInterestEstimate(lat, lon, n, 0.0, np.zeros(24, dtype=int))


def _truth(lat, lon, label="home"):
    return PointOfInterest(label, lat, lon)


class TestPoiRecovery:
    def test_perfect_recovery(self):
        ex = [_estimate(39.9, 116.4), _estimate(39.95, 116.5)]
        gt = [_truth(39.9, 116.4), _truth(39.95, 116.5, "work")]
        r = poi_recovery(ex, gt, match_radius_m=50.0)
        assert r.precision == 1.0 and r.recall == 1.0 and r.f1 == 1.0
        assert r.n_matched == 2
        assert r.mean_match_error_m < 1.0

    def test_partial_recovery(self):
        ex = [_estimate(39.9, 116.4)]
        gt = [_truth(39.9, 116.4), _truth(39.95, 116.5, "work")]
        r = poi_recovery(ex, gt)
        assert r.precision == 1.0
        assert r.recall == 0.5
        assert r.f1 == pytest.approx(2 / 3)

    def test_false_positives_hurt_precision(self):
        ex = [_estimate(39.9, 116.4), _estimate(10.0, 10.0)]
        gt = [_truth(39.9, 116.4)]
        r = poi_recovery(ex, gt)
        assert r.precision == 0.5 and r.recall == 1.0

    def test_one_to_one_matching(self):
        # Two estimates near one truth: only one may match.
        ex = [_estimate(39.9, 116.4), _estimate(39.9001, 116.4)]
        gt = [_truth(39.9, 116.4)]
        r = poi_recovery(ex, gt, match_radius_m=100.0)
        assert r.n_matched == 1

    def test_radius_enforced(self):
        ex = [_estimate(39.9, 116.4)]
        gt = [_truth(39.91, 116.4)]  # ~1.1 km away
        r = poi_recovery(ex, gt, match_radius_m=150.0)
        assert r.n_matched == 0
        assert np.isnan(r.mean_match_error_m)

    def test_empty_inputs(self):
        r = poi_recovery([], [_truth(0, 0)])
        assert r.precision == 0.0 and r.recall == 0.0 and r.f1 == 0.0


class TestAnonymitySets:
    def _two_user_ds(self):
        def mk(u):
            return Trail(
                u,
                TraceArray.from_columns(
                    [u], np.full(5, 39.9), np.full(5, 116.4), np.arange(5.0) * 60
                ),
            )

        return GeolocatedDataset([mk("a"), mk("b")])

    def test_shared_cell_counts_both_users(self):
        sizes = anonymity_set_sizes(self._two_user_ds(), cell_m=500, window_s=3600)
        assert list(sizes) == [2]

    def test_separate_cells_are_singletons(self):
        ds = GeolocatedDataset(
            [
                Trail("a", TraceArray.from_columns(["a"], np.full(3, 39.9), np.full(3, 116.4), np.arange(3.0))),
                Trail("b", TraceArray.from_columns(["b"], np.full(3, 45.0), np.full(3, 10.0), np.arange(3.0))),
            ]
        )
        sizes = anonymity_set_sizes(ds, cell_m=500, window_s=3600)
        assert list(sizes) == [1, 1]

    def test_empty(self):
        assert len(anonymity_set_sizes(GeolocatedDataset())) == 0


class TestMixzoneSets:
    def test_zone_traversal_counted_per_window(self):
        zone = MixZone(39.9, 116.4, 500.0)
        ds = GeolocatedDataset(
            [
                Trail("a", TraceArray.from_columns(["a"], np.full(3, 39.9), np.full(3, 116.4), np.arange(3.0))),
                Trail("b", TraceArray.from_columns(["b"], np.full(3, 39.9), np.full(3, 116.4), np.arange(3.0))),
                Trail("c", TraceArray.from_columns(["c"], np.full(3, 45.0), np.full(3, 10.0), np.arange(3.0))),
            ]
        )
        sets = mixzone_anonymity_sets(ds, [zone], window_s=3600.0)
        assert list(sets[0]) == [2]

    def test_unvisited_zone_empty(self):
        zone = MixZone(0.0, 0.0, 100.0)
        ds = GeolocatedDataset(
            [Trail("a", TraceArray.from_columns(["a"], np.full(3, 39.9), np.full(3, 116.4), np.arange(3.0)))]
        )
        sets = mixzone_anonymity_sets(ds, [zone])
        assert len(sets[0]) == 0


class TestHomeWorkAnonymity:
    def _pairs(self):
        home_a = (39.900, 116.400)
        work_a = (39.950, 116.500)
        return {
            "alice": (home_a, work_a),
            "bob": ((39.9001, 116.4001), (39.9501, 116.5001)),  # same cells
            "carol": ((39.980, 116.300), work_a),  # different home
        }

    def test_shared_pair_counted(self):
        from repro.metrics.privacy import home_work_anonymity

        sets = home_work_anonymity(self._pairs(), cell_m=1000.0)
        assert sets["alice"] == 2
        assert sets["bob"] == 2
        assert sets["carol"] == 1

    def test_everyone_merges_at_region_scale(self):
        # Note: anonymity is not per-user monotone in cell size (absolute
        # grid boundaries can split neighbours at some scales), but at
        # region scale the whole city shares one pair cell.
        from repro.metrics.privacy import home_work_anonymity

        coarse = home_work_anonymity(self._pairs(), cell_m=200_000.0)
        assert all(size == 3 for size in coarse.values())

    def test_golle_partridge_claim_on_synthetic(self, small_corpus):
        """Distinct random homes/works: pairs are unique at 1 km cells —
        the quasi-identifier effect the paper warns about."""
        from repro.metrics.privacy import home_work_anonymity

        _, users = small_corpus
        pairs = {
            u.user_id: (
                (u.home.latitude, u.home.longitude),
                (u.work.latitude, u.work.longitude),
            )
            for u in users
        }
        sets = home_work_anonymity(pairs, cell_m=1000.0)
        assert all(size == 1 for size in sets.values())

    def test_validation(self):
        from repro.metrics.privacy import home_work_anonymity

        with pytest.raises(ValueError):
            home_work_anonymity({}, cell_m=0.0)


class TestPrivacyReport:
    def test_bundle(self):
        ex = [_estimate(39.9, 116.4)]
        gt = [_truth(39.9, 116.4)]
        report = privacy_report(
            ex, gt, deanonymization_rate=0.25, anonymity_sets=np.array([3, 5])
        )
        row = report.as_row()
        assert row["poi_recall"] == 1.0
        assert row["deanonymization_rate"] == 0.25
        assert row["min_anonymity_set"] == 3.0


class TestDivisionGuards:
    """The precision/recall divisions are guarded: empty denominators
    come back 0.0 and bump the module's warning counter instead of
    raising ZeroDivisionError."""

    def setup_method(self):
        from repro.metrics.privacy import reset_division_warnings

        reset_division_warnings()

    def test_no_extracted_pois(self):
        from repro.metrics.privacy import division_warnings

        r = poi_recovery([], [_truth(39.9, 116.4)])
        assert r.precision == 0.0 and r.recall == 0.0 and r.f1 == 0.0
        assert division_warnings() == 1  # precision's denominator only

    def test_no_true_pois(self):
        from repro.metrics.privacy import division_warnings

        r = poi_recovery([_estimate(39.9, 116.4)], [])
        assert r.precision == 0.0 and r.recall == 0.0
        assert division_warnings() == 1  # recall's denominator only

    def test_both_empty(self):
        from repro.metrics.privacy import division_warnings

        r = poi_recovery([], [])
        assert r.precision == 0.0 and r.recall == 0.0
        assert division_warnings() == 2

    def test_clean_inputs_do_not_warn(self):
        from repro.metrics.privacy import division_warnings

        poi_recovery([_estimate(39.9, 116.4)], [_truth(39.9, 116.4)])
        assert division_warnings() == 0

    def test_counter_resets(self):
        from repro.metrics.privacy import division_warnings, reset_division_warnings

        poi_recovery([], [])
        assert division_warnings() > 0
        reset_division_warnings()
        assert division_warnings() == 0
