"""CI smoke + documentation health checks.

Two cheap gates that keep the repo's surfaces honest:

* the observability selfcheck (``python -m repro history --selfcheck``)
  runs a miniature traced deployment end to end, so the tracing layer
  cannot silently rot;
* the docs link/schema checks verify that every relative markdown link
  resolves and that docs/OBSERVABILITY.md documents the full event
  vocabulary.
"""

import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.observability.events import EventKind, Phase

REPO = Path(__file__).resolve().parent.parent

DOCS = sorted(
    p
    for p in [
        *REPO.glob("*.md"),
        *(REPO / "docs").glob("*.md"),
        REPO / "benchmarks" / "README.md",
    ]
    if p.name not in {"ISSUE.md", "CHANGES.md", "SNIPPETS.md", "PAPERS.md"}
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_history_selfcheck_smoke(capsys):
    """The CI smoke step: `pytest -q` runs the selfcheck too."""
    assert main(["history", "--selfcheck"]) == 0
    assert "history selfcheck: ok" in capsys.readouterr().out


def test_chaos_selfcheck_smoke(capsys):
    """`python -m repro chaos --selfcheck`: all five drivers survive a
    fault-heavy seeded schedule with byte-identical outputs."""
    assert main(["chaos", "--selfcheck"]) == 0
    assert "chaos selfcheck: ok" in capsys.readouterr().out


def test_service_selfcheck_smoke(capsys):
    """`python -m repro service --selfcheck`: two tenants sharing one
    JobService (fault-free and chaotic) match solo runs byte for byte."""
    assert main(["service", "--selfcheck"]) == 0
    assert "service selfcheck OK" in capsys.readouterr().out


def test_stream_selfcheck_smoke(capsys):
    """`python -m repro stream --selfcheck`: the micro-batch pipeline's
    determinism, equivalence, chaos, and warm-start invariants hold on a
    miniature corpus."""
    assert main(["stream", "--selfcheck"]) == 0
    assert "stream selfcheck: ok" in capsys.readouterr().out


def test_attack_selfcheck_smoke(capsys):
    """`python -m repro attack --linkage --selfcheck`: the MapReduce
    linkage attack matches the serial reference byte for byte on every
    backend, including a memory-budgeted deployment."""
    assert main(["attack", "--linkage", "--selfcheck"]) == 0
    assert "attack selfcheck: ok" in capsys.readouterr().out


def test_cli_help_mentions_every_documented_subcommand():
    """Docs and CLI can't drift: every `python -m repro <cmd>` usage in
    the markdown corpus must name a real subcommand."""
    from repro.cli import build_parser

    help_text = build_parser().format_help()
    documented = set()
    for doc in DOCS:
        for match in re.finditer(
            r"python -m repro ([a-z][a-z0-9_-]*)", doc.read_text()
        ):
            documented.add(match.group(1))
    assert {
        "history", "chaos", "bench", "submit", "service", "query", "stream"
    } <= documented
    missing = sorted(
        cmd for cmd in documented if not re.search(rf"\b{cmd}\b", help_text)
    )
    assert not missing, f"docs mention unknown subcommands {missing}"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: str(p.relative_to(REPO)))
def test_markdown_links_resolve(doc):
    broken = []
    for target in _LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links {broken}"


def test_observability_doc_covers_every_event_kind():
    text = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    missing = [kind for kind in EventKind.all() if f"`{kind}`" not in text]
    assert not missing, f"docs/OBSERVABILITY.md missing event kinds {missing}"
    for phase in Phase.ORDER:
        assert phase in text


def test_golden_history_in_sync_with_generator():
    """`make_golden.py` and the checked-in golden file must agree."""
    from tests.observability.make_golden import GOLDEN, build_golden

    assert json.loads(GOLDEN.read_text()) == build_golden().to_json_obj()
