"""Unit tests for stay/trip segmentation."""

import numpy as np
import pytest

from repro.geo.trace import TraceArray
from repro.geo.trajectory import Stay, segment_trail, stays_as_array


def _build(segments, user="u"):
    """Build an array from (lat, lon, duration_s, interval_s) dwell specs
    and ('move', lat_from, lat_to, duration_s) movement specs."""
    lat, lon, ts = [], [], []
    t = 0.0
    for seg in segments:
        if seg[0] == "dwell":
            _, slat, slon, duration, interval = seg
            steps = int(duration / interval)
            for k in range(steps):
                lat.append(slat)
                lon.append(slon)
                ts.append(t)
                t += interval
        else:  # move
            _, lat_a, lat_b, duration = seg
            steps = max(int(duration / 10.0), 2)
            for k in range(steps):
                frac = k / (steps - 1)
                lat.append(lat_a + frac * (lat_b - lat_a))
                lon.append(116.4)
                ts.append(t)
                t += duration / steps
    return TraceArray.from_columns([user], np.array(lat), np.array(lon), np.array(ts))


class TestSegmentation:
    def test_two_stays_one_trip(self):
        arr = _build(
            [
                ("dwell", 39.90, 116.4, 1200, 30),
                ("move", 39.90, 39.95, 600),
                ("dwell", 39.95, 116.4, 1200, 30),
            ]
        )
        stays, trips = segment_trail(arr, roam_radius_m=100, min_stay_s=600)
        assert len(stays) == 2
        assert len(trips) == 1
        # Stay centres sit at the dwell points (the window may absorb the
        # first in-radius movement fixes, shifting the mean by metres).
        assert stays[0].latitude == pytest.approx(39.90, abs=1e-3)
        assert stays[1].latitude == pytest.approx(39.95, abs=1e-3)
        assert trips[0].start_ts >= stays[0].end_ts
        assert trips[0].distance_m > 4000

    def test_short_dwell_not_a_stay(self):
        arr = _build(
            [
                ("dwell", 39.90, 116.4, 120, 30),  # too short
                ("move", 39.90, 39.95, 600),
            ]
        )
        stays, trips = segment_trail(arr, roam_radius_m=100, min_stay_s=600)
        assert stays == []
        assert len(trips) == 1

    def test_stay_duration_and_counts(self):
        arr = _build([("dwell", 39.9, 116.4, 1800, 60)])
        stays, trips = segment_trail(arr, roam_radius_m=50, min_stay_s=900)
        assert len(stays) == 1
        assert stays[0].duration_s == pytest.approx(1740.0)  # (n-1)*60
        assert stays[0].n_traces == 30
        assert trips == []

    def test_logging_gap_splits_stay(self):
        a = _build([("dwell", 39.9, 116.4, 1200, 30)])
        b = TraceArray.from_columns(
            ["u"],
            np.full(40, 39.9),
            np.full(40, 116.4),
            10_000.0 + np.arange(40) * 30.0,  # hours later
        )
        arr = TraceArray.concatenate([a, b]).sort_by_time()
        stays, _ = segment_trail(arr, roam_radius_m=50, min_stay_s=600, max_gap_s=3600)
        assert len(stays) == 2

    def test_every_trace_in_exactly_one_segment(self):
        arr = _build(
            [
                ("dwell", 39.90, 116.4, 900, 30),
                ("move", 39.90, 39.93, 300),
                ("dwell", 39.93, 116.4, 900, 30),
                ("move", 39.93, 39.96, 300),
            ]
        )
        stays, trips = segment_trail(arr, roam_radius_m=80, min_stay_s=600)
        covered = sum(s.n_traces for s in stays) + sum(t.n_traces for t in trips)
        assert covered == len(arr)

    def test_empty_and_validation(self):
        assert segment_trail(TraceArray.empty()) == ([], [])
        with pytest.raises(ValueError):
            segment_trail(TraceArray.empty(), roam_radius_m=0)

    def test_synthetic_user_stays_near_pois(self, small_corpus):
        from repro.geo.distance import haversine_m

        dataset, users = small_corpus
        user = users[0]
        stays, trips = segment_trail(
            dataset.trail(user.user_id), roam_radius_m=100, min_stay_s=600
        )
        assert stays, "no stays found on a schedule-driven user"
        assert trips, "no trips found"
        # Most stays are at a ground-truth POI.
        poi_coords = [(p.latitude, p.longitude) for p in user.pois]
        near = sum(
            1
            for s in stays
            if min(float(haversine_m(s.latitude, s.longitude, la, lo)) for la, lo in poi_coords) < 150
        )
        assert near / len(stays) > 0.8


class TestStaysAsArray:
    def test_roundtrip(self):
        stays = [
            Stay(39.9, 116.4, 0.0, 600.0, 10),
            Stay(39.95, 116.5, 1000.0, 2000.0, 20),
        ]
        arr = stays_as_array(stays)
        assert len(arr) == 2
        assert list(arr.timestamp) == [0.0, 1000.0]

    def test_empty(self):
        assert len(stays_as_array([])) == 0
