"""Unit tests for the mobility-trace data model."""

import numpy as np
import pytest

from repro.geo.trace import GeolocatedDataset, MobilityTrace, Trail, TraceArray


def make_trace(**kw):
    base = dict(user_id="alice", latitude=39.9, longitude=116.4, timestamp=1000.0)
    base.update(kw)
    return MobilityTrace(**base)


class TestMobilityTrace:
    def test_fields_and_coordinate(self):
        t = make_trace(altitude=120.0)
        assert t.coordinate == (39.9, 116.4)
        assert t.altitude == 120.0

    def test_latitude_bounds_validated(self):
        with pytest.raises(ValueError, match="latitude"):
            make_trace(latitude=91.0)
        with pytest.raises(ValueError, match="latitude"):
            make_trace(latitude=-90.5)

    def test_longitude_bounds_validated(self):
        with pytest.raises(ValueError, match="longitude"):
            make_trace(longitude=180.5)

    def test_boundary_coordinates_allowed(self):
        make_trace(latitude=90.0, longitude=-180.0)
        make_trace(latitude=-90.0, longitude=180.0)

    def test_with_user_pseudonymizes(self):
        t = make_trace()
        p = t.with_user("pseudonym-1")
        assert p.user_id == "pseudonym-1"
        assert p.coordinate == t.coordinate
        assert t.user_id == "alice"  # original untouched (frozen)

    def test_with_coordinate(self):
        t = make_trace()
        moved = t.with_coordinate(40.0, 117.0)
        assert moved.coordinate == (40.0, 117.0)
        assert moved.timestamp == t.timestamp

    def test_frozen(self):
        t = make_trace()
        with pytest.raises(Exception):
            t.latitude = 0.0


class TestTraceArray:
    def test_from_traces_roundtrip(self):
        traces = [
            make_trace(timestamp=float(i), latitude=39.9 + i * 0.001) for i in range(5)
        ]
        arr = TraceArray.from_traces(traces)
        assert len(arr) == 5
        back = list(arr)
        assert back == traces

    def test_from_columns_single_user_broadcast(self):
        arr = TraceArray.from_columns(
            ["bob"], np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([0.0, 1.0])
        )
        assert arr.users == ("bob",)
        assert list(arr.user_index) == [0, 0]

    def test_from_columns_per_row_users(self):
        arr = TraceArray.from_columns(
            ["a", "b", "a"],
            np.zeros(3),
            np.zeros(3),
            np.arange(3, dtype=float),
        )
        assert set(arr.users) == {"a", "b"}
        assert list(arr.user_ids()) == ["a", "b", "a"]

    def test_from_columns_length_mismatch(self):
        with pytest.raises(ValueError):
            TraceArray.from_columns(
                ["a", "b"], np.zeros(3), np.zeros(3), np.zeros(3)
            )

    def test_getitem_int_returns_trace(self):
        arr = TraceArray.from_traces([make_trace(timestamp=5.0)])
        t = arr[0]
        assert isinstance(t, MobilityTrace)
        assert t.timestamp == 5.0

    def test_getitem_slice_and_mask(self):
        arr = TraceArray.from_columns(
            ["u"], np.arange(10.0), np.zeros(10), np.arange(10.0)
        )
        assert len(arr[2:5]) == 3
        mask = arr.timestamp >= 7
        assert len(arr[mask]) == 3

    def test_concatenate_remaps_users(self):
        a = TraceArray.from_columns(["a"], np.zeros(2), np.zeros(2), np.arange(2.0))
        b = TraceArray.from_columns(["b"], np.zeros(3), np.zeros(3), np.arange(3.0))
        merged = TraceArray.concatenate([a, b])
        assert len(merged) == 5
        assert sorted(set(merged.user_ids())) == ["a", "b"]

    def test_concatenate_shared_user_merges_index(self):
        a = TraceArray.from_columns(["x"], np.zeros(2), np.zeros(2), np.arange(2.0))
        b = TraceArray.from_columns(["x"], np.zeros(2), np.zeros(2), np.arange(2.0))
        merged = TraceArray.concatenate([a, b])
        assert merged.users == ("x",)

    def test_concatenate_empty(self):
        assert len(TraceArray.concatenate([])) == 0
        assert len(TraceArray.concatenate([TraceArray.empty()])) == 0

    def test_sort_by_time(self):
        arr = TraceArray.from_columns(
            ["u"], np.zeros(3), np.zeros(3), np.array([3.0, 1.0, 2.0])
        )
        s = arr.sort_by_time()
        assert list(s.timestamp) == [1.0, 2.0, 3.0]

    def test_sort_by_time_groups_users(self):
        arr = TraceArray.from_columns(
            ["b", "a", "b", "a"],
            np.zeros(4),
            np.zeros(4),
            np.array([2.0, 9.0, 1.0, 0.0]),
        )
        s = arr.sort_by_time()
        # sorted by (user, time): users stay contiguous
        users = list(s.user_ids())
        assert users == sorted(users, key=users.index)
        for u in set(users):
            ts = s.timestamp[np.array(users) == u]
            assert list(ts) == sorted(ts)

    def test_time_span_and_bbox(self):
        arr = TraceArray.from_columns(
            ["u"], np.array([1.0, 2.0]), np.array([3.0, 5.0]), np.array([10.0, 20.0])
        )
        assert arr.time_span() == (10.0, 20.0)
        assert arr.bounding_box() == (1.0, 3.0, 2.0, 5.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError):
            TraceArray.empty().time_span()
        with pytest.raises(ValueError):
            TraceArray.empty().bounding_box()

    def test_with_coordinates(self):
        arr = TraceArray.from_columns(["u"], np.zeros(3), np.zeros(3), np.arange(3.0))
        out = arr.with_coordinates(np.ones(3), np.full(3, 2.0))
        assert np.all(out.latitude == 1.0)
        assert np.all(out.longitude == 2.0)
        assert np.all(out.timestamp == arr.timestamp)
        assert np.all(arr.latitude == 0.0)  # original untouched

    def test_with_coordinates_length_mismatch(self):
        arr = TraceArray.from_columns(["u"], np.zeros(3), np.zeros(3), np.arange(3.0))
        with pytest.raises(ValueError):
            arr.with_coordinates(np.ones(2), np.ones(2))

    def test_coordinates_shape(self):
        arr = TraceArray.from_columns(["u"], np.zeros(4), np.ones(4), np.arange(4.0))
        coords = arr.coordinates()
        assert coords.shape == (4, 2)
        assert np.all(coords[:, 0] == 0.0)
        assert np.all(coords[:, 1] == 1.0)


class TestTrail:
    def test_requires_single_user(self):
        arr = TraceArray.from_columns(
            ["a", "b"], np.zeros(2), np.zeros(2), np.arange(2.0)
        )
        with pytest.raises(ValueError):
            Trail("a", arr)

    def test_auto_sorts(self):
        arr = TraceArray.from_columns(
            ["u"], np.zeros(3), np.zeros(3), np.array([3.0, 1.0, 2.0])
        )
        trail = Trail("u", arr)
        assert list(trail.traces.timestamp) == [1.0, 2.0, 3.0]

    def test_duration(self):
        trail = Trail.from_traces(
            [make_trace(timestamp=10.0), make_trace(timestamp=70.0)]
        )
        assert trail.duration_s() == 60.0

    def test_from_traces_empty_raises(self):
        with pytest.raises(ValueError):
            Trail.from_traces([])


class TestGeolocatedDataset:
    def test_from_traces_groups_users(self):
        traces = [make_trace(user_id=u, timestamp=float(i)) for i, u in enumerate("abab")]
        ds = GeolocatedDataset.from_traces(traces)
        assert ds.num_users() == 2
        assert len(ds) == 4
        assert len(ds.trail("a")) == 2

    def test_add_trail_merges_same_user(self):
        t1 = Trail.from_traces([make_trace(timestamp=1.0)])
        t2 = Trail.from_traces([make_trace(timestamp=2.0)])
        ds = GeolocatedDataset([t1])
        ds.add_trail(t2)
        assert ds.num_users() == 1
        assert len(ds.trail("alice")) == 2
        assert list(ds.trail("alice").traces.timestamp) == [1.0, 2.0]

    def test_flat_is_cached_and_invalidated(self):
        ds = GeolocatedDataset.from_traces([make_trace(timestamp=1.0)])
        flat1 = ds.flat()
        assert ds.flat() is flat1
        ds.add_trail(Trail.from_traces([make_trace(user_id="bob")]))
        assert len(ds.flat()) == 2

    def test_map_trails_drop(self):
        ds = GeolocatedDataset.from_traces(
            [make_trace(user_id="a"), make_trace(user_id="b")]
        )
        kept = ds.map_trails(lambda t: t if t.user_id == "a" else None)
        assert kept.user_ids == ["a"]

    def test_subset(self):
        ds = GeolocatedDataset.from_traces(
            [make_trace(user_id=u) for u in "abc"]
        )
        sub = ds.subset(["a", "c", "missing"])
        assert sub.user_ids == ["a", "c"]

    def test_from_array_roundtrip(self):
        traces = [make_trace(user_id=u, timestamp=float(i)) for i, u in enumerate("aabb")]
        ds = GeolocatedDataset.from_traces(traces)
        ds2 = GeolocatedDataset.from_array(ds.flat())
        assert ds2.user_ids == ds.user_ids
        assert len(ds2) == len(ds)

    def test_contains(self):
        ds = GeolocatedDataset.from_traces([make_trace()])
        assert "alice" in ds
        assert "bob" not in ds

    def test_filter_time_bounds(self):
        ds = GeolocatedDataset.from_traces(
            [make_trace(timestamp=float(t)) for t in range(10)]
        )
        window = ds.filter_time(3.0, 7.0)
        assert list(window.trail("alice").traces.timestamp) == [3.0, 4.0, 5.0, 6.0]

    def test_filter_time_open_bounds(self):
        ds = GeolocatedDataset.from_traces(
            [make_trace(timestamp=float(t)) for t in range(5)]
        )
        assert len(ds.filter_time(start=2.0)) == 3
        assert len(ds.filter_time(end=2.0)) == 2
        assert len(ds.filter_time()) == 5

    def test_filter_time_drops_empty_trails(self):
        ds = GeolocatedDataset.from_traces(
            [
                make_trace(user_id="early", timestamp=0.0),
                make_trace(user_id="late", timestamp=100.0),
            ]
        )
        out = ds.filter_time(start=50.0)
        assert out.user_ids == ["late"]
