"""Unit tests for distance metrics."""

import numpy as np
import pytest

from repro.geo.distance import (
    EARTH_RADIUS_KM,
    METRIC_COST,
    METRICS,
    euclidean,
    get_metric,
    haversine_km,
    haversine_m,
    manhattan,
    pairwise,
    squared_euclidean,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(39.9, 116.4, 39.9, 116.4) == 0.0

    def test_known_distance_paris_london(self):
        # Paris (48.8566, 2.3522) to London (51.5074, -0.1278) ~ 343.5 km.
        d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert 340.0 < d < 347.0

    def test_one_degree_latitude(self):
        d = haversine_km(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM / 180.0, rel=1e-9)

    def test_antipodal(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-9)

    def test_metres_variant(self):
        assert haversine_m(0.0, 0.0, 1.0, 0.0) == pytest.approx(
            haversine_km(0.0, 0.0, 1.0, 0.0) * 1000.0
        )

    def test_vectorized_broadcast(self):
        lats = np.array([0.0, 1.0, 2.0])
        d = haversine_km(0.0, 0.0, lats, 0.0)
        assert d.shape == (3,)
        assert d[0] == 0.0
        assert np.all(np.diff(d) > 0)

    def test_small_distance_precision(self):
        # ~11 m apart; haversine is famously stable here.
        d = haversine_m(39.9, 116.4, 39.9001, 116.4)
        assert d == pytest.approx(11.13, rel=0.01)


class TestPlanarMetrics:
    def test_squared_euclidean_matches_euclidean_squared(self):
        d2 = squared_euclidean(0.0, 0.0, 3.0, 4.0)
        d = euclidean(0.0, 0.0, 3.0, 4.0)
        assert d2 == pytest.approx(25.0)
        assert d == pytest.approx(5.0)

    def test_squared_preserves_order(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50, 2))
        ref = np.zeros(2)
        d1 = euclidean(ref[0], ref[1], a[:, 0], a[:, 1])
        d2 = squared_euclidean(ref[0], ref[1], a[:, 0], a[:, 1])
        assert np.array_equal(np.argsort(d1), np.argsort(d2))

    def test_manhattan(self):
        assert manhattan(0.0, 0.0, 3.0, -4.0) == pytest.approx(7.0)

    def test_scalar_returns_float(self):
        assert isinstance(squared_euclidean(0.0, 0.0, 1.0, 1.0), float)
        assert isinstance(manhattan(0.0, 0.0, 1.0, 1.0), float)


class TestRegistry:
    def test_all_metrics_registered_with_costs(self):
        assert set(METRIC_COST) == set(METRICS)

    def test_get_metric_normalizes_names(self):
        assert get_metric("Haversine") is haversine_km
        assert get_metric("squared-euclidean") is squared_euclidean
        assert get_metric("SQUARED EUCLIDEAN") is squared_euclidean

    def test_get_metric_unknown(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("chebyshev")

    def test_haversine_costs_more_than_squared_euclidean(self):
        # The premise behind the Table III iteration-time gap.
        assert METRIC_COST["haversine"] > METRIC_COST["squared_euclidean"]


class TestPairwise:
    def test_shape_and_values(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[0.0, 0.0], [0.0, 3.0], [4.0, 0.0]])
        d = pairwise("squared_euclidean", a, b)
        assert d.shape == (2, 3)
        assert d[0, 0] == 0.0
        assert d[0, 1] == 9.0
        assert d[0, 2] == 16.0

    def test_accepts_callable(self):
        a = np.array([[0.0, 0.0]])
        d = pairwise(manhattan, a, a)
        assert d[0, 0] == 0.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pairwise("euclidean", np.zeros(3), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            pairwise("euclidean", np.zeros((2, 3)), np.zeros((2, 2)))

    def test_haversine_pairwise_symmetric(self):
        pts = np.array([[39.9, 116.4], [40.0, 116.5], [39.8, 116.2]])
        d = pairwise("haversine", pts, pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
