"""Unit tests for mobility statistics."""

import numpy as np
import pytest

from repro.geo.stats import (
    corpus_summary,
    radius_of_gyration_m,
    sampling_interval_stats,
    user_stats,
)
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


def _trail(lat, lon, ts, user="u"):
    return Trail(
        user,
        TraceArray.from_columns(
            [user], np.asarray(lat, float), np.asarray(lon, float), np.asarray(ts, float)
        ),
    )


class TestRadiusOfGyration:
    def test_stationary_user_zero(self):
        t = _trail([39.9] * 10, [116.4] * 10, np.arange(10.0))
        assert radius_of_gyration_m(t) == pytest.approx(0.0, abs=1e-6)

    def test_two_point_commuter(self):
        # Half time at each of two points 2.2 km apart: r_g = half that.
        lat = [39.90] * 50 + [39.92] * 50
        t = _trail(lat, [116.4] * 100, np.arange(100.0))
        rg = radius_of_gyration_m(t)
        from repro.geo.distance import haversine_m

        separation = float(haversine_m(39.90, 116.4, 39.92, 116.4))
        assert rg == pytest.approx(separation / 2, rel=0.01)

    def test_scale_invariance_direction(self):
        far = _trail([39.9, 40.1], [116.4, 116.4], [0.0, 1.0])
        near = _trail([39.9, 39.91], [116.4, 116.4], [0.0, 1.0])
        assert radius_of_gyration_m(far) > radius_of_gyration_m(near) * 10

    def test_empty(self):
        assert radius_of_gyration_m(TraceArray.empty()) == 0.0


class TestIntervalStats:
    def test_regular_logging(self):
        t = _trail([39.9] * 100, [116.4] * 100, np.arange(100.0) * 3.0)
        stats = sampling_interval_stats(t)
        assert stats["median_s"] == 3.0
        assert stats["n_gaps"] == 0

    def test_gaps_excluded_and_counted(self):
        ts = np.concatenate([np.arange(50.0) * 2.0, 10_000.0 + np.arange(50.0) * 2.0])
        t = _trail([39.9] * 100, [116.4] * 100, ts)
        stats = sampling_interval_stats(t)
        assert stats["median_s"] == 2.0
        assert stats["n_gaps"] == 1

    def test_single_trace(self):
        t = _trail([39.9], [116.4], [0.0])
        assert sampling_interval_stats(t)["median_s"] == 0.0


class TestSummaries:
    def test_user_stats_fields(self):
        t = _trail([39.9, 39.95], [116.4, 116.4], [0.0, 60.0], user="bob")
        s = user_stats(t)
        assert s.user_id == "bob"
        assert s.n_traces == 2
        assert s.duration_s == 60.0
        assert s.radius_of_gyration_m > 1000

    def test_corpus_summary(self, small_corpus):
        dataset, _ = small_corpus
        summary = corpus_summary(dataset)
        assert summary["n_users"] == dataset.num_users()
        assert summary["n_traces"] == len(dataset)
        # GeoLife-like logging: 1-5 s intervals.
        assert 1.0 <= summary["median_interval_s"] <= 5.0
        # City-scale ranging: hundreds of metres to ~15 km.
        assert 200 < summary["median_rg_m"] < 20_000

    def test_empty_corpus(self):
        summary = corpus_summary(GeolocatedDataset())
        assert summary["n_users"] == 0.0
