"""Unit tests for the synthetic GeoLife-like generator."""

import numpy as np
import pytest

from repro.geo.distance import haversine_km, haversine_m
from repro.geo.synthetic import (
    SyntheticConfig,
    generate_dataset,
    generate_user,
)


class TestConfigValidation:
    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=0)
        with pytest.raises(ValueError):
            SyntheticConfig(days=0)

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            SyntheticConfig(min_log_interval_s=5.0, max_log_interval_s=1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(min_log_interval_s=0.0)


class TestGenerateUser:
    def test_deterministic_given_seed(self):
        cfg = SyntheticConfig(n_users=1, days=1, seed=9)
        a = generate_user(cfg, 0)
        b = generate_user(cfg, 0)
        assert len(a.trail) == len(b.trail)
        assert np.array_equal(a.trail.traces.latitude, b.trail.traces.latitude)

    def test_different_users_differ(self):
        cfg = SyntheticConfig(n_users=2, days=1, seed=9)
        a = generate_user(cfg, 0)
        b = generate_user(cfg, 1)
        assert a.home.coordinate != b.home.coordinate if hasattr(a.home, "coordinate") else True
        assert (a.home.latitude, a.home.longitude) != (b.home.latitude, b.home.longitude)

    def test_pois_within_city_radius(self):
        cfg = SyntheticConfig(n_users=1, days=1, seed=3, city_radius_km=10.0)
        user = generate_user(cfg, 0)
        for poi in user.pois:
            d = haversine_km(cfg.center_lat, cfg.center_lon, poi.latitude, poi.longitude)
            assert d <= cfg.city_radius_km * 1.05

    def test_home_and_work_labels(self):
        user = generate_user(SyntheticConfig(n_users=1, days=1, seed=3), 0)
        assert user.pois[0].label == "home"
        assert user.pois[1].label == "work"
        assert user.home is user.pois[0]
        assert user.work is user.pois[1]

    def test_trail_sorted_and_dense(self):
        cfg = SyntheticConfig(n_users=1, days=1, seed=5)
        user = generate_user(cfg, 0)
        ts = user.trail.traces.timestamp
        assert np.all(np.diff(ts) >= 0)
        gaps = np.diff(ts)
        logged = gaps[gaps <= cfg.max_log_interval_s + 1e-9]
        # The bulk of consecutive fixes respect the 1-5 s logging interval.
        assert len(logged) / len(gaps) > 0.95
        assert logged.min() >= cfg.min_log_interval_s - 1e-9

    def test_trail_has_dwell_and_movement(self):
        # Dwell vs movement is only visible above the GPS-jitter timescale,
        # so measure on 60 s-sampled traces — the granularity at which the
        # paper's preprocessing filter operates (Table IV).
        from repro.algorithms.sampling import sample_array

        cfg = SyntheticConfig(n_users=1, days=2, seed=5)
        user = generate_user(cfg, 0)
        arr = sample_array(user.trail.traces, 60.0)
        step_m = np.asarray(
            haversine_m(
                arr.latitude[:-1], arr.longitude[:-1], arr.latitude[1:], arr.longitude[1:]
            )
        )
        dt = np.diff(arr.timestamp)
        speeds = step_m[dt > 0] / dt[dt > 0]
        stationary = float(np.mean(speeds < 0.2))
        moving = float(np.mean(speeds > 0.5))
        assert stationary > 0.2, "expected substantial dwell time"
        assert moving > 0.1, "expected substantial movement"

    def test_traces_near_pois_exist(self):
        cfg = SyntheticConfig(n_users=1, days=1, seed=7)
        user = generate_user(cfg, 0)
        arr = user.trail.traces
        d_home = np.asarray(
            haversine_m(user.home.latitude, user.home.longitude, arr.latitude, arr.longitude)
        )
        assert (d_home < 25.0).sum() > 10, "user never dwells at home"


class TestGenerateDataset:
    def test_user_count_and_ids(self):
        cfg = SyntheticConfig(n_users=3, days=1, seed=2)
        ds, users = generate_dataset(cfg)
        assert ds.num_users() == 3
        assert [u.user_id for u in users] == ["000", "001", "002"]
        assert ds.user_ids == ["000", "001", "002"]

    def test_total_traces_match(self):
        cfg = SyntheticConfig(n_users=2, days=1, seed=2)
        ds, users = generate_dataset(cfg)
        assert len(ds) == sum(len(u.trail) for u in users)

    def test_scales_with_days(self):
        one = generate_dataset(SyntheticConfig(n_users=1, days=1, seed=4))[0]
        three = generate_dataset(SyntheticConfig(n_users=1, days=3, seed=4))[0]
        assert len(three) > 1.5 * len(one)
