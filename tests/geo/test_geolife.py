"""Unit tests for the GeoLife PLT format (Figure 1)."""

import io

import numpy as np
import pytest

from repro.geo.geolife import (
    GEOLIFE_EPOCH,
    PLT_HEADER,
    format_plt_line,
    ole_days_to_unix,
    parse_plt_line,
    read_geolife_dataset,
    read_plt,
    unix_to_ole_days,
    write_geolife_dataset,
    write_plt,
)
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


class TestEpochConversion:
    def test_epoch_is_1899_12_30(self):
        assert GEOLIFE_EPOCH.year == 1899
        assert GEOLIFE_EPOCH.month == 12
        assert GEOLIFE_EPOCH.day == 30

    def test_roundtrip(self):
        ts = 1_200_000_000.123
        assert ole_days_to_unix(unix_to_ole_days(ts)) == pytest.approx(ts, abs=1e-4)

    def test_unix_epoch_value(self):
        # 1970-01-01 is 25569 days after 1899-12-30 (the Excel constant).
        assert float(unix_to_ole_days(0.0)) == pytest.approx(25569.0)


class TestLineFormat:
    def test_parse_known_line(self):
        line = "39.906631,116.385564,0,492,39745.1201851852,2008-10-24,02:53:04"
        lat, lon, alt, ts = parse_plt_line(line)
        assert lat == pytest.approx(39.906631)
        assert lon == pytest.approx(116.385564)
        assert alt == 492.0
        # 39745 days after 1899-12-30 lands on 2008-10-24.
        import datetime as dt

        when = dt.datetime.fromtimestamp(ts, tz=dt.timezone.utc)
        assert (when.year, when.month, when.day) == (2008, 10, 24)
        assert when.hour == 2

    def test_format_then_parse_roundtrip(self):
        line = format_plt_line(39.9042, 116.4074, -777.0, 1_200_000_042.0)
        lat, lon, alt, ts = parse_plt_line(line)
        assert lat == pytest.approx(39.9042, abs=1e-6)
        assert lon == pytest.approx(116.4074, abs=1e-6)
        assert alt == -777.0
        assert ts == pytest.approx(1_200_000_042.0, abs=0.01)

    def test_format_has_seven_fields_and_zero_third(self):
        line = format_plt_line(1.0, 2.0, 100.0, 0.0)
        parts = line.split(",")
        assert len(parts) == 7
        assert parts[2] == "0"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_plt_line("1.0,2.0,0,100")


def _trail(n=5, user="007"):
    return Trail(
        user,
        TraceArray.from_columns(
            [user],
            39.9 + np.arange(n) * 1e-4,
            116.4 + np.arange(n) * 1e-4,
            1_200_000_000.0 + np.arange(n) * 2.0,
            np.full(n, 120.0),
        ),
    )


class TestFileIO:
    def test_write_read_stream_roundtrip(self):
        trail = _trail(20)
        buf = io.StringIO()
        write_plt(trail, buf)
        buf.seek(0)
        back = read_plt(buf, "007")
        assert len(back) == 20
        assert np.allclose(back.traces.latitude, trail.traces.latitude, atol=1e-6)
        assert np.allclose(back.traces.timestamp, trail.traces.timestamp, atol=0.01)

    def test_header_is_six_lines(self):
        buf = io.StringIO()
        write_plt(_trail(1), buf)
        lines = buf.getvalue().splitlines()
        assert lines[:6] == PLT_HEADER.splitlines()
        assert len(lines) == 7

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_plt(tmp_path / "nope.plt", "u")


class TestDatasetLayout:
    def test_write_then_read_directory_tree(self, tmp_path):
        ds = GeolocatedDataset([_trail(10, "000"), _trail(8, "001")])
        written = write_geolife_dataset(ds, tmp_path)
        assert len(written) == 2
        for path in written:
            assert path.suffix == ".plt"
            assert path.parent.name == "Trajectory"
        back = read_geolife_dataset(tmp_path)
        assert back.user_ids == ["000", "001"]
        assert len(back) == 18

    def test_read_subset_of_users(self, tmp_path):
        ds = GeolocatedDataset([_trail(3, "000"), _trail(3, "001")])
        write_geolife_dataset(ds, tmp_path)
        back = read_geolife_dataset(tmp_path, user_ids=["001"])
        assert back.user_ids == ["001"]

    def test_read_missing_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_geolife_dataset(tmp_path / "absent")
