"""Extension bench — the privacy/utility trade-off sweep.

GEPETO's whole purpose: "evaluate various sanitization algorithms and
inference attacks as well as ... the resulting trade-off between privacy
and utility".  This bench sweeps Gaussian mask strength on a 12-user
corpus, runs the POI inference attack on each release, and asserts the
trade-off laws: attack success falls monotonically-ish with noise, while
distortion rises monotonically — the frontier a curator navigates.
"""

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.djcluster import DJClusterParams
from repro.algorithms.sampling import sample_dataset
from repro.attacks.poi import poi_attack
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.metrics.privacy import poi_recovery
from repro.metrics.utility import range_query_error, utility_report
from repro.sanitization import GaussianMask

SIGMAS = [0.0, 50.0, 100.0, 200.0, 400.0]
PARAMS = DJClusterParams(radius_m=80.0, min_pts=6)


@pytest.fixture(scope="module")
def sweep():
    dataset, users = generate_dataset(SyntheticConfig(n_users=12, days=2, seed=2025))
    baseline = sample_dataset(dataset, 60.0)
    ground_truth = [p for u in users for p in u.pois]
    rows = []
    for sigma in SIGMAS:
        released = (
            baseline
            if sigma == 0.0
            else GaussianMask(sigma, seed=1).sanitize_dataset(baseline)
        )
        pois = []
        for trail in released.trails():
            pois.extend(poi_attack(trail, PARAMS))
        recovery = poi_recovery(pois, ground_truth, match_radius_m=150.0)
        utility = utility_report(baseline, released)
        qerr = range_query_error(baseline, released)
        rows.append((sigma, recovery.f1, utility.mean_distortion_m, qerr))
    lines = [
        "Extension - privacy/utility trade-off sweep (Gaussian mask)",
        f"{'sigma_m':>8} {'poi_f1':>7} {'distort_m':>10} {'query_err':>10}",
    ]
    for sigma, f1, dist, qerr in rows:
        lines.append(f"{sigma:>8.0f} {f1:>7.2f} {dist:>10.1f} {qerr:>10.2f}")
    print(write_report("tradeoff_sweep", lines))
    return rows


def test_attack_success_decreases_with_noise(sweep):
    f1s = [f1 for _, f1, _, _ in sweep]
    assert f1s[0] > 0.5, "attack must work on clean data"
    assert f1s[-1] < f1s[0] * 0.5, "heavy noise must defeat the attack"
    # Near-monotone: allow one small inversion from clustering noise.
    inversions = sum(1 for a, b in zip(f1s, f1s[1:]) if b > a + 0.05)
    assert inversions <= 1


def test_distortion_increases_with_noise(sweep):
    dists = [d for _, _, d, _ in sweep]
    assert dists[0] == 0.0
    assert all(b >= a - 1e-9 for a, b in zip(dists, dists[1:]))


def test_query_error_increases_with_noise(sweep):
    qerrs = [q for *_, q in sweep]
    assert qerrs[0] == 0.0
    assert qerrs[-1] > qerrs[1]


def test_benchmark_one_release_evaluation(benchmark, sweep):
    """Wall-clock of evaluating one sanitized release end to end
    (sanitize + attack + score).  Depends on ``sweep`` so a
    ``--benchmark-only`` run still generates the trade-off report."""
    dataset, users = generate_dataset(SyntheticConfig(n_users=4, days=1, seed=9))
    baseline = sample_dataset(dataset, 60.0)
    ground_truth = [p for u in users for p in u.pois]

    def evaluate():
        released = GaussianMask(150.0, seed=2).sanitize_dataset(baseline)
        pois = []
        for trail in released.trails():
            pois.extend(poi_attack(trail, PARAMS))
        return poi_recovery(pois, ground_truth, 150.0)

    recovery = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    assert recovery.n_true > 0
