"""Extension bench — MapReduced MMC learning at corpus scale.

Section VIII's first planned extension ("learning a mobility model out
of the mobility traces of an individual, such as Mobility Markov
Chains") has no paper numbers; this bench demonstrates it working at the
evaluation's scale: DJ-Cluster POIs over the 10-min-sampled 178-user
corpus feed a single MapReduce job that learns one MMC per user, then a
prediction sweep scores the models.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.djcluster import DJClusterParams, djcluster_sequential
from repro.algorithms.sampling import sample_array
from repro.attacks.mmc_mr import run_mmc_mapreduce
from repro.attacks.prediction import evaluate_next_place_prediction


@pytest.fixture(scope="module")
def mmc_models(corpus_128mb):
    array, users = corpus_128mb
    sampled = sample_array(array, 600.0)
    clusters = djcluster_sequential(sampled, DJClusterParams(radius_m=120, min_pts=8))
    pois = clusters.cluster_centroids()
    runner = make_runner(sampled, n_workers=5, chunk_mb=1, path="in")
    models = run_mmc_mapreduce(runner, "in", pois, attach_radius_m=250.0, smoothing=0.1)

    # Score next-place prediction on a longitudinal slice: the one-day
    # evaluation corpus yields visit sequences too short to split, so the
    # sweep uses a 20-user, 5-day corpus with its own POIs.
    from repro.geo.synthetic import SyntheticConfig, generate_dataset

    long_ds, long_users = generate_dataset(
        SyntheticConfig(n_users=20, days=5, seed=555)
    )
    accs, lifts = [], []
    for user in long_users:
        fine = sample_array(user.trail.traces, 60.0)
        states = np.array([(p.latitude, p.longitude) for p in user.pois])
        report = evaluate_next_place_prediction(
            fine, states, train_fraction=0.6, attach_radius_m=250.0
        )
        if report.n_predictions >= 3:
            accs.append(report.accuracy)
            lifts.append(report.lift)
    lines = [
        "Extension - MapReduced Mobility Markov Chain learning",
        f"POI states (global DJ-Cluster centroids): {len(pois)}",
        f"users modelled: {len(models)} / {len(users)}",
        f"prediction sweep (20 users x 5 days): {len(accs)} evaluable users",
        f"mean next-place accuracy: {np.mean(accs):.0%}",
        f"mean lift over uniform guessing: {np.mean(lifts):.1f}x",
    ]
    print(write_report("extension_mmc", lines))
    return models, pois, accs, lifts


def test_every_user_modelled(mmc_models, corpus_128mb):
    models, _, _, _ = mmc_models
    _, users = corpus_128mb
    # A few sparse users lose all their traces to preprocessing/noise.
    assert len(models) >= 0.9 * len(users)


def test_models_are_valid_chains(mmc_models):
    models, pois, _, _ = mmc_models
    for mmc in list(models.values())[:20]:
        assert mmc.n_states == len(pois)
        assert np.allclose(mmc.transitions.sum(axis=1), 1.0)


def test_prediction_beats_chance(mmc_models):
    _, _, accs, lifts = mmc_models
    assert len(accs) >= 10
    assert np.mean(lifts) > 2.0


def test_benchmark_mmc_job(benchmark, corpus_128mb, mmc_models):
    """Wall-clock of the MMC-learning MapReduce job at 10-min scale.

    Depends on ``mmc_models`` so a ``--benchmark-only`` run still
    generates the extension report.
    """
    array, _ = corpus_128mb
    _, pois, _, _ = mmc_models
    sampled = sample_array(array, 600.0)

    def run():
        runner = make_runner(sampled, n_workers=5, chunk_mb=1, path="b/in")
        return run_mmc_mapreduce(runner, "b/in", pois, output_path="b/models")

    models = benchmark.pedantic(run, rounds=2, iterations=1)
    assert models
