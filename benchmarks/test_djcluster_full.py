"""Section VII end-to-end — the full MapReduced DJ-Cluster at Table IV
scale, including fault-tolerance overhead.

Runs the complete chain (preprocess -> R-tree -> neighborhood -> merge)
on the 10-minute sampled corpus (the scale the paper preprocesses down
to ~14 k traces), reports per-stage simulated time and cluster/noise
counts, and measures the simulated cost of injected task failures.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.algorithms.sampling import sample_array
from repro.mapreduce.failures import FailureInjector

PARAMS = DJClusterParams(radius_m=100.0, min_pts=8)


@pytest.fixture(scope="module")
def sampled_10min(corpus_128mb):
    array, _ = corpus_128mb
    return sample_array(array, 600.0)


@pytest.fixture(scope="module")
def dj_result(sampled_10min):
    runner = make_runner(sampled_10min, n_workers=5, chunk_mb=1, path="in")
    res = run_djcluster_mapreduce(runner, "in", PARAMS, workdir="dj")
    clustered = sum(len(c) for c in res.clusters)
    lines = [
        "Section VII - full MapReduced DJ-Cluster (10-min sampled corpus)",
        f"input traces:        {len(sampled_10min):,}",
        f"after preprocessing: {len(res.preprocessed):,}",
        f"clusters:            {res.n_clusters}",
        f"clustered traces:    {clustered:,}",
        f"noise traces:        {len(res.noise_ids):,}",
    ]
    for stage, sim in res.stage_sim_seconds.items():
        lines.append(f"  {stage:<20} {sim:8.1f} simulated s")
    lines.append(f"  {'total':<20} {res.sim_seconds:8.1f} simulated s")
    print(write_report("djcluster_full", lines))
    return res


def test_full_djcluster_report(dj_result, sampled_10min):
    res = dj_result
    n_pre = len(res.preprocessed)
    clustered = sum(len(c) for c in res.clusters)
    assert res.n_clusters >= 100  # ~several POIs per each of 178 users
    assert clustered + len(res.noise_ids) == n_pre
    for cluster in res.clusters:
        assert len(cluster) >= PARAMS.min_pts


@pytest.fixture(scope="module")
def failure_overhead(sampled_10min, dj_result):
    flaky_runner = make_runner(
        sampled_10min,
        n_workers=5,
        chunk_mb=1,
        path="in",
        failure_injector=FailureInjector(probability=0.08, seed=13),
        max_attempts=10,
    )
    flaky = run_djcluster_mapreduce(flaky_runner, "in", PARAMS, workdir="dj")
    lines = [
        "Fault-tolerance overhead - DJ-Cluster with 8% task failure rate",
        f"clean sim time: {dj_result.sim_seconds:.1f}s",
        f"flaky sim time: {flaky.sim_seconds:.1f}s",
        f"overhead: {flaky.sim_seconds - dj_result.sim_seconds:+.1f}s",
    ]
    print(write_report("ablation_failures", lines))
    return flaky


def test_failure_injection_overhead(failure_overhead, dj_result):
    # Results identical despite retries; time no cheaper.
    assert failure_overhead.cluster_signature() == dj_result.cluster_signature()
    assert failure_overhead.sim_seconds >= dj_result.sim_seconds


def test_benchmark_djcluster(benchmark, sampled_10min, dj_result, failure_overhead):
    """Wall-clock of one full MapReduced DJ-Cluster run.

    Depends on ``dj_result``/``failure_overhead`` so a
    ``--benchmark-only`` run still generates both Section VII reports.
    """

    def run():
        runner = make_runner(sampled_10min, n_workers=5, chunk_mb=1, path="b/in")
        return run_djcluster_mapreduce(runner, "b/in", PARAMS, workdir="b/dj")

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.n_clusters > 0
