"""X4 — cluster-size scaling of the sampling job (Section V).

The paper ran sampling over the full 18 GB GeoLife corpus on 61 nodes:
282 chunks of 64 MB, ~4-5 map tasks per node (~2-3 waves over 122
slots), completing in 1 min 48 s.  We model the 18 GB input by inflating
the per-record on-disk size (the computation still processes the real
2 M traces; the cost model sees 282 x 64 MB chunks) and sweep the worker
count.  Expected shape: simulated completion time falls hyperbolically
with workers as waves shrink, flattening once every chunk runs in the
first wave.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.sampling import run_sampling_job

WORKER_COUNTS = [5, 15, 30, 61, 141]


@pytest.fixture(scope="module")
def scaling(corpus_128mb):
    array, _ = corpus_128mb
    # Model the 18 GB corpus: inflate per-record bytes so the namenode
    # sees ~282 chunks of 64 MB over the real traces.
    record_bytes = int(18 * 2**30 / len(array))
    rows = []
    for workers in WORKER_COUNTS:
        runner = make_runner(
            array, n_workers=workers, chunk_mb=64, record_bytes=record_bytes
        )
        n_chunks = len(runner.hdfs.chunks("input/traces"))
        res = run_sampling_job(runner, "input/traces", "out", 60.0)
        rows.append((workers, n_chunks, res.map_plan.waves, res.sim_seconds))
    lines = [
        "X4 - sampling the modelled 18 GB corpus vs cluster size",
        "(paper: 61 nodes, 282 chunks, ~4-5 maps/node, 108 s)",
        f"{'workers':>8} {'chunks':>7} {'waves':>6} {'sim s':>8}",
    ]
    for workers, chunks, waves, sim in rows:
        lines.append(f"{workers:>8} {chunks:>7} {waves:>6} {sim:>8.1f}")
    print(write_report("scaling_nodes", lines))
    return rows


def test_scaling_shape(scaling):
    assert len(scaling) == len(WORKER_COUNTS)


def test_scaling_monotone(scaling):
    sims = [row[3] for row in scaling]
    assert all(b <= a + 1e-6 for a, b in zip(sims, sims[1:])), sims
    # Strict speed-up while waves are shrinking.
    assert sims[0] > sims[-1]


def test_chunk_count_matches_paper(scaling):
    # 2 M traces x 9 KB / 64 MB ~ 270-300 chunks (paper: 282).
    n_chunks = scaling[0][1]
    assert 250 <= n_chunks <= 310


def test_61_node_run_in_paper_ballpark(scaling):
    """Paper: 1 min 48 s = 108 s on 61 nodes."""
    row = next(r for r in scaling if r[0] == 61)
    assert row[3] == pytest.approx(108.0, abs=45.0)


def test_benchmark_61_node_sampling(benchmark, corpus_128mb, scaling):
    """Wall-clock of the 61-node modelled-18GB sampling run.

    Depends on ``scaling`` so a ``--benchmark-only`` run still generates
    the X4 scaling report.
    """
    array, _ = corpus_128mb
    record_bytes = int(18 * 2**30 / len(array))

    def run():
        runner = make_runner(
            array, n_workers=61, chunk_mb=64, record_bytes=record_bytes,
            path="b/in",
        )
        return run_sampling_job(runner, "b/in", "b/out", 60.0)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.sim_seconds > 0
