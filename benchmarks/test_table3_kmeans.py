"""Table III — MapReduced k-means iteration time (Section VI).

Paper (k=11, convergencedelta=0.5, maxIter=150, 7-node Parapluie
deployment: 5 workers x 2 map slots):

    data MB  traces     distance          chunk MB  iter time (s)
    66       1,050,000  Haversine         64        57
    66       1,050,000  Squared Euclidean 64        48
    66       1,050,000  Squared Euclidean 32        41
    66       1,050,000  Haversine         32        45
    128      2,033,686  Squared Euclidean 64        51
    128      2,033,686  Squared Euclidean 32        45
    128      2,033,686  Haversine         32        48
    128      2,033,686  Haversine         64        60

Reproduction: the same eight scenarios on the simulated deployment.  The
iteration executes for real (vectorized assignment over the actual 1-2 M
traces); the reported seconds come from the calibrated cost model fed
with the run's actual chunking, locality and shuffle volume.  Expected
shape: 32 MB chunks beat 64 MB, squared Euclidean beats Haversine, and
the larger dataset is consistently a few seconds slower.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_runner, write_history, write_report
from repro.algorithms.kmeans import run_kmeans_mapreduce

K = 11
PAPER = {
    (66, "haversine", 64): 57,
    (66, "squared_euclidean", 64): 48,
    (66, "squared_euclidean", 32): 41,
    (66, "haversine", 32): 45,
    (128, "squared_euclidean", 64): 51,
    (128, "squared_euclidean", 32): 45,
    (128, "haversine", 32): 48,
    (128, "haversine", 64): 60,
}


@pytest.fixture(scope="module")
def iteration_times(corpus_66mb, corpus_128mb):
    arrays = {66: corpus_66mb[0], 128: corpus_128mb[0]}
    rng = np.random.default_rng(11)
    measured = {}
    tasks = {}
    for (data_mb, distance, chunk_mb), _paper in PAPER.items():
        array = arrays[data_mb]
        init = array.coordinates()[rng.choice(len(array), K, replace=False)]
        runner = make_runner(array, n_workers=5, chunk_mb=chunk_mb)
        res = run_kmeans_mapreduce(
            runner,
            "input/traces",
            K,
            distance=distance,
            max_iter=1,
            initial_centroids=init,
        )
        measured[(data_mb, distance, chunk_mb)] = res.history[0].sim_seconds
        tasks[(data_mb, distance, chunk_mb)] = res.history[0].map_tasks
        if (data_mb, distance, chunk_mb) == (66, "haversine", 64):
            # Keep one scenario's full job trace for `repro history`.
            write_history("table3_kmeans", runner)
    lines = [
        "Table III - MapReduced k-means iteration time (k=11, 7 nodes)",
        f"{'data MB':>7} {'distance':<18} {'chunk MB':>8} {'maps':>5} "
        f"{'paper s':>8} {'measured s':>11}",
    ]
    for key, paper_s in PAPER.items():
        data_mb, distance, chunk_mb = key
        lines.append(
            f"{data_mb:>7} {distance:<18} {chunk_mb:>8} {tasks[key]:>5} "
            f"{paper_s:>8} {measured[key]:>11.1f}"
        )
    print(write_report("table3_kmeans", lines))
    return measured, tasks


def test_table3_reproduction(iteration_times):
    measured, tasks = iteration_times
    for key, paper_s in PAPER.items():
        assert measured[key] == pytest.approx(paper_s, abs=8.0), (
            f"{key}: {measured[key]:.1f}s vs paper {paper_s}s"
        )


def test_table3_chunk_size_effect(iteration_times):
    """Smaller chunks -> more parallel mappers -> faster iteration."""
    measured, tasks = iteration_times
    for data_mb in (66, 128):
        for distance in ("haversine", "squared_euclidean"):
            assert measured[(data_mb, distance, 32)] < measured[(data_mb, distance, 64)]
            assert tasks[(data_mb, distance, 32)] > tasks[(data_mb, distance, 64)]


def test_table3_distance_effect(iteration_times):
    """Haversine's heavier formula slows every configuration."""
    measured, _ = iteration_times
    for data_mb in (66, 128):
        for chunk in (32, 64):
            assert (
                measured[(data_mb, "haversine", chunk)]
                > measured[(data_mb, "squared_euclidean", chunk)]
            )


def test_table3_dataset_size_effect(iteration_times):
    """The 128 MB dataset never beats the 66 MB one."""
    measured, _ = iteration_times
    for distance in ("haversine", "squared_euclidean"):
        for chunk in (32, 64):
            assert measured[(128, distance, chunk)] >= measured[(66, distance, chunk)] - 0.5


def test_figure4_workflow_artifacts(corpus_66mb):
    """Figure 4 — each iteration is one MR job writing a clusters-i dir,
    re-broadcast as the next iteration's input."""
    array, _ = corpus_66mb
    sub = array[:100_000]
    runner = make_runner(sub, n_workers=5, chunk_mb=4)
    init = sub.coordinates()[:K]
    res = run_kmeans_mapreduce(
        runner, "input/traces", K, max_iter=3, convergence_delta=0.0,
        initial_centroids=init, workdir="kmeans",
    )
    assert res.n_iterations == 3
    for i in (1, 2, 3):
        records = runner.hdfs.read_records(f"kmeans/clusters-{i}")
        assert 1 <= len(records) <= K
        for cid, (lat, lon, count) in records:
            assert 0 <= int(cid) < K and count > 0


def test_benchmark_kmeans_iteration(benchmark, corpus_66mb, iteration_times):
    """Wall-clock of one real MR k-means iteration on ~1M traces.

    Depends on ``iteration_times`` so a ``--benchmark-only`` run still
    generates the Table III reproduction report.
    """
    array, _ = corpus_66mb
    init = array.coordinates()[:K]

    def run():
        runner = make_runner(array, n_workers=5, chunk_mb=64, path="bench/traces")
        res = run_kmeans_mapreduce(
            runner, "bench/traces", K, max_iter=1, initial_centroids=init,
            workdir="bench/kmeans",
        )
        return res.history[0].sim_seconds

    sim = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sim > 0
