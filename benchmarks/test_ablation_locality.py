"""Ablation — data-locality scheduling (Section III).

"The system assigns tasks to the nodes based on the locations of the
data chunks ... priority is given to neighboring nodes."  This bench
turns the jobtracker's locality preference off and measures what it
buys: the node-local map fraction and the simulated map-phase time
(remote reads pay a per-MB network penalty in the cost model).  A
second knob does the same for the *reduce* side: locality-aware reduce
placement pins each reducer to the node holding the plurality of its
partition's pre-aggregated envelopes, so only the minority remainder
crosses the network.
"""

import pytest

from benchmarks.conftest import write_report
from repro.algorithms.kmeans import run_kmeans_mapreduce
from repro.algorithms.sampling import run_sampling_job
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.runner import JobRunner


@pytest.fixture(scope="module")
def locality_runs(corpus_128mb):
    array, _ = corpus_128mb
    out = {}
    for prefer in (True, False):
        hdfs = SimulatedHDFS(
            paper_cluster(10, nodes_per_rack=4), chunk_size=4 * MB, seed=0
        )
        hdfs.put_trace_array("in", array)
        runner = JobRunner(hdfs, prefer_locality=prefer)
        res = run_sampling_job(runner, "in", "out", 60.0)
        sched = res.counters.group(STANDARD.GROUP_SCHEDULER)
        out[prefer] = (res, sched)
    on_res, on_sched = out[True]
    off_res, off_sched = out[False]
    lines = [
        "Ablation - jobtracker data-locality preference",
        f"{'scheduler':<12} {'node-local %':>13} {'map sim s':>10}",
        f"{'locality on':<12} {_local_fraction(on_sched):>12.0%} {on_res.timing.map_s:>10.2f}",
        f"{'locality off':<12} {_local_fraction(off_sched):>12.0%} {off_res.timing.map_s:>10.2f}",
    ]
    print(write_report("ablation_locality", lines))
    return out


def _local_fraction(sched) -> float:
    local = sched.get(STANDARD.DATA_LOCAL_MAPS, 0)
    total = (
        local
        + sched.get(STANDARD.RACK_LOCAL_MAPS, 0)
        + sched.get(STANDARD.REMOTE_MAPS, 0)
    )
    return local / total if total else 0.0


@pytest.fixture(scope="module")
def placement_runs(corpus_66mb):
    """Aggregation-declared k-means with reduce placement on vs off."""
    array, _ = corpus_66mb
    init = array.coordinates()[:8].copy()
    out = {}
    for pinned in (True, False):
        hdfs = SimulatedHDFS(
            paper_cluster(10, nodes_per_rack=4), chunk_size=4 * MB, seed=0
        )
        hdfs.put_trace_array("in", array)
        runner = JobRunner(hdfs, reduce_locality=pinned)
        res = run_kmeans_mapreduce(
            runner, "in", 8, max_iter=1, initial_centroids=init,
            use_aggregation=True, workdir="km",
        )
        cross = runner.history.job_finish("kmeans-iter-1").data["counters"][
            STANDARD.GROUP_TASK
        ].get(STANDARD.SHUFFLE_CROSS_NODE_BYTES, 0)
        out[pinned] = (res, int(cross))
    on_res, on_cross = out[True]
    off_res, off_cross = out[False]
    total = on_res.history[0].shuffle_bytes
    lines = [
        "Ablation - locality-aware reduce placement "
        "(aggregation k-means, 66 MB corpus, k=8, 1 iteration)",
        f"{'placement':<14} {'cross-node B':>13} {'of total B':>11} {'reduce sim s':>13}",
        f"{'pinned':<14} {on_cross:>13,} {total:>11,} "
        f"{on_res.history[0].sim_seconds:>13.2f}",
        f"{'heap order':<14} {off_cross:>13,} {total:>11,} "
        f"{off_res.history[0].sim_seconds:>13.2f}",
    ]
    print(write_report("ablation_reduce_placement", lines))
    return out


def test_locality_preference_raises_local_fraction(locality_runs):
    _, on_sched = locality_runs[True]
    _, off_sched = locality_runs[False]
    f_on = _local_fraction(on_sched)
    f_off = _local_fraction(off_sched)
    assert f_on > f_off
    assert f_on > 0.6


def test_locality_never_slower(locality_runs):
    on_res, _ = locality_runs[True]
    off_res, _ = locality_runs[False]
    assert on_res.timing.map_s <= off_res.timing.map_s + 1e-6


def test_outputs_identical_either_way(locality_runs):
    on_res, on_sched = locality_runs[True]
    off_res, off_sched = locality_runs[False]
    on_out = on_res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS)
    off_out = off_res.counters.value(STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS)
    assert on_out == off_out


def test_reduce_placement_cuts_cross_node_bytes(placement_runs):
    _, on_cross = placement_runs[True]
    _, off_cross = placement_runs[False]
    assert on_cross < off_cross


def test_reduce_placement_keeps_minority_share(placement_runs):
    """Pinning keeps at least the plurality node's bytes local, so the
    crossing remainder is a strict minority of the shuffled volume."""
    on_res, on_cross = placement_runs[True]
    total = on_res.history[0].shuffle_bytes
    assert 0 <= on_cross < total


def test_reduce_placement_sim_time_within_noise(placement_runs):
    """Pinning trades reduce-slot spread for locality: when two
    partitions' plurality bytes live on the same node their reducers
    serialize on its slots.  At metadata-only volumes the fetch saving
    is tiny, so allow a small bounded makespan cost — the win shows up
    in cross-node bytes, not sim seconds, at this scale."""
    on_res, _ = placement_runs[True]
    off_res, _ = placement_runs[False]
    assert on_res.history[0].sim_seconds <= off_res.history[0].sim_seconds * 1.10


def test_reduce_placement_outputs_identical(placement_runs):
    on_res, _ = placement_runs[True]
    off_res, _ = placement_runs[False]
    assert on_res.centroids.tobytes() == off_res.centroids.tobytes()
    assert (
        on_res.history[0].shuffle_bytes == off_res.history[0].shuffle_bytes
    )


def test_benchmark_locality_scheduling(benchmark, locality_runs, corpus_128mb):
    """Wall-clock of planning the locality-aware map phase over ~420
    chunks.  Depends on ``locality_runs`` so a ``--benchmark-only`` run
    still generates the locality ablation report.
    """
    from repro.mapreduce.scheduler import plan_map_phase
    from repro.mapreduce.simtime import CostModel

    array, _ = corpus_128mb
    hdfs = SimulatedHDFS(paper_cluster(10, nodes_per_rack=4), chunk_size=256 * 1024, seed=0)
    hdfs.put_trace_array("in", array)
    chunks = hdfs.chunks("in")
    model = CostModel()
    plan = benchmark(
        plan_map_phase,
        chunks,
        hdfs.cluster,
        lambda c, loc: model.map_task_time(c, loc),
    )
    assert len(plan.assignments) == len(chunks)
