"""Ablation X3 — the k-means combiner and the aggregation algebra.

The paper describes the Zhao et al. speed-up: a combiner sums each map
task's points locally so "the communication cost ... is null" — only one
tiny partial-sum record per (mapper, cluster) crosses the shuffle
instead of every trace.  This bench quantifies that on the 66 MB
corpus — shuffle bytes, reduce input records and simulated time — and
adds the third rung of the ladder: declaring the reduce as the
:class:`~repro.algorithms.kmeans.KMeansAggregation` monoid, which
replaces the pickled per-task partial records with fixed-size aggregate
envelopes coalesced per (node, key) in the metadata-only shuffle.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.kmeans import run_kmeans_mapreduce

K = 11

VARIANTS = ("plain", "combiner", "aggregation")


@pytest.fixture(scope="module")
def combiner_runs(corpus_66mb):
    array, _ = corpus_66mb
    init = array.coordinates()[
        np.random.default_rng(3).choice(len(array), K, replace=False)
    ]
    out = {}
    for variant in VARIANTS:
        runner = make_runner(array, n_workers=5, chunk_mb=64)
        res = run_kmeans_mapreduce(
            runner,
            "input/traces",
            K,
            max_iter=1,
            initial_centroids=init,
            use_combiner=(variant == "combiner"),
            use_aggregation=(variant == "aggregation"),
            workdir="km",
        )
        out[variant] = res
    plain = out["plain"].history[0]
    combined = out["combiner"].history[0]
    agg = out["aggregation"].history[0]
    c_ratio = plain.shuffle_bytes / max(combined.shuffle_bytes, 1)
    a_ratio = combined.shuffle_bytes / max(agg.shuffle_bytes, 1)
    lines = [
        "Ablation X3 - k-means combiner + aggregation algebra "
        "(66 MB corpus, k=11, 1 iteration)",
        f"{'variant':<12} {'shuffle bytes':>14} {'sim s':>7}",
        f"{'no combiner':<12} {plain.shuffle_bytes:>14,} {plain.sim_seconds:>7.1f}",
        f"{'combiner':<12} {combined.shuffle_bytes:>14,} {combined.sim_seconds:>7.1f}",
        f"{'aggregation':<12} {agg.shuffle_bytes:>14,} {agg.sim_seconds:>7.1f}",
        f"shuffle reduction: combiner {c_ratio:,.0f}x vs plain; "
        f"aggregation {a_ratio:,.1f}x vs combiner",
    ]
    print(write_report("ablation_combiner", lines))
    return out


def test_combiner_cuts_shuffle_volume(combiner_runs):
    plain = combiner_runs["plain"].history[0]
    combined = combiner_runs["combiner"].history[0]
    ratio = plain.shuffle_bytes / max(combined.shuffle_bytes, 1)
    # Map tasks x k tiny records vs ~16 bytes per trace.
    assert ratio > 1000


def test_aggregation_cuts_shuffle_beyond_combiner(combiner_runs):
    """The metadata-only shuffle ships one fixed-size envelope per
    (node, key) instead of one pickled partial per (map task, key).
    On this 66 MB corpus there are only a couple of map tasks so the
    collapse is modest; the headline >=10x gate runs at 10^6 traces in
    ``repro bench --shuffle`` (benchmarks/results/BENCH_shuffle.json,
    50x measured)."""
    combined = combiner_runs["combiner"].history[0]
    agg = combiner_runs["aggregation"].history[0]
    assert combined.shuffle_bytes / max(agg.shuffle_bytes, 1) >= 4


def test_combiner_does_not_change_centroids(combiner_runs):
    a = combiner_runs["plain"].centroids
    b = combiner_runs["combiner"].centroids
    assert np.abs(a - b).max() < 1e-9


def test_aggregation_centroids_match_to_rounding(combiner_runs):
    """The aggregation reduce folds with the canonical node-major merge
    tree, so its float sums may differ from the combiner path in the
    last bits — but never beyond rounding."""
    b = combiner_runs["combiner"].centroids
    c = combiner_runs["aggregation"].centroids
    assert np.abs(b - c).max() < 1e-9


def test_combiner_never_slower_in_sim_time(combiner_runs):
    assert (
        combiner_runs["combiner"].history[0].sim_seconds
        <= combiner_runs["plain"].history[0].sim_seconds + 0.5
    )


def test_benchmark_combiner_iteration(benchmark, corpus_66mb, combiner_runs):
    """Wall-clock of one combiner-enabled MR k-means iteration.

    Depends on ``combiner_runs`` so a ``--benchmark-only`` run still
    generates the X3 ablation report.
    """
    array, _ = corpus_66mb
    init = array.coordinates()[:K]

    def run():
        runner = make_runner(array, n_workers=5, chunk_mb=64, path="b/in")
        return run_kmeans_mapreduce(
            runner, "b/in", K, max_iter=1, initial_centroids=init,
            use_combiner=True, workdir="b/km",
        )

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.history
