"""Micro-benchmark: the vectorized shuffle fast path vs the generic loop.

The shuffle is the engine's hottest driver-side path — every record of
every map output crosses it once per job.  The vectorized path (one
global stable argsort + FNV hashing of unique group keys + bulk gathers
with cyclic GC paused; see docs/PERFORMANCE.md) must buy a real
constant factor to justify its existence: this benchmark asserts >=5x
over the generic per-record loop on 10^6 records.

The workload models the engine's own common case — integer timestamp
keys with moderate cardinality (50k unique keys, so ~20 values per
group) hash-partitioned across 6 reducers.  Correctness (element-exact
equality of fast and generic results, including byte accounting) is
covered at small scale by tests/mapreduce/test_shuffle_fastpath.py and
re-asserted here once at full scale before timing.

Opt-in via ``-m bench``: timings on a loaded box are noise, which is
also why each path is timed best-of-N.
"""

import random
import time

import pytest

from benchmarks.conftest import write_report
from repro.mapreduce.job import HashPartitioner
from repro.mapreduce.shuffle import _shuffle_fast, _shuffle_generic

pytestmark = pytest.mark.bench

N_RECORDS = 1_000_000
N_KEYS = 50_000
N_MAP_TASKS = 8
N_REDUCERS = 6


def _timestamp_workload():
    rng = random.Random(20260806)
    base = 1_600_000_000_000_000
    keys = [base + rng.randint(0, 10**12) for _ in range(N_KEYS)]
    pairs = [(keys[rng.randrange(N_KEYS)], rng.random()) for _ in range(N_RECORDS)]
    return [pairs[i::N_MAP_TASKS] for i in range(N_MAP_TASKS)]


def _best_of(fn, repeats):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_fast_path_at_least_5x_on_1m_records():
    map_outputs = _timestamp_workload()
    partitioner = HashPartitioner()

    fast = _shuffle_fast(map_outputs, partitioner, N_REDUCERS)
    assert fast is not None, "workload unexpectedly fell off the fast path"
    want = _shuffle_generic(map_outputs, partitioner, N_REDUCERS)
    assert fast.partition_bytes == want.partition_bytes
    assert fast.partitions == want.partitions

    t_fast = _best_of(lambda: _shuffle_fast(map_outputs, partitioner, N_REDUCERS), 3)
    t_generic = _best_of(
        lambda: _shuffle_generic(map_outputs, partitioner, N_REDUCERS), 2
    )
    speedup = t_generic / t_fast
    write_report(
        "BENCH_shuffle_fastpath",
        [
            f"shuffle of {N_RECORDS:,} records, {N_KEYS:,} unique int keys, "
            f"{N_MAP_TASKS} map outputs -> {N_REDUCERS} reducers",
            f"generic per-record loop: {t_generic:.3f}s (best of 2)",
            f"vectorized fast path:   {t_fast:.3f}s (best of 3)",
            f"speedup: {speedup:.1f}x",
        ],
    )
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x over generic"
