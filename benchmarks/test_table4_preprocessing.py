"""Table IV — DJ-Cluster preprocessing reduction (Section VII-A, Fig. 5).

Paper (GeoLife sampled datasets; speed threshold 0.72 km/h = 0.2 m/s):

    sampling  unfiltered  after speed filter  after dedup
    1 min       155,260        86,416            85,743
    5 min        41,263        23,996            23,894
    10 min       23,596        14,207            14,174

Reproduction: the 178-user corpus sampled at the same three rates, then
pushed through the two pipelined map-only preprocessing jobs.  Expected
shape: the speed filter removes the moving ~half of the traces (the
paper keeps 56-60%), while duplicate removal shaves a further sliver.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.djcluster import DJClusterParams, run_preprocessing_pipeline
from repro.algorithms.sampling import sample_array

PAPER = {
    "1 min": (155_260, 86_416, 85_743),
    "5 min": (41_263, 23_996, 23_894),
    "10 min": (23_596, 14_207, 14_174),
}
WINDOWS = {"1 min": 60.0, "5 min": 300.0, "10 min": 600.0}
PARAMS = DJClusterParams()  # 0.2 m/s threshold, as in the paper


@pytest.fixture(scope="module")
def preprocessing_counts(corpus_128mb):
    array, _ = corpus_128mb
    rows = {}
    for label, window in WINDOWS.items():
        sampled = sample_array(array, window)
        runner = make_runner(sampled, n_workers=5, chunk_mb=4, path="in")
        result = run_preprocessing_pipeline(runner, "in", PARAMS, workdir="pre")
        rows[label] = (
            len(sampled),
            runner.hdfs.file_records("pre/stationary"),
            runner.hdfs.file_records("pre/preprocessed"),
            result.sim_seconds,
        )
    lines = [
        "Table IV - traces remaining after the preprocessing phase",
        f"{'rate':<7} {'paper: unf/filt/dedup':>26} {'measured: unf/filt/dedup':>30}",
    ]
    for label, paper in PAPER.items():
        unf, filt, dedup, _sim = rows[label]
        lines.append(
            f"{label:<7} {paper[0]:>8,}/{paper[1]:>7,}/{paper[2]:>7,} "
            f"{unf:>10,}/{filt:>8,}/{dedup:>8,}"
        )
    lines.append("")
    for label, (_, _, _, sim) in rows.items():
        lines.append(f"pipeline simulated time ({label}): {sim:.1f}s (2 chained jobs)")
    print(write_report("table4_preprocessing", lines))
    return rows


def test_table4_reproduction(preprocessing_counts):
    for label, (unf, filt, dedup, _) in preprocessing_counts.items():
        paper_unf, paper_filt, paper_dedup = PAPER[label]
        kept_paper = paper_filt / paper_unf
        kept_ours = filt / unf
        # Speed filter keeps roughly the paper's stationary share.
        assert abs(kept_ours - kept_paper) < 0.25, (
            f"{label}: filter keeps {kept_ours:.0%} vs paper {kept_paper:.0%}"
        )
        # Dedup is the minor second filter in both.
        dedup_frac_ours = (filt - dedup) / filt
        assert dedup_frac_ours < 0.2
        assert (unf - filt) > (filt - dedup), "filter must dominate dedup"


def test_figure5_pipelined_jobs(preprocessing_counts, corpus_128mb):
    """Figure 5 — two map-only jobs in pipeline: job 2 reads job 1's
    output, and counts are monotonically non-increasing."""
    for unf, filt, dedup, _ in preprocessing_counts.values():
        assert unf >= filt >= dedup > 0


def test_benchmark_preprocessing(benchmark, corpus_128mb, preprocessing_counts):
    """Wall-clock of the vectorized preprocessing kernels at 1-min scale.

    Depends on ``preprocessing_counts`` so a ``--benchmark-only`` run
    still generates the Table IV reproduction report.
    """
    from repro.algorithms.djcluster import preprocess_array

    array, _ = corpus_128mb
    sampled = sample_array(array, 60.0)
    stationary, deduped = benchmark(preprocess_array, sampled, PARAMS)
    assert len(deduped) <= len(stationary) <= len(sampled)
