"""Ablation — k-means initialization (random vs k-means++).

The paper notes k-means' sensitivity to "the method for choosing the
initial centers of the clusters" and that the iteration count "depends
on the initial selection of centroids" (its Table III numbers average
3-5 trials for exactly this reason).  This bench quantifies that on the
66 MB corpus: over multiple seeds, compare iterations-to-convergence and
final inertia for the paper's uniform-random seeding vs k-means++.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.algorithms.kmeans import kmeans_sequential

K = 11
SEEDS = range(6)


@pytest.fixture(scope="module")
def init_sweep(corpus_66mb):
    array, _ = corpus_66mb
    # Sequential k-means at full corpus scale is feasible (vectorized);
    # subsample to keep the multi-seed sweep snappy.
    pts = array.coordinates()[:: max(1, len(array) // 150_000)]
    rows = {}
    for method in ("random", "kmeans++"):
        iters, inertias = [], []
        for seed in SEEDS:
            res = kmeans_sequential(
                pts, K, convergence_delta=1e-6, max_iter=150, seed=seed, init=method
            )
            iters.append(res.n_iterations)
            inertias.append(res.inertia)
        rows[method] = (np.mean(iters), np.mean(inertias), np.std(inertias))
    lines = [
        "Ablation - k-means initialization (k=11, 6 seeds, 66 MB corpus sample)",
        f"{'init':<10} {'mean iters':>10} {'mean inertia':>13} {'inertia std':>12}",
    ]
    for method, (mean_it, mean_in, std_in) in rows.items():
        lines.append(f"{method:<10} {mean_it:>10.1f} {mean_in:>13.4f} {std_in:>12.5f}")
    print(write_report("ablation_init", lines))
    return rows


def test_kmeanspp_no_worse_inertia(init_sweep):
    rand_inertia = init_sweep["random"][1]
    pp_inertia = init_sweep["kmeans++"][1]
    assert pp_inertia <= rand_inertia * 1.05


def test_kmeanspp_more_stable(init_sweep):
    """D^2 seeding reduces run-to-run variance (or at least never
    blows it up)."""
    assert init_sweep["kmeans++"][2] <= init_sweep["random"][2] * 1.5


def test_iteration_counts_paper_scale(init_sweep):
    """The paper reports 70-93 iterations to converge at delta 0.5 with
    k=11; our convergence behaviour is the same order of magnitude."""
    for method, (mean_it, _, _) in init_sweep.items():
        assert 5 <= mean_it <= 150


def test_benchmark_init_methods(benchmark, corpus_66mb, init_sweep):
    """Wall-clock of one full sequential k-means run (random init).

    Depends on ``init_sweep`` so a ``--benchmark-only`` run still
    generates the init ablation report.
    """
    array, _ = corpus_66mb
    pts = array.coordinates()[:: max(1, len(array) // 100_000)]
    res = benchmark(
        kmeans_sequential, pts, K, "squared_euclidean", 1e-6, 60, 3
    )
    assert res.centroids.shape == (K, 2)
