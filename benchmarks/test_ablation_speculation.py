"""Ablation — speculative execution (Hadoop straggler mitigation).

When one chunk is much larger than the rest (a straggler), Hadoop can
launch a duplicate attempt on another node and take whichever finishes
first.  This bench builds a skewed chunk distribution over the modelled
cluster and measures the simulated map-phase makespan with and without
speculation.  (In this simulator task durations are deterministic, so
the duplicate only wins when it starts early enough on a faster path —
the bench asserts speculation never hurts and reports what it buys.)
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.scheduler import plan_map_phase
from repro.mapreduce.simtime import CostModel
from repro.mapreduce.types import ArrayPayload, Chunk
from repro.geo.trace import TraceArray


def _chunk(cid, n_traces, replicas):
    arr = TraceArray.from_columns(
        ["u"], np.zeros(n_traces), np.zeros(n_traces), np.arange(n_traces, dtype=float)
    )
    return Chunk(cid, ArrayPayload(arr, record_bytes=64), replicas=tuple(replicas))


@pytest.fixture(scope="module")
def skewed_plan():
    """One 10x straggler chunk pinned (with its replicas) to a single
    slow-path node, plus uniform small chunks."""
    cluster = paper_cluster(4)
    workers = [n.name for n in cluster.tasktrackers()]
    chunks = [_chunk("c-big", 600_000, [workers[0]])]
    chunks += [_chunk(f"c-{i}", 60_000, [workers[(i + 1) % len(workers)]]) for i in range(10)]
    model = CostModel()

    def time_fn(chunk, locality):
        # Exaggerate the straggler: its home node reads slowly.
        base = model.map_task_time(chunk, locality)
        return base * (3.0 if chunk.chunk_id == "c-big" and locality == "node_local" else 1.0)

    plain = plan_map_phase(chunks, cluster, time_fn, speculative=False)
    spec = plan_map_phase(chunks, cluster, time_fn, speculative=True, straggler_factor=1.3)
    lines = [
        "Ablation - speculative execution on a skewed chunk distribution",
        f"{'variant':<16} {'makespan s':>11} {'attempts':>9}",
        f"{'no speculation':<16} {plain.makespan:>11.2f} {len(plain.assignments):>9}",
        f"{'speculation':<16} {spec.makespan:>11.2f} {len(spec.assignments):>9}",
    ]
    print(write_report("ablation_speculation", lines))
    return plain, spec


def test_speculation_never_hurts(skewed_plan):
    plain, spec = skewed_plan
    assert spec.makespan <= plain.makespan + 1e-9


def test_speculation_duplicates_the_straggler(skewed_plan):
    _, spec = skewed_plan
    dupes = [a for a in spec.assignments if a.speculative]
    assert dupes
    # The big chunk is the defining straggler; it must be re-attempted
    # (late-wave small tasks may legitimately speculate too).
    assert any(a.chunk.chunk_id == "c-big" for a in dupes)


def test_speculation_improves_makespan_here(skewed_plan):
    """With the straggler's duplicate on a fast node, the win is real."""
    plain, spec = skewed_plan
    assert spec.makespan < plain.makespan * 0.9


def test_benchmark_speculative_planning(benchmark, skewed_plan):
    """Wall-clock of planning a 500-chunk skewed map phase with
    speculation enabled.  Depends on ``skewed_plan`` so a
    ``--benchmark-only`` run still generates the speculation report."""
    cluster = paper_cluster(8)
    workers = [n.name for n in cluster.tasktrackers()]
    chunks = [
        _chunk(f"b-{i}", 30_000 + (i % 7) * 20_000, [workers[i % len(workers)]])
        for i in range(500)
    ]
    model = CostModel()
    plan = benchmark(
        plan_map_phase,
        chunks,
        cluster,
        lambda c, loc: model.map_task_time(c, loc),
        True,
        True,
    )
    assert len(plan.assignments) >= 500
