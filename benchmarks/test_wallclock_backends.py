"""Wall-clock trajectory of the execution backends (docs/PERFORMANCE.md).

Times the fixed-initial-centroid k-means driver on serial / threads /
processes over 10^5- and 10^6-trace synthetic corpora and writes the
JSON document (``results/BENCH_backends.json``) that, once committed to
``benchmarks/BENCH_backends.json``, becomes the baseline for
``python -m repro bench --check``.

Unlike the pytest-benchmark suites in this directory, these tests are
gated behind the opt-in ``bench`` marker (``pytest benchmarks/ -m bench``)
because their whole point is real, machine-dependent wall-clock.

The parallel speedup claim is only asserted where it can hold: the
process pool needs real cores, so the >=2x check is gated on
``os.cpu_count() >= 4``.  On smaller hosts the numbers are still
recorded — honestly, including any slowdown from IPC overhead on a
single core — so the serial-normalized ratios in the baseline stay
meaningful for ``--check`` runs on different hardware.
"""

import os

import pytest

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.mapreduce.bench import (
    render_result,
    run_backend_benchmark,
    save_result,
)

pytestmark = pytest.mark.bench

SIZES = (100_000, 1_000_000)


def test_wallclock_backends():
    doc = run_backend_benchmark(sizes=SIZES, iterations=2)
    save_result(doc, RESULTS_DIR / "BENCH_backends.json")
    write_report("BENCH_backends", render_result(doc).splitlines())

    by_size = {entry["size"]: entry for entry in doc["results"]}
    assert set(by_size) == set(SIZES)
    for entry in by_size.values():
        assert set(entry["times_s"]) == {"serial", "threads", "processes"}
        assert all(t > 0 for t in entry["times_s"].values())

    # The headline claim — process parallelism at least halves the 10^6
    # k-means wall-clock — needs cores to be true on.
    if (os.cpu_count() or 1) >= 4:
        speedup = by_size[1_000_000]["speedup_vs_serial"]["processes"]
        assert speedup >= 2.0, (
            f"processes backend only {speedup:.2f}x over serial at 10^6 "
            f"traces on {os.cpu_count()} cores"
        )
