"""Ablation — DJ-Cluster vs k-means as the POI extractor (Section VII).

The paper motivates DJ-Cluster over k-means: density clustering finds
arbitrary-shape clusters, sheds outliers as noise, is deterministic, and
needs no k.  This bench makes that argument quantitative: both
clusterers extract POIs from the same preprocessed trails, scored
against the generator's ground truth.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.algorithms.djcluster import DJClusterParams
from repro.algorithms.sampling import sample_trail
from repro.attacks.poi import extract_pois_kmeans, poi_attack
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.metrics.privacy import poi_recovery

PARAMS = DJClusterParams(radius_m=80.0, min_pts=6)


@pytest.fixture(scope="module")
def clusterer_scores():
    dataset, users = generate_dataset(SyntheticConfig(n_users=10, days=2, seed=404))
    dj_scores, km_scores = [], []
    for user in users:
        trail = sample_trail(dataset.trail(user.user_id), 60.0)
        truth = user.pois
        dj = poi_attack(trail, PARAMS)
        dj_scores.append(poi_recovery(dj, truth, 150.0))
        # k-means gets the *true* k — the most charitable setting, which
        # a real adversary would not have.
        km = extract_pois_kmeans(
            trail.traces, k=len(truth), min_traces=5, preprocess_params=PARAMS
        )
        km_scores.append(poi_recovery(km, truth, 150.0))
    dj_f1 = float(np.mean([s.f1 for s in dj_scores]))
    km_f1 = float(np.mean([s.f1 for s in km_scores]))
    dj_prec = float(np.mean([s.precision for s in dj_scores]))
    km_prec = float(np.mean([s.precision for s in km_scores]))
    dj_rec = float(np.mean([s.recall for s in dj_scores]))
    km_rec = float(np.mean([s.recall for s in km_scores]))
    lines = [
        "Ablation - POI extraction: DJ-Cluster vs k-means (10 users, true k given to k-means)",
        f"{'clusterer':<11} {'precision':>9} {'recall':>7} {'f1':>6}",
        f"{'dj-cluster':<11} {dj_prec:>9.2f} {dj_rec:>7.2f} {dj_f1:>6.2f}",
        f"{'k-means':<11} {km_prec:>9.2f} {km_rec:>7.2f} {km_f1:>6.2f}",
    ]
    print(write_report("ablation_clusterer", lines))
    return dj_f1, km_f1, dj_prec, km_prec


def test_djcluster_no_worse_than_kmeans(clusterer_scores):
    dj_f1, km_f1, _, _ = clusterer_scores
    assert dj_f1 >= km_f1 - 0.05


def test_djcluster_precision_advantage(clusterer_scores):
    """k-means must place all k centroids; spurious ones (dragged between
    POIs or onto residual transit) cost precision.  DJ-Cluster only
    reports dense regions."""
    _, _, dj_prec, km_prec = clusterer_scores
    assert dj_prec >= km_prec - 0.02


def test_both_find_some_pois(clusterer_scores):
    dj_f1, km_f1, _, _ = clusterer_scores
    assert dj_f1 > 0.5
    assert km_f1 > 0.2


def test_benchmark_poi_attack(benchmark, clusterer_scores):
    """Wall-clock of one user's full POI attack.  Depends on
    ``clusterer_scores`` so ``--benchmark-only`` still writes the report."""
    dataset, users = generate_dataset(SyntheticConfig(n_users=1, days=2, seed=7))
    trail = sample_trail(dataset.trail(users[0].user_id), 60.0)
    pois = benchmark(poi_attack, trail, PARAMS)
    assert pois
