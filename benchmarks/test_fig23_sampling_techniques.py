"""Figures 2-3 — the two representative-selection techniques.

Figure 2 keeps the trace closest to the *upper limit* of each time
window; Figure 3 keeps the trace closest to the *middle*.  This bench
verifies the two techniques pick the documented representatives, that
they disagree on real data, and times the vectorized kernel at the full
2 M-trace scale.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_report
from repro.algorithms.sampling import sample_array
from repro.geo.trace import TraceArray


def test_fig23_technique_semantics():
    """The paper's worked situation: traces through one window."""
    ts = np.array([2.0, 14.0, 27.0, 44.0, 58.0])
    arr = TraceArray.from_columns(["u"], np.arange(5.0), np.zeros(5), ts)
    upper = sample_array(arr, 60.0, "upper")
    middle = sample_array(arr, 60.0, "middle")
    assert list(upper.timestamp) == [58.0]  # closest to 60 (Fig. 2)
    assert list(middle.timestamp) == [27.0]  # closest to 30 (Fig. 3)


@pytest.fixture(scope="module")
def technique_comparison(corpus_128mb):
    array, _ = corpus_128mb
    upper = sample_array(array, 60.0, "upper").sort_by_time()
    middle = sample_array(array, 60.0, "middle").sort_by_time()
    differs = float(np.mean(upper.timestamp != middle.timestamp))
    lines = [
        "Figures 2-3 - sampling technique comparison (1-min windows)",
        f"representatives: {len(upper):,} windows",
        f"upper vs middle picked a different trace in {differs:.0%} of windows",
    ]
    print(write_report("fig23_sampling_techniques", lines))
    return upper, middle, differs


def test_fig23_disagreement_rate(technique_comparison):
    upper, middle, differs = technique_comparison
    # Same windows -> same cardinality.
    assert len(upper) == len(middle)
    # Dense 1-5 s logs: the end-of-window and mid-window traces almost
    # always differ.
    assert differs > 0.5


@pytest.mark.parametrize("technique", ["upper", "middle"])
def test_benchmark_sampling_kernel(benchmark, corpus_128mb, technique_comparison, technique):
    """Vectorized single-pass sampling over ~2 M traces.

    Depends on ``technique_comparison`` so a ``--benchmark-only`` run
    still generates the Figures 2-3 report.
    """
    array, _ = corpus_128mb
    out = benchmark(sample_array, array, 60.0, technique)
    assert 0 < len(out) < len(array)
