"""Benchmark fixtures: paper-scale corpora and result reporting.

The paper evaluates on two GeoLife subsets — 66 MB / 1,050,000 traces
(90 users) and 128 MB / 2,033,686 traces (178 users) — plus the full
18 GB corpus for the sampling run.  The synthetic generator reproduces
those scales with the same user counts (~5.5 k traces per user per day,
two days each); the 18 GB corpus is modelled by inflating the per-record
on-disk size (the *computation* sees the 2 M traces, the *cost model*
sees 18 GB across 282 chunks — exactly the paper's task structure).

Every benchmark writes its reproduction table to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture; EXPERIMENTS.md is curated from those files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import MB, SimulatedHDFS
from repro.mapreduce.runner import JobRunner

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(config, items):
    """``bench``-marked tests are opt-in: they time real wall-clock and
    are meaningless on a loaded CI box unless explicitly requested with
    ``-m bench`` (the marker is registered in pyproject.toml)."""
    if "bench" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(reason="wall-clock benchmark; opt in with -m bench")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def corpus_66mb():
    """~0.9 M traces from 90 users (the paper's 66 MB subset)."""
    dataset, users = generate_dataset(SyntheticConfig(n_users=90, days=1, seed=66))
    return dataset.flat().sort_by_time(), users


@pytest.fixture(scope="session")
def corpus_128mb():
    """~1.8 M traces from 178 users (the paper's 128 MB subset)."""
    dataset, users = generate_dataset(SyntheticConfig(n_users=178, days=1, seed=128))
    return dataset.flat().sort_by_time(), users


def make_runner(
    array,
    n_workers: int = 5,
    chunk_mb: int = 64,
    record_bytes: int = 64,
    path: str = "input/traces",
    **runner_kwargs,
) -> JobRunner:
    """A fresh deployment with the corpus uploaded."""
    hdfs = SimulatedHDFS(paper_cluster(n_workers), chunk_size=chunk_mb * MB, seed=0)
    hdfs.put_trace_array(path, array, record_bytes=record_bytes)
    return JobRunner(hdfs, **runner_kwargs)


def write_report(name: str, lines: list[str]) -> str:
    """Persist a benchmark's reproduction table; returns the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


def write_history(name: str, runner: JobRunner) -> Path:
    """Persist a deployment's job-history trace next to its report.

    Saves ``benchmarks/results/<name>_history.json`` — renderable with
    ``python -m repro history`` (see docs/OBSERVABILITY.md) — so the
    per-task structure behind a reproduction table can be inspected
    without re-running the benchmark.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}_history.json"
    runner.history.save(path)
    return path
