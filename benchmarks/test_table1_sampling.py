"""Table I — trace counts under down-sampling (Section V).

Paper (GeoLife, 2,033,686 traces):

    sampling    traces    reduction vs raw
    none       2,033,686       1.0x
    1 min        155,260      13.1x
    5 min         41,263      49.3x
    10 min        23,596      86.2x

Reproduction: the 178-user synthetic corpus (same per-user density,
1-5 s GPS fixes) pushed through the MapReduce sampling job at the same
three window sizes.  The absolute counts depend on how many hours per
day the loggers run; the *shape* — a drastic, super-linear collapse that
flattens as the window grows past the dwell timescale — must match.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.sampling import run_sampling_job

PAPER_ROWS = [("none", 2_033_686), ("1 min", 155_260), ("5 min", 41_263), ("10 min", 23_596)]
WINDOWS = {"1 min": 60.0, "5 min": 300.0, "10 min": 600.0}


@pytest.fixture(scope="module")
def sampled_counts(corpus_128mb):
    array, _ = corpus_128mb
    runner = make_runner(array, n_workers=61, chunk_mb=64)
    counts = {"none": len(array)}
    sims = {}
    for label, window in WINDOWS.items():
        res = run_sampling_job(runner, "input/traces", f"out/{label}", window)
        counts[label] = runner.hdfs.file_records(f"out/{label}")
        sims[label] = res.sim_seconds
    lines = [
        "Table I - number of traces under different sampling conditions",
        f"{'condition':<10} {'paper':>12} {'measured':>12} {'paper_red':>10} {'ours_red':>9}",
    ]
    for label, paper_n in PAPER_ROWS:
        ours = counts[label]
        lines.append(
            f"{label:<10} {paper_n:>12,} {ours:>12,} "
            f"{PAPER_ROWS[0][1] / paper_n:>9.1f}x {counts['none'] / ours:>8.1f}x"
        )
    lines.append("")
    for label, sim in sims.items():
        lines.append(f"sampling job ({label}) simulated time on 61 nodes: {sim:.1f}s")
    print(write_report("table1_sampling", lines))
    return counts, sims


def test_table1_reproduction(sampled_counts):
    counts, sims = sampled_counts
    # Shape assertions.
    assert counts["none"] > 1_500_000, "corpus not at paper scale"
    red_1 = counts["none"] / counts["1 min"]
    red_5 = counts["none"] / counts["5 min"]
    red_10 = counts["none"] / counts["10 min"]
    assert 8 <= red_1 <= 30, f"1-min reduction {red_1:.1f}x out of Table I band"
    assert red_1 < red_5 < red_10, "reduction must grow with the window"
    # Flattening: going 1->5 min buys more than 5->10 min, as in the paper
    # (13->49 vs 49->86: ratios 3.8 then 1.7).
    assert (red_5 / red_1) > (red_10 / red_5)


def test_table1_mr_counters_consistent(sampled_counts, corpus_128mb):
    counts, _ = sampled_counts
    assert counts["1 min"] > counts["5 min"] > counts["10 min"]


def test_benchmark_sampling_job(benchmark, corpus_128mb, sampled_counts):
    """Wall-clock of one full-corpus MapReduce sampling run (1-min window).

    Depends on ``sampled_counts`` so a ``--benchmark-only`` run still
    generates the Table I reproduction report.
    """
    array, _ = corpus_128mb

    def run():
        runner = make_runner(array, n_workers=61, chunk_mb=64, path="bench/traces")
        run_sampling_job(runner, "bench/traces", "bench/out", 60.0)
        return runner.hdfs.file_records("bench/out")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0
