"""Ablation — recovery overhead of mid-job node loss (chaos engine).

A real Hadoop deployment keeps running when a tasktracker (and its
datanode) dies mid-job: lost map outputs are re-dispatched to replica
holders, under-replicated chunks re-replicate, reducers re-fetch the
re-run outputs.  None of that is free.  This bench drives the same
sampling job over the simulated cluster clean, under a node loss, and
under a node loss plus crash-heavy chaos, and records what recovery
costs in simulated makespan.  Results land in
``benchmarks/results/ablation_nodeloss.txt``.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.sampling import run_sampling_job
from repro.geo.synthetic import SyntheticConfig, generate_dataset
from repro.mapreduce.counters import STANDARD
from repro.mapreduce.failures import ChaosSchedule, Fault, FaultKind


@pytest.fixture(scope="module")
def corpus():
    dataset, _ = generate_dataset(SyntheticConfig(n_users=12, days=1, seed=7))
    return dataset.flat().sort_by_time()


def _makespan(corpus, chaos):
    runner = make_runner(corpus, n_workers=5, chunk_mb=1, chaos=chaos)
    result = run_sampling_job(runner, "input/traces", "out/sampled", window_s=600.0)
    return result, runner


@pytest.fixture(scope="module")
def variants(corpus):
    node_loss = ChaosSchedule(faults=[Fault(FaultKind.NODE_LOSS, node="worker02")])
    stormy = ChaosSchedule(
        seed=8,
        crash_prob=0.15,
        slow_node_prob=0.3,
        faults=[Fault(FaultKind.NODE_LOSS, node="worker02")],
    )
    rows = {
        "clean": _makespan(corpus, None),
        "node loss": _makespan(corpus, node_loss),
        "loss + crashes": _makespan(corpus, stormy),
    }
    clean_s = rows["clean"][0].sim_seconds
    lines = [
        "Ablation - simulated recovery overhead under chaos (sampling job)",
        f"{'variant':<16} {'makespan s':>11} {'retry s':>9} {'overhead':>9}",
    ]
    for label, (result, _) in rows.items():
        t = result.timing
        overhead = (t.total_s / clean_s - 1.0) * 100.0
        lines.append(
            f"{label:<16} {t.total_s:>11.2f} {t.retry_penalty_s:>9.2f} "
            f"{overhead:>8.1f}%"
        )
    print(write_report("ablation_nodeloss", lines))
    return rows


def test_node_loss_costs_recovery_time(variants):
    clean, _ = variants["clean"]
    lossy, runner = variants["node loss"]
    assert lossy.timing.total_s > clean.timing.total_s
    assert lossy.timing.retry_penalty_s > 0
    assert (
        lossy.counters.value(STANDARD.GROUP_SCHEDULER, STANDARD.NODES_LOST) == 1
    )
    assert runner.history.validate() == []


def test_output_unchanged_by_recovery(variants):
    outputs = {
        label: sorted(
            (u, float(t))
            for u, t in zip(
                runner.hdfs.read_trace_array("out/sampled").user_index,
                runner.hdfs.read_trace_array("out/sampled").timestamp,
            )
        )
        for label, (_, runner) in variants.items()
    }
    assert outputs["clean"] == outputs["node loss"] == outputs["loss + crashes"]


def test_more_chaos_costs_more(variants):
    assert (
        variants["loss + crashes"][0].timing.retry_penalty_s
        > variants["node loss"][0].timing.retry_penalty_s
    )
