"""The paper's motivation, quantified (Section II).

"Performing inference attacks on large geolocated datasets is generally
a long, costly and resource-consuming task ... these two observations
motivate the need for parallel and distributed approaches."  This bench
runs the full attack chain (sampling -> preprocessing -> R-tree ->
DJ-Cluster) on deployments of growing size and reports the simulated
end-to-end analysis time: the single-worker "one beefy machine" baseline
versus the distributed deployments the paper argues for.
"""

import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.djcluster import DJClusterParams, run_djcluster_mapreduce
from repro.algorithms.sampling import run_sampling_job

WORKERS = [1, 5, 15]
PARAMS = DJClusterParams(radius_m=100.0, min_pts=8)


@pytest.fixture(scope="module")
def chain_times(corpus_66mb):
    array, _ = corpus_66mb
    rows = []
    for n_workers in WORKERS:
        runner = make_runner(array, n_workers=n_workers, chunk_mb=2, path="in")
        sample_res = run_sampling_job(runner, "in", "sampled", 600.0)
        dj = run_djcluster_mapreduce(runner, "sampled", PARAMS, workdir="dj")
        total = sample_res.sim_seconds + dj.sim_seconds
        rows.append((n_workers, sample_res.sim_seconds, dj.sim_seconds, total, dj.n_clusters))
    lines = [
        "Motivation - full attack chain simulated time vs deployment size",
        "(sampling + preprocessing + R-tree + DJ-Cluster on the 66 MB corpus)",
        f"{'workers':>8} {'sampling s':>11} {'djcluster s':>12} {'total s':>9} {'clusters':>9}",
    ]
    for workers, s, d, total, n in rows:
        lines.append(f"{workers:>8} {s:>11.1f} {d:>12.1f} {total:>9.1f} {n:>9}")
    lines.append(
        "note: at 66 MB the chained jobs are dominated by Hadoop's ~30 s/job"
        " overhead floor (visible in Table III too); the distribution win"
        " grows with data - see scaling_nodes.txt for the 18 GB sweep."
    )
    print(write_report("motivation", lines))
    return rows


def test_distribution_speeds_up_the_chain(chain_times):
    totals = {w: t for w, _, _, t, _ in chain_times}
    assert totals[5] < totals[1]
    assert totals[15] <= totals[5]


def test_results_independent_of_deployment(chain_times):
    clusters = {n for *_, n in chain_times}
    assert len(clusters) == 1, "cluster count must not depend on workers"


def test_benchmark_chain_on_5_workers(benchmark, chain_times, corpus_66mb):
    """Wall-clock of the 5-worker chain.  Depends on ``chain_times`` so
    ``--benchmark-only`` still writes the motivation report."""
    array, _ = corpus_66mb

    def run():
        runner = make_runner(array, n_workers=5, chunk_mb=2, path="b/in")
        run_sampling_job(runner, "b/in", "b/sampled", 600.0)
        return run_djcluster_mapreduce(runner, "b/sampled", PARAMS, workdir="b/dj")

    dj = benchmark.pedantic(run, rounds=2, iterations=1)
    assert dj.n_clusters > 0
