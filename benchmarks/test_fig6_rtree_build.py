"""Figure 6 — three-phase MapReduce R-tree construction (Section VII-C).

Phase 1 samples curve scalars to pick partition boundaries; phase 2
builds one small R-tree per partition; phase 3 merges them.  The paper
implemented both Z-order and Hilbert space-filling curves as the
locality-preserving partitioning function — this bench builds with both,
compares partition balance (the property the curve choice affects),
verifies the merged index answers exactly like a locally built one, and
times the full pipeline.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_runner, write_report
from repro.algorithms.sampling import sample_array
from repro.index.rtree import RTree
from repro.index.rtree_mr import build_rtree_mapreduce


@pytest.fixture(scope="module")
def indexed_corpus(corpus_128mb):
    array, _ = corpus_128mb
    return sample_array(array, 60.0)  # Table I scale: ~100-200k points


@pytest.fixture(scope="module")
def builds(indexed_corpus):
    out = {}
    for curve in ("zorder", "hilbert"):
        runner = make_runner(indexed_corpus, n_workers=5, chunk_mb=1, path="in")
        out[curve] = build_rtree_mapreduce(
            runner, "in", n_partitions=8, curve=curve, workdir=f"rt/{curve}"
        )
    lines = ["Figure 6 - MapReduce R-tree construction (8 partitions)"]
    for curve, res in out.items():
        sizes = sorted(res.partition_sizes.values())
        lines.append(
            f"{curve:<8} points={len(res.tree):,} partitions={sizes} "
            f"balance={res.balance_ratio:.3f} "
            f"sim={res.sim_seconds:.1f}s (phase1 {res.phase1_sim_seconds:.1f} + "
            f"phase2 {res.phase2_sim_seconds:.1f})"
        )
    print(write_report("fig6_rtree_build", lines))
    return out


def test_fig6_both_curves_index_everything(builds, indexed_corpus):
    for res in builds.values():
        assert len(res.tree) == len(indexed_corpus)


def test_fig6_partitions_balanced(builds):
    """Quantile boundaries over curve scalars give near-equal partitions
    for both curves (the design goal of the partitioning function)."""
    for curve, res in builds.items():
        assert res.balance_ratio < 1.3, f"{curve} unbalanced: {res.balance_ratio:.2f}"


def test_fig6_merged_tree_query_equivalence(builds, indexed_corpus):
    local = RTree.bulk_load(indexed_corpus.coordinates())
    for curve, res in builds.items():
        for radius in (200.0, 2000.0):
            got = set(res.tree.query_radius(39.9042, 116.4074, radius).tolist())
            want = set(local.query_radius(39.9042, 116.4074, radius).tolist())
            assert got == want, f"{curve} tree answers differ at r={radius}"


@pytest.fixture(scope="module")
def curve_ablation(indexed_corpus):
    """Mean partition MBR area per curve — the locality ablation."""
    from repro.index.spacefilling import hilbert_key, zorder_key

    pts = indexed_corpus.coordinates()[:50_000]
    bounds = (
        pts[:, 0].min(), pts[:, 1].min(), pts[:, 0].max(), pts[:, 1].max()
    )

    def mean_partition_area(curve_fn):
        keys = curve_fn(pts[:, 0], pts[:, 1], bounds, 16)
        order = np.argsort(keys)
        areas = []
        for part in np.array_split(order, 16):
            p = pts[part]
            areas.append(
                (p[:, 0].max() - p[:, 0].min()) * (p[:, 1].max() - p[:, 1].min())
            )
        return float(np.mean(areas))

    hilbert_area = mean_partition_area(hilbert_key)
    zorder_area = mean_partition_area(zorder_key)
    lines = [
        "Space-filling-curve ablation - mean partition MBR area (deg^2)",
        f"zorder : {zorder_area:.6f}",
        f"hilbert: {hilbert_area:.6f}",
        f"hilbert/zorder: {hilbert_area / zorder_area:.3f}",
    ]
    print(write_report("fig6_curve_ablation", lines))
    return hilbert_area, zorder_area


def test_fig6_curve_locality_metric(curve_ablation):
    """Hilbert preserves locality at least as well as Z-order: mean
    spatial spread (MBR area) of equal-size partitions is no worse."""
    hilbert_area, zorder_area = curve_ablation
    assert hilbert_area <= zorder_area * 1.10


def test_benchmark_rtree_build(benchmark, indexed_corpus, builds, curve_ablation):
    """Wall-clock of the full three-phase build (Hilbert).

    Depends on ``builds`` and ``curve_ablation`` so a ``--benchmark-only``
    run still generates the Figure 6 reports.
    """

    def run():
        runner = make_runner(indexed_corpus, n_workers=5, chunk_mb=1, path="b/in")
        return build_rtree_mapreduce(runner, "b/in", n_partitions=8, workdir="b/rt")

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(res.tree) == len(indexed_corpus)
