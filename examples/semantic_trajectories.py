#!/usr/bin/env python
"""Semantic trajectories: from coordinates to a life narrative (Section II).

"From this semantic information the adversary can derive a clearer
understanding about the interests of an individual."  This example
segments a synthetic user's raw GPS log into stays and trips, groups the
stays into places, labels each place by its visit-time signature and
prints the *semantic trail* — the day reconstructed as
home → work → lunch → work → home, plus the Song-et-al. predictability
of the visit sequence.

Run:  python examples/semantic_trajectories.py
"""

import datetime as dt

import numpy as np

from repro import Gepeto
from repro.attacks.semantics import label_places
from repro.geo.distance import haversine_m
from repro.geo.trajectory import segment_trail
from repro.metrics.predictability import predictability_report


def main() -> None:
    gepeto, truth = Gepeto.synthetic(n_users=1, days=4, seed=77)
    user = truth[0]
    trail = gepeto.dataset.trail(user.user_id)
    print(f"Raw log: {len(trail):,} GPS fixes over 4 days\n")

    # 1. Stay/trip segmentation.
    stays, trips = segment_trail(trail, roam_radius_m=100, min_stay_s=600)
    total_dwell = sum(s.duration_s for s in stays) / 3600.0
    total_travel = sum(t.duration_s for t in trips) / 3600.0
    print(
        f"Segmentation: {len(stays)} stays ({total_dwell:.1f} h dwelling), "
        f"{len(trips)} trips ({total_travel:.1f} h travelling)\n"
    )

    # 2. Places with semantic labels.
    places, visits = label_places(trail, min_stay_s=600)
    print(f"{'label':<9} {'visits':>6} {'dwell_h':>8} {'night%':>7} {'work%':>6} {'truth'}")
    print("-" * 60)
    for p in sorted(places, key=lambda p: -p.total_dwell_s):
        nearest = min(
            user.pois,
            key=lambda poi: float(haversine_m(p.latitude, p.longitude, poi.latitude, poi.longitude)),
        )
        d = float(haversine_m(p.latitude, p.longitude, nearest.latitude, nearest.longitude))
        truth_note = f"{nearest.label} ({d:.0f} m)" if d < 200 else "-"
        print(
            f"{p.label:<9} {p.n_visits:>6} {p.total_dwell_s / 3600:>8.1f} "
            f"{p.night_fraction:>6.0%} {p.workhour_fraction:>5.0%}  {truth_note}"
        )

    # 3. The semantic trail: the user's days as a story.
    print("\nSemantic trail (first 12 visits):")
    for v in visits[:12]:
        when = dt.datetime.fromtimestamp(v.start_ts, tz=dt.timezone.utc)
        print(
            f"  {when:%a %H:%M}  {v.label:<8} for {v.duration_s / 3600:.1f} h"
        )

    # 4. How predictable is this life?
    seq = [v.place_index for v in visits]
    report = predictability_report(np.array(seq))
    print(
        f"\nPredictability: S_real = {report.s_real:.2f} bits over "
        f"{report.n_states} places -> Fano bound Pi_max = {report.pi_max:.0%}"
    )
    print(
        "A sanitizer must break this structure, not just blur coordinates —"
        "\nwhich is what GEPETO's privacy/utility evaluation quantifies."
    )


if __name__ == "__main__":
    main()
