#!/usr/bin/env python
"""The paper's evaluation, end to end, at demo scale.

Walks through every experiment of the evaluation section on a small
corpus (benchmarks/ runs the full-scale versions): Table I sampling
reduction, Table III k-means iteration times, Table IV preprocessing
reduction, and the Figure 6 R-tree construction — all on one simulated
7-node Hadoop deployment, printing measured values next to the paper's.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams, run_preprocessing_pipeline
from repro.algorithms.sampling import run_sampling_job


def main() -> None:
    gepeto, _ = Gepeto.synthetic(n_users=12, days=2, seed=1937)
    cluster = gepeto.deploy(n_workers=5, chunk_size_mb=1)
    runner = cluster.runner
    hdfs = runner.hdfs
    print(
        f"Deployment: 7 nodes (5 workers x 2 slots), "
        f"{len(hdfs.chunks('input/traces'))} chunks of 1 MB, "
        f"~{cluster.deploy_overhead_s:.0f} s deploy overhead (paper: ~25 s)\n"
    )

    # ---- Table I: sampling reduction ------------------------------------
    print("Table I - traces under down-sampling (paper reduces 2.03M -> 155k/41k/24k)")
    counts = {"none": len(gepeto)}
    for label, window in (("1 min", 60.0), ("5 min", 300.0), ("10 min", 600.0)):
        res = run_sampling_job(runner, "input/traces", f"t1/{label}", window)
        counts[label] = hdfs.file_records(f"t1/{label}")
        print(
            f"  {label:<7} {counts[label]:>9,} traces "
            f"({counts['none'] / counts[label]:5.1f}x reduction, "
            f"job sim {res.sim_seconds:5.1f} s)"
        )

    # ---- Table III: k-means iteration time -------------------------------
    print("\nTable III - k-means iteration time, k=11 (paper: 41-60 s per cell)")
    pts = hdfs.read_trace_array("input/traces").coordinates()
    init = pts[np.random.default_rng(11).choice(len(pts), 11, replace=False)]
    for distance in ("squared_euclidean", "haversine"):
        res = cluster.kmeans(
            11, distance=distance, max_iter=1, initial_centroids=init,
            workdir=f"t3/{distance}",
        )
        print(f"  {distance:<18} iteration sim {res.history[0].sim_seconds:5.1f} s")

    # ---- Table IV: preprocessing reduction --------------------------------
    print("\nTable IV - DJ preprocessing (paper keeps ~56-60% then sheds <1%)")
    params = DJClusterParams()
    for label in ("1 min", "10 min"):
        run_preprocessing_pipeline(
            runner, f"t1/{label}", params, workdir=f"t4/{label}"
        )
        unf = counts[label]
        filt = hdfs.file_records(f"t4/{label}/stationary")
        dedup = hdfs.file_records(f"t4/{label}/preprocessed")
        print(
            f"  {label:<7} {unf:>8,} -> {filt:>8,} (speed filter, "
            f"{filt / unf:4.0%}) -> {dedup:>8,} (dedup)"
        )

    # ---- Figure 6: MR R-tree construction ---------------------------------
    print("\nFigure 6 - 3-phase MapReduce R-tree build (Z-order vs Hilbert)")
    for curve in ("zorder", "hilbert"):
        build = cluster.build_rtree(
            n_partitions=4, curve=curve, workdir=f"f6/{curve}"
        )
        sizes = sorted(build.partition_sizes.values())
        print(
            f"  {curve:<8} partitions {sizes} "
            f"balance {build.balance_ratio:.2f}  sim {build.sim_seconds:5.1f} s"
        )

    # ---- and the purpose of it all ------------------------------------------
    dj = cluster.djcluster(
        DJClusterParams(radius_m=80, min_pts=6), input_path="t1/1 min", workdir="dj"
    )
    print(
        f"\nDJ-Cluster on the 1-min sample: {dj.n_clusters} clusters "
        f"({len(dj.noise_ids)} noise traces) in {dj.sim_seconds:.0f} simulated s"
        f" -> the POIs an inference attack extracts (see quickstart.py)."
    )


if __name__ == "__main__":
    main()
