#!/usr/bin/env python
"""The privacy/utility trade-off GEPETO exists to evaluate.

Sweeps the geo-sanitization mechanisms from the paper's future-work list
(Section VIII) — geographical masks, spatial aggregation, temporal
aggregation, spatial cloaking, mix zones — and, for each sanitized
release, measures:

* privacy — how well the POI inference attack still recovers the true
  POIs (precision / recall / F1), plus de-anonymization resistance;
* utility — spatial distortion, trace volume and coverage retained.

The output is the trade-off table a data curator would use to pick a
mechanism.

Run:  python examples/privacy_utility_tradeoff.py
"""

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.poi import poi_attack
from repro.metrics.privacy import poi_recovery
from repro.metrics.utility import utility_report
from repro.metrics.utility import range_query_error
from repro.sanitization import (
    DonutMask,
    GaussianMask,
    PlanarLaplaceMask,
    MixZone,
    MixZoneSanitizer,
    RoundingMask,
    SpatialAggregator,
    SpatialCloaking,
    TemporalAggregator,
    UniformNoiseMask,
)


def attack_all(gepeto: Gepeto, params: DJClusterParams):
    """Run the POI attack on every trail, pooling the estimates."""
    pois = []
    for trail in gepeto.dataset.trails():
        pois.extend(poi_attack(trail, params))
    return pois


def main() -> None:
    gepeto, truth = Gepeto.synthetic(n_users=5, days=3, seed=99)
    baseline = gepeto.sample(60.0)  # analysis granularity
    params = DJClusterParams(radius_m=80.0, min_pts=6)
    ground_truth = [p for user in truth for p in user.pois]

    mechanisms = [
        ("none (baseline)", None),
        ("gaussian 50 m", GaussianMask(50.0, seed=1)),
        ("gaussian 200 m", GaussianMask(200.0, seed=1)),
        ("gaussian 500 m", GaussianMask(500.0, seed=1)),
        ("uniform 300 m", UniformNoiseMask(300.0, seed=1)),
        ("donut 100-300 m", DonutMask(100.0, 300.0, seed=1)),
        ("laplace eps=.01", PlanarLaplaceMask(0.01, seed=1)),
        ("rounding 500 m", RoundingMask(500.0)),
        ("aggregate 300 m", SpatialAggregator(300.0)),
        ("sample 10 min", TemporalAggregator(600.0)),
        ("cloaking k=3", SpatialCloaking(k=3, base_cell_m=500.0, window_s=3600.0)),
        (
            "mix zones x3",
            MixZoneSanitizer(
                [
                    MixZone(39.9042, 116.4074, 2000.0),
                    MixZone(39.95, 116.45, 1500.0),
                    MixZone(39.86, 116.35, 1500.0),
                ],
                seed=1,
            ),
        ),
    ]

    header = (
        f"{'mechanism':<18} {'poi_prec':>8} {'poi_rec':>8} {'poi_f1':>7} "
        f"{'distort_m':>10} {'volume':>7} {'coverage':>9} {'query_err':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, sanitizer in mechanisms:
        released = baseline if sanitizer is None else baseline.sanitize(sanitizer)
        recovery = poi_recovery(attack_all(released, params), ground_truth, 150.0)
        utility = utility_report(baseline.dataset, released.dataset)
        query_err = range_query_error(baseline.dataset, released.dataset)
        distortion = (
            f"{utility.mean_distortion_m:10.1f}"
            if utility.mean_distortion_m == utility.mean_distortion_m  # not NaN
            else "   (n/a)  "
        )
        print(
            f"{name:<18} {recovery.precision:8.2f} {recovery.recall:8.2f} "
            f"{recovery.f1:7.2f} {distortion} {utility.volume_ratio:7.2f} "
            f"{utility.coverage:9.2f} {query_err:10.2f}"
        )

    print(
        "\nReading: stronger mechanisms push POI recall down (more privacy)"
        "\nwhile distortion rises and volume/coverage fall (less utility)."
        "\nThe curator picks the row matching their release's risk budget."
    )


if __name__ == "__main__":
    main()
