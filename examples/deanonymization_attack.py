#!/usr/bin/env python
"""De-anonymization: why pseudonyms are not privacy (Section II).

Scenario: a telecom releases two weeks of "anonymized" trails under
fresh pseudonyms.  The adversary holds older, identified data for the
same population (auxiliary information).  The attack fingerprints every
individual — POIs extracted with DJ-Cluster, movement patterns as a
Mobility Markov Chain — and links each pseudonym to the closest known
fingerprint.

Also demonstrates the future-work prediction attack: once the MMC is
built, the adversary predicts each user's next place.

Run:  python examples/deanonymization_attack.py
"""

import numpy as np

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams
from repro.algorithms.sampling import sample_dataset
from repro.attacks.deanonymization import deanonymization_attack
from repro.attacks.poi import poi_attack
from repro.attacks.prediction import evaluate_next_place_prediction
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray
from repro.sanitization import GaussianMask


def split_and_pseudonymize(dataset, cut_ts):
    """Older identified data vs newer pseudonymized release."""
    training = GeolocatedDataset()
    release = GeolocatedDataset()
    truth = {}
    for i, trail in enumerate(dataset.trails()):
        arr = trail.traces
        old = arr[arr.timestamp < cut_ts]
        new = arr[arr.timestamp >= cut_ts]
        if len(old):
            training.add_trail(Trail(trail.user_id, old))
        if len(new):
            pseud = f"pseudonym-{i:02d}"
            release.add_trail(
                Trail(
                    pseud,
                    TraceArray.from_columns(
                        [pseud],
                        new.latitude.copy(),
                        new.longitude.copy(),
                        new.timestamp.copy(),
                    ),
                )
            )
            truth[pseud] = trail.user_id
    return training, release, truth


def main() -> None:
    gepeto, users = Gepeto.synthetic(n_users=6, days=4, seed=4242)
    sampled = sample_dataset(gepeto.dataset, 60.0)
    cut = 1175385600.0 + 2 * 86400.0  # first two days are "known"
    training, release, truth = split_and_pseudonymize(sampled, cut)
    params = DJClusterParams(radius_m=80.0, min_pts=5)

    print(f"Training (identified): {training}")
    print(f"Release (pseudonymized): {release}\n")

    result = deanonymization_attack(training, release, truth, params)
    print(f"{'pseudonym':<14} {'linked to':<10} {'truth':<6} {'correct':<8} score")
    for pseud in sorted(truth):
        link = result.linkage.get(pseud)
        ok = "yes" if link == truth[pseud] else "NO"
        score = result.scores.get(pseud, float("nan"))
        print(f"{pseud:<14} {str(link):<10} {truth[pseud]:<6} {ok:<8} {score:.3f}")
    print(f"\nRe-identification rate: {result.success_rate:.0%} "
          f"(random guessing: {1.0 / training.num_users():.0%})")

    # A mask degrades the linkage.
    masked_release = GaussianMask(300.0, seed=5).sanitize_dataset(release)
    masked_result = deanonymization_attack(
        training, GeolocatedDataset(masked_release.trails()), truth, params
    )
    print(
        f"After a 300 m Gaussian mask on the release: "
        f"{masked_result.success_rate:.0%} re-identified"
    )

    # Prediction attack: the linked identity's MMC predicts the future,
    # and the Song et al. bound says how predictable the victim can be.
    from repro.attacks.mmc import build_mmc, visit_sequence
    from repro.metrics.predictability import predictability_report
    from repro.viz import mmc_transition_table

    print("\nNext-place prediction and predictability (per identified user):")
    for user in users[:3]:
        trail = sampled.trail(user.user_id) if user.user_id in sampled else None
        if trail is None:
            continue
        pois = poi_attack(trail, params)
        if not pois:
            continue
        coords = np.array([p.coordinate for p in pois])
        report = evaluate_next_place_prediction(trail, coords, train_fraction=0.6)
        visits = visit_sequence(trail.traces, coords)
        pred = predictability_report(visits)
        if report.n_predictions:
            print(
                f"  user {user.user_id}: {report.accuracy:.0%} top-1 accuracy over "
                f"{report.n_predictions} moves ({report.lift:.1f}x better than chance); "
                f"Fano bound Pi_max = {pred.pi_max:.0%} "
                f"(S_real {pred.s_real:.2f} bits over {pred.n_states} places)"
            )

    # The fingerprint itself, for the first user.
    first = users[0]
    pois = poi_attack(sampled.trail(first.user_id), params)
    if pois:
        coords = np.array([p.coordinate for p in pois[:5]])
        mmc = build_mmc(
            sampled.trail(first.user_id), coords, labels=[p.label for p in pois[:5]]
        )
        print(f"\nMobility Markov Chain of user {first.user_id}:")
        print(mmc_transition_table(mmc))


if __name__ == "__main__":
    main()
