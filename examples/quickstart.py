#!/usr/bin/env python
"""Quickstart: the GEPETO workflow in five minutes.

Generates a small GeoLife-like corpus, shows the data (ASCII density
map + the exact on-disk PLT format of Figure 1), down-samples it
(Section V), runs the DJ-Cluster POI inference attack (Section VII) and
prints the privacy finding: the users' homes, recovered from raw traces.

Run:  python examples/quickstart.py
"""

import io


from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams
from repro.attacks.poi import poi_attack
from repro.geo.distance import haversine_m
from repro.geo.geolife import write_plt
from repro.viz import cluster_summary_table


def main() -> None:
    # 1. A synthetic corpus standing in for GeoLife (see DESIGN.md):
    #    5 users, 3 days, GPS fix every 1-5 s.
    gepeto, ground_truth = Gepeto.synthetic(n_users=5, days=3, seed=2013)
    print(f"Generated corpus: {gepeto.dataset}")
    print()

    # 2. What the raw data looks like on disk (Figure 1's PLT format).
    first_user = ground_truth[0]
    buf = io.StringIO()
    write_plt(first_user.trail, buf)
    print("First lines of user 000's PLT trajectory file:")
    for line in buf.getvalue().splitlines()[:9]:
        print("   ", line)
    print()

    # 3. Visualize the trace density (GEPETO's visualization role).
    markers = [
        (p.latitude, p.longitude, p.label[0].upper())
        for u in ground_truth
        for p in u.pois[:2]
    ]
    print("Trace density (H = true homes, W = true workplaces):")
    print(gepeto.visualize(width=68, height=20, markers=markers))
    print()

    # 4. Down-sample: GPS logs every 1-5 s are hugely redundant
    #    (Section V / Table I).
    sampled = gepeto.sample(window_s=60.0, technique="upper")
    print(
        f"Sampling with a 1-minute window: {len(gepeto)} -> {len(sampled)} "
        f"traces ({len(gepeto) / len(sampled):.1f}x reduction)"
    )
    print()

    # 5. The POI inference attack on one user (Section VII + home/work
    #    labelling) and how close it lands to the ground truth.
    params = DJClusterParams(radius_m=80.0, min_pts=6)
    user_id = ground_truth[0].user_id
    pois = poi_attack(sampled.dataset.trail(user_id), params)
    print(f"POIs inferred for user {user_id}:")
    print(cluster_summary_table(pois))
    print()
    home = next((p for p in pois if p.label == "home"), None)
    if home is not None:
        err = float(
            haversine_m(
                home.latitude,
                home.longitude,
                ground_truth[0].home.latitude,
                ground_truth[0].home.longitude,
            )
        )
        print(
            f"Inferred home is {err:.0f} m from the true home -> this is "
            "why mobility traces are Personally Identifiable Information."
        )


if __name__ == "__main__":
    main()
