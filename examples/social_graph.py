#!/usr/bin/env python
"""Discovering social relations from co-location (Section II).

"Two individuals that are in contact during a non-negligible amount of
time share some kind of social link."  This example builds a small
population with planted relationships — two couples sharing homes and a
pair of colleagues sharing an office — plus independent users, runs the
co-location attack, and checks the inferred social graph against the
planted edges.

Run:  python examples/social_graph.py
"""

import networkx as nx
import numpy as np

from repro.attacks.social import ColocationParams, colocation_graph
from repro.geo.synthetic import SyntheticConfig, generate_user
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray


def shifted_clone(trail: Trail, new_user: str, jitter_m: float = 4.0, seed: int = 0) -> Trail:
    """A companion who moves with `trail` (same schedule, own GPS noise)."""
    rng = np.random.default_rng(seed)
    arr = trail.traces
    sigma_deg = jitter_m / 111_320.0
    return Trail(
        new_user,
        TraceArray.from_columns(
            [new_user],
            arr.latitude + rng.normal(0, sigma_deg, len(arr)),
            arr.longitude + rng.normal(0, sigma_deg, len(arr)),
            arr.timestamp.copy(),
        ),
    )


def main() -> None:
    cfg = SyntheticConfig(n_users=8, days=2, seed=314)
    trails = {}
    for i in range(4):  # four independent "seed" users
        user = generate_user(cfg, i)
        trails[user.user_id] = user.trail

    # Plant relationships: 000+100 and 001+101 are couples (shadow the
    # whole day together); 002+102 are colleagues (together half the time:
    # clone then keep only a window).
    trails["100"] = shifted_clone(trails["000"], "100", seed=1)
    trails["101"] = shifted_clone(trails["001"], "101", seed=2)
    colleague = shifted_clone(trails["002"], "102", seed=3)
    arr = colleague.traces
    lo, hi = arr.time_span()
    window = arr[(arr.timestamp >= lo) & (arr.timestamp <= lo + (hi - lo) * 0.5)]
    trails["102"] = Trail("102", window)

    dataset = GeolocatedDataset(trails.values())
    print(f"Population: {dataset}")
    planted = {("000", "100"), ("001", "101"), ("002", "102")}
    print(f"Planted relationships: {sorted(planted)}\n")

    params = ColocationParams(contact_radius_m=50.0, window_s=300.0, min_contact_s=3600.0)
    graph = colocation_graph(dataset, params)

    print(f"{'pair':<14} {'contact hours':>13}")
    for a, b, data in sorted(graph.edges(data=True), key=lambda e: -e[2]["contact_s"]):
        mark = "(planted)" if tuple(sorted((a, b))) in planted else "(incidental)"
        print(f"{a}-{b:<10} {data['contact_s'] / 3600.0:>13.1f}  {mark}")

    inferred = {tuple(sorted(e)) for e in graph.edges}
    recall = len(inferred & planted) / len(planted)
    precision = len(inferred & planted) / len(inferred) if inferred else 0.0
    print(f"\nrecall of planted edges:    {recall:.0%}")
    print(f"precision of inferred edges: {precision:.0%}")
    print(f"graph density: {nx.density(graph):.3f} over {graph.number_of_nodes()} users")
    print(
        "\nThe attack needs only coarse (5-minute, 50 m) co-location —"
        "\nanother reason location traces are sensitive beyond the individual."
    )


if __name__ == "__main__":
    main()
