#!/usr/bin/env python
"""Distributed privacy analysis on a simulated Hadoop cluster.

Reproduces the paper's operational story end to end: deploy a
Parapluie-style cluster (dedicated namenode + jobtracker, N workers with
2 map slots each), upload a ~1M-trace corpus into HDFS (64 MB chunks,
rack-aware 3x replication), then run the MapReduced GEPETO pipeline —
sampling, preprocessing, R-tree construction, DJ-Cluster — and report
what the jobtracker saw: chunk counts, task locality, shuffle volume and
simulated wall-clock per job.

Run:  python examples/distributed_analysis.py  [--users N] [--workers N]
"""

import argparse
import time

from repro import Gepeto
from repro.algorithms.djcluster import DJClusterParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=30, help="synthetic users")
    parser.add_argument("--days", type=int, default=2, help="days of logs per user")
    parser.add_argument("--workers", type=int, default=5, help="tasktracker nodes")
    parser.add_argument("--chunk-mb", type=int, default=64, help="HDFS chunk size")
    args = parser.parse_args()

    t0 = time.time()
    gepeto, _ = Gepeto.synthetic(n_users=args.users, days=args.days, seed=7)
    print(f"Corpus: {gepeto.dataset} (generated in {time.time() - t0:.1f}s)")

    # -- deployment (the paper's ~25 s HDFS install + upload) -------------
    cluster = gepeto.deploy(
        n_workers=args.workers, chunk_size_mb=args.chunk_mb, executor="threads"
    )
    hdfs = cluster.runner.hdfs
    n_chunks = len(hdfs.chunks("input/traces"))
    print(
        f"Deployed: {args.workers} workers, "
        f"{cluster.runner.cluster.total_map_slots()} map slots; "
        f"uploaded {hdfs.file_nbytes('input/traces') / 2**20:.0f} MB "
        f"as {n_chunks} chunks of {args.chunk_mb} MB "
        f"(deployment overhead: {cluster.deploy_overhead_s:.0f} simulated s)"
    )

    # -- stage 1: MapReduce sampling (Section V) -----------------------------
    print("\nJob log:")
    res = cluster.sample(60.0, output_path="out/sampled")
    print(f"  {res.summary()}")
    n_sampled = hdfs.file_records("out/sampled")
    print(f"      -> {len(gepeto)} traces sampled down to {n_sampled}")

    # -- stages 2-4: the full MapReduced DJ-Cluster (Section VII) -----------
    params = DJClusterParams(radius_m=80.0, min_pts=6)
    t0 = time.time()
    dj = cluster.djcluster(params, input_path="out/sampled", workdir="out/dj")
    print(
        f"  DJ-Cluster pipeline: {dj.n_clusters} clusters, "
        f"{len(dj.noise_ids)} noise traces "
        f"(real wall time {time.time() - t0:.1f}s)"
    )
    for stage, sim in dj.stage_sim_seconds.items():
        print(f"      {stage:<18} {sim:7.1f} simulated s")
    print(f"      {'total':<18} {dj.sim_seconds:7.1f} simulated s")

    # -- what a curator learns ------------------------------------------------
    from repro.attacks.poi import extract_pois, label_home_work
    from repro.viz import cluster_summary_table

    pois = label_home_work(extract_pois(dj, min_traces=10))
    print(f"\nTop POIs inferred from {args.users} users' merged clusters:")
    print(cluster_summary_table(pois[:8]))


if __name__ == "__main__":
    main()
