"""GEPETO-MR: MapReduce-based privacy analysis of mobility traces.

A reproduction of *"MapReducing GEPETO or Towards Conducting a Privacy
Analysis on Millions of Mobility Traces"* (Gambs, Killijian, Moise,
Nunez del Prado Cortez - IPDPSW 2013).

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.geo` - mobility-trace data model, distances, GeoLife I/O,
  synthetic corpus generation;
* :mod:`repro.mapreduce` - the simulated Hadoop substrate (HDFS,
  scheduler, shuffle, combiners, failures, cost model);
* :mod:`repro.index` - R-trees and space-filling curves, including the
  three-phase MapReduce R-tree construction;
* :mod:`repro.algorithms` - the paper's MapReduced GEPETO algorithms:
  sampling, k-means, DJ-Cluster;
* :mod:`repro.attacks` - POI extraction, Mobility Markov Chains,
  prediction, de-anonymization;
* :mod:`repro.sanitization` - geographical masks, aggregation, spatial
  cloaking, mix zones;
* :mod:`repro.metrics` - privacy and utility measurement;
* :mod:`repro.toolkit` - the :class:`~repro.toolkit.Gepeto` facade.
"""

from repro.toolkit import Gepeto, GepetoCluster

__version__ = "1.0.0"

__all__ = ["Gepeto", "GepetoCluster", "__version__"]
