"""Visualization and export: ASCII density maps, GeoJSON and CSV.

GEPETO "can be used to visualize ... a particular geolocated dataset".
With no plotting stack available offline, visualization is text-first:

* :func:`ascii_density_map` — a terminal heat map of trace density, with
  optional POI markers (the quickstart's visual);
* :func:`to_geojson` — standard GeoJSON FeatureCollections for traces,
  clusters and POIs, loadable in any GIS tool;
* :func:`to_csv` — flat trace export.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

import numpy as np

from repro.attacks.poi import PointOfInterestEstimate
from repro.geo.trace import GeolocatedDataset, TraceArray

__all__ = [
    "ascii_density_map",
    "to_geojson",
    "to_csv",
    "cluster_summary_table",
    "mmc_transition_table",
]

#: Density ramp from sparse to dense.
_RAMP = " .:-=+*#%@"


def ascii_density_map(
    data: GeolocatedDataset | TraceArray,
    width: int = 72,
    height: int = 24,
    markers: Sequence[tuple[float, float, str]] = (),
) -> str:
    """Render trace density as an ASCII heat map.

    ``markers`` is a sequence of (lat, lon, single-char label) overlays,
    e.g. POI positions.  Density is log-scaled so dwell clusters do not
    wash out the commute corridors.
    """
    array = data.flat() if isinstance(data, GeolocatedDataset) else data
    if len(array) == 0:
        return "(empty dataset)"
    if width < 2 or height < 2:
        raise ValueError("width and height must each be >= 2")
    min_lat, min_lon, max_lat, max_lon = array.bounding_box()
    span_lat = max(max_lat - min_lat, 1e-9)
    span_lon = max(max_lon - min_lon, 1e-9)
    col = np.clip(((array.longitude - min_lon) / span_lon * (width - 1)).astype(int), 0, width - 1)
    # Row 0 is the top (max latitude).
    row = np.clip(((max_lat - array.latitude) / span_lat * (height - 1)).astype(int), 0, height - 1)
    grid = np.zeros((height, width), dtype=np.int64)
    np.add.at(grid, (row, col), 1)
    log_grid = np.log1p(grid)
    peak = log_grid.max()
    levels = (
        (log_grid / peak * (len(_RAMP) - 1)).astype(int) if peak > 0 else np.zeros_like(grid, dtype=int)
    )
    canvas = [[_RAMP[v] for v in line] for line in levels]
    for lat, lon, char in markers:
        c = int(np.clip((lon - min_lon) / span_lon * (width - 1), 0, width - 1))
        r = int(np.clip((max_lat - lat) / span_lat * (height - 1), 0, height - 1))
        canvas[r][c] = (char or "x")[0]
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in canvas)
    legend = (
        f"lat [{min_lat:.4f}, {max_lat:.4f}]  lon [{min_lon:.4f}, {max_lon:.4f}]  "
        f"n={len(array)}"
    )
    return f"{border}\n{body}\n{border}\n{legend}"


def to_geojson(
    data: GeolocatedDataset | TraceArray | None = None,
    pois: Iterable[PointOfInterestEstimate] = (),
    clusters: Sequence[np.ndarray] | None = None,
    cluster_points: TraceArray | None = None,
    max_traces: int = 10_000,
) -> str:
    """Serialize traces / POIs / clusters as a GeoJSON FeatureCollection.

    Traces beyond ``max_traces`` are uniformly subsampled so exports stay
    loadable.  GeoJSON positions are (longitude, latitude).
    """
    features: list[dict] = []
    if data is not None:
        array = data.flat() if isinstance(data, GeolocatedDataset) else data
        n = len(array)
        idx = np.arange(n)
        if n > max_traces:
            idx = np.linspace(0, n - 1, max_traces).astype(int)
        users = array.user_ids()
        for i in idx:
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "Point",
                        "coordinates": [float(array.longitude[i]), float(array.latitude[i])],
                    },
                    "properties": {
                        "kind": "trace",
                        "user": str(users[i]),
                        "timestamp": float(array.timestamp[i]),
                    },
                }
            )
    for poi in pois:
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    "coordinates": [poi.longitude, poi.latitude],
                },
                "properties": {
                    "kind": "poi",
                    "label": poi.label,
                    "n_traces": poi.n_traces,
                    "dwell_time_s": poi.dwell_time_s,
                },
            }
        )
    if clusters is not None:
        if cluster_points is None:
            raise ValueError("clusters require cluster_points")
        coords = cluster_points.coordinates()
        for ci, ids in enumerate(clusters):
            ring = coords[ids]
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "MultiPoint",
                        "coordinates": [[float(lon), float(lat)] for lat, lon in ring],
                    },
                    "properties": {"kind": "cluster", "cluster": ci, "size": int(len(ids))},
                }
            )
    return json.dumps({"type": "FeatureCollection", "features": features})


def to_csv(data: GeolocatedDataset | TraceArray) -> str:
    """Flat CSV export: ``user,latitude,longitude,timestamp,altitude``."""
    array = data.flat() if isinstance(data, GeolocatedDataset) else data
    lines = ["user,latitude,longitude,timestamp,altitude"]
    users = array.user_ids()
    for i in range(len(array)):
        lines.append(
            f"{users[i]},{array.latitude[i]:.6f},{array.longitude[i]:.6f},"
            f"{array.timestamp[i]:.3f},{array.altitude[i]:.1f}"
        )
    return "\n".join(lines)


def mmc_transition_table(mmc, max_states: int = 10) -> str:
    """Render a Mobility Markov Chain's transition matrix as text.

    Shows up to ``max_states`` states (by stationary mass) with their
    labels, stationary probabilities and transition rows.
    """
    import numpy as np

    pi = mmc.stationary_distribution()
    order = np.argsort(-pi)[: min(max_states, mmc.n_states)]
    header = f"{'state':<10} {'pi':>6} | " + " ".join(
        f"{mmc.labels[j][:7]:>7}" for j in order
    )
    rows = [header, "-" * len(header)]
    for i in order:
        cells = " ".join(f"{mmc.transitions[i, j]:7.2f}" for j in order)
        rows.append(f"{mmc.labels[i][:10]:<10} {pi[i]:6.2f} | {cells}")
    return "\n".join(rows)


def cluster_summary_table(pois: Sequence[PointOfInterestEstimate]) -> str:
    """A fixed-width table of extracted POIs (label, position, support)."""
    header = f"{'label':<8} {'latitude':>11} {'longitude':>11} {'traces':>7} {'dwell_h':>8} {'night%':>7} {'work%':>7}"
    rows = [header, "-" * len(header)]
    for p in pois:
        rows.append(
            f"{p.label:<8} {p.latitude:>11.5f} {p.longitude:>11.5f} {p.n_traces:>7d} "
            f"{p.dwell_time_s / 3600.0:>8.2f} {p.night_fraction() * 100:>6.1f}% {p.work_fraction() * 100:>6.1f}%"
        )
    return "\n".join(rows)
