"""Distance metrics over spatial coordinates.

The paper's k-means experiments (Section VI) use two metrics:

* the **squared Euclidean distance** — same ordering as Euclidean but skips
  the square root, so clustering with it is faster while preserving the
  order relationship between points; and
* the **Haversine distance** — great-circle distance over the earth's
  surface (Sinnott 1984), more expensive per pair.

All functions are vectorized: they accept scalars or NumPy arrays for each
coordinate and broadcast.  Coordinates are (latitude, longitude) in decimal
degrees; Haversine returns kilometres.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "haversine_km",
    "haversine_m",
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "get_metric",
    "pairwise",
    "METRICS",
]

#: Mean earth radius used by the Haversine formula (km).
EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1, lon1, lat2, lon2) -> np.ndarray | float:
    """Great-circle distance in kilometres (Haversine formula).

    Numerically stable for small distances (the motivating virtue in
    Sinnott's "Virtues of the haversine").  Broadcasts over array inputs.
    """
    lat1 = np.radians(lat1)
    lon1 = np.radians(lon1)
    lat2 = np.radians(lat2)
    lon2 = np.radians(lon2)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    # Clip guards against tiny negative / >1 values from roundoff.
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def haversine_m(lat1, lon1, lat2, lon2) -> np.ndarray | float:
    """Great-circle distance in metres."""
    return haversine_km(lat1, lon1, lat2, lon2) * 1000.0


def squared_euclidean(lat1, lon1, lat2, lon2) -> np.ndarray | float:
    """Squared Euclidean distance in degree² space.

    Monotonically related to :func:`euclidean`, so nearest-centroid
    assignment is identical while avoiding the square root (the speed
    argument made in Section VI).
    """
    dlat = np.asarray(lat2, dtype=np.float64) - np.asarray(lat1, dtype=np.float64)
    dlon = np.asarray(lon2, dtype=np.float64) - np.asarray(lon1, dtype=np.float64)
    out = dlat * dlat + dlon * dlon
    return out if out.ndim else float(out)


def euclidean(lat1, lon1, lat2, lon2) -> np.ndarray | float:
    """Euclidean distance in degree space."""
    return np.sqrt(squared_euclidean(lat1, lon1, lat2, lon2))


def manhattan(lat1, lon1, lat2, lon2) -> np.ndarray | float:
    """Manhattan (L1) distance in degree space."""
    dlat = np.abs(np.asarray(lat2, dtype=np.float64) - np.asarray(lat1, dtype=np.float64))
    dlon = np.abs(np.asarray(lon2, dtype=np.float64) - np.asarray(lon1, dtype=np.float64))
    out = dlat + dlon
    return out if out.ndim else float(out)


#: Registry of named metrics, mirroring the k-means ``distanceMeasure``
#: runtime argument (Table II).
METRICS: dict[str, Callable] = {
    "haversine": haversine_km,
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
}

#: Relative per-pair computational cost of each metric, used by the
#: simulated-time model to reproduce the Haversine-vs-squared-Euclidean
#: iteration-time gap in Table III.  Calibrated from micro-benchmarks of the
#: vectorized kernels (trig + sqrt vs two multiplies).
METRIC_COST: dict[str, float] = {
    "squared_euclidean": 1.0,
    "euclidean": 1.3,
    "manhattan": 1.0,
    "haversine": 3.2,
}


def get_metric(name: str) -> Callable:
    """Look up a distance function by name (case-insensitive).

    Raises ``KeyError`` with the list of known metrics on a miss.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    if key not in METRICS:
        raise KeyError(f"unknown metric {name!r}; known: {sorted(METRICS)}")
    return METRICS[key]


def pairwise(metric: str | Callable, points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` distance matrix between two (n, 2) point sets.

    ``points_*`` are arrays of (latitude, longitude) rows.  This is the
    kernel behind nearest-centroid assignment: one broadcasted evaluation
    instead of a Python double loop.
    """
    fn = get_metric(metric) if isinstance(metric, str) else metric
    a = np.asarray(points_a, dtype=np.float64)
    b = np.asarray(points_b, dtype=np.float64)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise ValueError("pairwise expects (n, 2) coordinate arrays")
    return fn(
        a[:, 0][:, None],
        a[:, 1][:, None],
        b[:, 0][None, :],
        b[:, 1][None, :],
    )
