"""Corpus and per-user mobility statistics.

Implements the descriptive measures the mobility literature the paper
cites builds on — most notably the **radius of gyration** (González,
Hidalgo & Barabási 2008, reference [13]): the RMS distance of a user's
traces from their centre of mass, the standard "how far does this person
range" scalar.

Plus the logging statistics GEPETO's Section V depends on (inter-fix
interval distribution: GeoLife logs "every 1 to 5 seconds"), and a
corpus summary used by the CLI's ``info`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trace import GeolocatedDataset, Trail, TraceArray

__all__ = [
    "radius_of_gyration_m",
    "sampling_interval_stats",
    "UserStats",
    "user_stats",
    "corpus_summary",
]


def radius_of_gyration_m(trail: Trail | TraceArray) -> float:
    """Radius of gyration: RMS Haversine distance to the centre of mass.

    0 for a user who never moves; commuters land around half their
    home-work separation; returns 0 for empty input.
    """
    array = trail.traces if isinstance(trail, Trail) else trail
    if len(array) == 0:
        return 0.0
    center_lat = float(np.mean(array.latitude))
    center_lon = float(np.mean(array.longitude))
    d = np.asarray(haversine_m(center_lat, center_lon, array.latitude, array.longitude))
    return float(np.sqrt(np.mean(d**2)))


def sampling_interval_stats(trail: Trail | TraceArray) -> dict[str, float]:
    """Distribution of inter-fix intervals (seconds): median/p90/mean.

    Gaps above 10 minutes are treated as logger-off periods and excluded
    (GeoLife loggers run per outing, not continuously).
    """
    array = (trail.traces if isinstance(trail, Trail) else trail).sort_by_time()
    if len(array) < 2:
        return {"median_s": 0.0, "p90_s": 0.0, "mean_s": 0.0, "n_gaps": 0.0}
    dt = np.diff(array.timestamp)
    logging = dt[dt <= 600.0]
    n_gaps = int((dt > 600.0).sum())
    if len(logging) == 0:
        return {"median_s": 0.0, "p90_s": 0.0, "mean_s": 0.0, "n_gaps": float(n_gaps)}
    return {
        "median_s": float(np.median(logging)),
        "p90_s": float(np.percentile(logging, 90)),
        "mean_s": float(np.mean(logging)),
        "n_gaps": float(n_gaps),
    }


@dataclass
class UserStats:
    """Per-user mobility summary."""

    user_id: str
    n_traces: int
    duration_s: float
    radius_of_gyration_m: float
    median_interval_s: float


def user_stats(trail: Trail) -> UserStats:
    """Compute the per-user summary for one trail."""
    intervals = sampling_interval_stats(trail)
    return UserStats(
        user_id=trail.user_id,
        n_traces=len(trail),
        duration_s=trail.duration_s() if len(trail) else 0.0,
        radius_of_gyration_m=radius_of_gyration_m(trail),
        median_interval_s=intervals["median_s"],
    )


def corpus_summary(dataset: GeolocatedDataset) -> dict[str, float]:
    """Corpus-level aggregates: counts plus the r_g distribution."""
    stats = [user_stats(t) for t in dataset.trails()]
    if not stats:
        return {
            "n_users": 0.0,
            "n_traces": 0.0,
            "median_rg_m": 0.0,
            "p90_rg_m": 0.0,
            "median_interval_s": 0.0,
        }
    rgs = np.array([s.radius_of_gyration_m for s in stats])
    return {
        "n_users": float(len(stats)),
        "n_traces": float(sum(s.n_traces for s in stats)),
        "median_rg_m": float(np.median(rgs)),
        "p90_rg_m": float(np.percentile(rgs, 90)),
        "median_interval_s": float(
            np.median([s.median_interval_s for s in stats])
        ),
    }
