"""Synthetic GeoLife-like dataset generation.

The paper evaluates on the GeoLife corpus (178 users, 18 GB of GPS logs
sampled every 1–5 seconds).  That corpus is not redistributable here, so
this module provides the documented substitution (see DESIGN.md): a
generative model of daily mobility whose output has the properties the
paper's experiments actually depend on:

* **density** — traces logged every 1–5 s (uniformly), so that temporal
  down-sampling reduces the trace count drastically (Table I);
* **dwell/move structure** — users alternate between *dwelling* at points
  of interest (home, work, leisure) and *moving* between them at realistic
  mode speeds, so the DJ-Cluster speed filter removes a large moving
  fraction (Table IV) and density clustering recovers the POIs;
* **per-user trails** serializable in the exact GeoLife PLT layout
  (:mod:`repro.geo.geolife`).

The generator is fully vectorized per segment (timestamps and positions are
built with NumPy, never per-point Python loops) and deterministic given a
seed, so benchmarks are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray

__all__ = [
    "SyntheticConfig",
    "SyntheticUser",
    "PointOfInterest",
    "generate_user",
    "generate_dataset",
    "KM_PER_DEG_LAT",
]

#: Kilometres per degree of latitude (spherical earth approximation).
KM_PER_DEG_LAT = 111.32

#: Travel speeds by mode, m/s.
MODE_SPEEDS = {"walk": 1.4, "bike": 4.2, "bus": 7.0, "drive": 11.0}


@dataclass(frozen=True)
class PointOfInterest:
    """A ground-truth POI of a synthetic user (used to score attacks)."""

    label: str
    latitude: float
    longitude: float


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic mobility model.

    Defaults model the GeoLife setting: Beijing-centred, 1–5 s log
    interval, a handful of POIs per user, GPS jitter of a few metres.
    """

    n_users: int = 10
    days: int = 3
    start_timestamp: float = 1175385600.0  # 2007-04-01T00:00Z, GeoLife start
    center_lat: float = 39.9042
    center_lon: float = 116.4074
    city_radius_km: float = 15.0
    min_log_interval_s: float = 1.0
    max_log_interval_s: float = 5.0
    n_extra_pois: tuple[int, int] = (2, 4)
    trips_per_day: tuple[int, int] = (2, 4)
    #: Mean dwell duration at a POI.  75 minutes reproduces GeoLife's
    #: stationary share: after 1-10 minute sampling, the DJ-Cluster speed
    #: filter keeps ~55-63% of traces, matching Table IV's 56-60%.
    dwell_mean_s: float = 4500.0
    gps_jitter_m: float = 3.0
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.days <= 0:
            raise ValueError("n_users and days must be positive")
        if not 0 < self.min_log_interval_s <= self.max_log_interval_s:
            raise ValueError("log interval bounds must satisfy 0 < min <= max")


@dataclass
class SyntheticUser:
    """A generated user: ground-truth POIs plus the logged trail."""

    user_id: str
    pois: list[PointOfInterest]
    trail: Trail

    @property
    def home(self) -> PointOfInterest:
        return self.pois[0]

    @property
    def work(self) -> PointOfInterest:
        return self.pois[1]


def _deg_per_km_lon(lat: float) -> float:
    return 1.0 / (KM_PER_DEG_LAT * math.cos(math.radians(lat)))


def _sample_pois(rng: np.random.Generator, cfg: SyntheticConfig, n_extra: int) -> list[PointOfInterest]:
    """Sample home, work and extra POIs uniformly in the city disc."""
    labels = ["home", "work"] + [f"poi_{i}" for i in range(n_extra)]
    pois = []
    for label in labels:
        # Uniform in disc: radius ~ sqrt(U) * R.
        r_km = math.sqrt(rng.random()) * cfg.city_radius_km
        theta = rng.random() * 2.0 * math.pi
        lat = cfg.center_lat + (r_km * math.sin(theta)) / KM_PER_DEG_LAT
        lon = cfg.center_lon + (r_km * math.cos(theta)) * _deg_per_km_lon(cfg.center_lat)
        pois.append(PointOfInterest(label, lat, lon))
    return pois


def _jitter(rng: np.random.Generator, n: int, cfg: SyntheticConfig, lat: float) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian GPS jitter in degrees for n points around latitude ``lat``."""
    sigma_lat = (cfg.gps_jitter_m / 1000.0) / KM_PER_DEG_LAT
    sigma_lon = (cfg.gps_jitter_m / 1000.0) * _deg_per_km_lon(lat)
    return (
        rng.normal(0.0, sigma_lat, n),
        rng.normal(0.0, sigma_lon, n),
    )


def _log_timestamps(rng: np.random.Generator, cfg: SyntheticConfig, t0: float, duration: float) -> np.ndarray:
    """Timestamps of GPS fixes covering [t0, t0+duration] at 1–5 s intervals."""
    if duration <= 0:
        return np.empty(0)
    mean_dt = 0.5 * (cfg.min_log_interval_s + cfg.max_log_interval_s)
    n_est = int(duration / mean_dt) + 8
    dts = rng.uniform(cfg.min_log_interval_s, cfg.max_log_interval_s, n_est)
    ts = t0 + np.cumsum(dts)
    return ts[ts <= t0 + duration]


def _dwell_segment(
    rng: np.random.Generator, cfg: SyntheticConfig, poi: PointOfInterest, t0: float, duration: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """GPS fixes while dwelling at a POI: the POI coordinate plus jitter."""
    ts = _log_timestamps(rng, cfg, t0, duration)
    n = len(ts)
    jlat, jlon = _jitter(rng, n, cfg, poi.latitude)
    return poi.latitude + jlat, poi.longitude + jlon, ts


def _trip_segment(
    rng: np.random.Generator,
    cfg: SyntheticConfig,
    src: PointOfInterest,
    dst: PointOfInterest,
    t0: float,
    speed_ms: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """GPS fixes while travelling src → dst along a wiggly path.

    Returns (lat, lon, ts, trip_duration_s).  The path is a straight line
    with a sinusoidal perpendicular displacement (roads are not geodesics)
    plus GPS jitter.
    """
    dlat_km = (dst.latitude - src.latitude) * KM_PER_DEG_LAT
    dlon_km = (dst.longitude - src.longitude) / _deg_per_km_lon(src.latitude)
    dist_km = math.hypot(dlat_km, dlon_km)
    duration = max((dist_km * 1000.0) / speed_ms, 30.0)
    ts = _log_timestamps(rng, cfg, t0, duration)
    n = len(ts)
    if n == 0:
        return np.empty(0), np.empty(0), np.empty(0), duration
    frac = (ts - t0) / duration
    lat = src.latitude + frac * (dst.latitude - src.latitude)
    lon = src.longitude + frac * (dst.longitude - src.longitude)
    # Perpendicular wiggle, amplitude ~2% of trip length, 1–3 full waves.
    if dist_km > 0:
        amp_km = 0.02 * dist_km
        waves = rng.integers(1, 4)
        wiggle = amp_km * np.sin(np.pi * waves * frac)
        # Unit normal to the direction of travel, in km space.
        nx, ny = -dlon_km / dist_km, dlat_km / dist_km
        lat = lat + (wiggle * ny) / KM_PER_DEG_LAT
        lon = lon + (wiggle * nx) * _deg_per_km_lon(src.latitude)
    jlat, jlon = _jitter(rng, n, cfg, src.latitude)
    return lat + jlat, lon + jlon, ts, duration


def generate_user(cfg: SyntheticConfig, user_index: int) -> SyntheticUser:
    """Generate one user's ground truth and logged trail.

    The daily script is: wake at home, run 2–4 trips between POIs with a
    dwell at each endpoint, return home.  The GPS logger runs during both
    dwells and trips, as in GeoLife where loggers capture whole outings.
    """
    rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, user_index]))
    user_id = f"{user_index:03d}"
    n_extra = int(rng.integers(cfg.n_extra_pois[0], cfg.n_extra_pois[1] + 1))
    pois = _sample_pois(rng, cfg, n_extra)

    lat_parts: list[np.ndarray] = []
    lon_parts: list[np.ndarray] = []
    ts_parts: list[np.ndarray] = []

    for day in range(cfg.days):
        day_start = cfg.start_timestamp + day * 86400.0
        # Logging starts at a morning hour that varies by day and user;
        # early starts (5-6 am) leave night-hour traces at home, which the
        # home-labelling heuristic of the POI attack keys on.
        t = day_start + float(rng.uniform(5.0, 9.0)) * 3600.0
        current = pois[0]  # home
        n_trips = int(rng.integers(cfg.trips_per_day[0], cfg.trips_per_day[1] + 1))
        # Visit a random sequence of non-home POIs, then return home.
        targets = [pois[1 + int(rng.integers(0, len(pois) - 1))] for _ in range(n_trips - 1)]
        targets.append(pois[0])
        for dst in targets:
            if dst.label == current.label:
                continue
            dwell = float(rng.exponential(cfg.dwell_mean_s)) + 120.0
            lat, lon, ts = _dwell_segment(rng, cfg, current, t, dwell)
            lat_parts.append(lat)
            lon_parts.append(lon)
            ts_parts.append(ts)
            t += dwell
            mode = ["walk", "bike", "bus", "drive"][int(rng.integers(0, 4))]
            lat, lon, ts, dur = _trip_segment(rng, cfg, current, dst, t, MODE_SPEEDS[mode])
            lat_parts.append(lat)
            lon_parts.append(lon)
            ts_parts.append(ts)
            t += dur
            current = dst
        # Final dwell at the day's last stop before the logger is switched off.
        dwell = float(rng.exponential(cfg.dwell_mean_s)) + 300.0
        lat, lon, ts = _dwell_segment(rng, cfg, current, t, dwell)
        lat_parts.append(lat)
        lon_parts.append(lon)
        ts_parts.append(ts)

    lat_all = np.concatenate(lat_parts) if lat_parts else np.empty(0)
    lon_all = np.concatenate(lon_parts) if lon_parts else np.empty(0)
    ts_all = np.concatenate(ts_parts) if ts_parts else np.empty(0)
    arr = TraceArray.from_columns([user_id], lat_all, lon_all, ts_all)
    return SyntheticUser(user_id, pois, Trail(user_id, arr.sort_by_time()))


def generate_dataset(cfg: SyntheticConfig) -> tuple[GeolocatedDataset, list[SyntheticUser]]:
    """Generate the full synthetic corpus.

    Returns the :class:`GeolocatedDataset` plus the per-user ground truth
    (POIs), which the attack-evaluation metrics compare against.
    """
    users = [generate_user(cfg, i) for i in range(cfg.n_users)]
    ds = GeolocatedDataset(u.trail for u in users)
    return ds, users
