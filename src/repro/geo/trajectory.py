"""Trajectory segmentation: stays and trips.

A trail is physically a sequence of *stays* (dwelling within a small
radius) connected by *trips* (movement between them).  Segmentation into
that structure underlies semantic analysis (Section II's "semantic
trajectories") and gives an alternative, time-aware POI extractor that
complements density clustering: a stay requires both spatial compactness
and a minimum duration, so brief pass-throughs never become POIs.

The segmentation is the classic stay-point algorithm (Zheng et al.'s
GeoLife line of work): grow a window of consecutive traces while every
trace stays within ``roam_radius_m`` of the window's anchor; when it
breaks, emit a stay if the window lasted at least ``min_stay_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_m
from repro.geo.trace import Trail, TraceArray

__all__ = ["Stay", "Trip", "segment_trail", "stays_as_array"]


@dataclass(frozen=True)
class Stay:
    """A dwell: the user remained within ``roam_radius_m`` for a while."""

    latitude: float
    longitude: float
    start_ts: float
    end_ts: float
    n_traces: int

    @property
    def duration_s(self) -> float:
        return self.end_ts - self.start_ts


@dataclass(frozen=True)
class Trip:
    """A movement segment between two stays (or trail ends)."""

    start_ts: float
    end_ts: float
    n_traces: int
    distance_m: float

    @property
    def duration_s(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def mean_speed_ms(self) -> float:
        return self.distance_m / self.duration_s if self.duration_s > 0 else 0.0


def segment_trail(
    trail: Trail | TraceArray,
    roam_radius_m: float = 100.0,
    min_stay_s: float = 300.0,
    max_gap_s: float = 3600.0,
) -> tuple[list[Stay], list[Trip]]:
    """Split a trail into stays and trips.

    ``max_gap_s`` bounds the logging gap allowed inside one stay (a
    switched-off logger ends the stay).  Returns stays and trips in time
    order; every trace belongs to exactly one segment.
    """
    if roam_radius_m <= 0 or min_stay_s <= 0:
        raise ValueError("roam_radius_m and min_stay_s must be positive")
    array = (trail.traces if isinstance(trail, Trail) else trail).sort_by_time()
    n = len(array)
    if n == 0:
        return [], []
    lat, lon, ts = array.latitude, array.longitude, array.timestamp

    stays: list[Stay] = []
    trips: list[Trip] = []
    trip_start: int | None = None

    def flush_trip(end_index: int) -> None:
        nonlocal trip_start
        if trip_start is None or end_index <= trip_start:
            trip_start = None
            return
        seg = slice(trip_start, end_index)
        step = haversine_m(
            lat[seg][:-1], lon[seg][:-1], lat[seg][1:], lon[seg][1:]
        )
        trips.append(
            Trip(
                start_ts=float(ts[trip_start]),
                end_ts=float(ts[end_index - 1]),
                n_traces=end_index - trip_start,
                distance_m=float(np.sum(step)) if end_index - trip_start > 1 else 0.0,
            )
        )
        trip_start = None

    i = 0
    while i < n:
        # Grow the candidate stay window anchored at i.
        j = i + 1
        while j < n:
            if ts[j] - ts[j - 1] > max_gap_s:
                break
            if float(haversine_m(lat[i], lon[i], lat[j], lon[j])) > roam_radius_m:
                break
            j += 1
        if ts[j - 1] - ts[i] >= min_stay_s:
            flush_trip(i)
            window = slice(i, j)
            stays.append(
                Stay(
                    latitude=float(np.mean(lat[window])),
                    longitude=float(np.mean(lon[window])),
                    start_ts=float(ts[i]),
                    end_ts=float(ts[j - 1]),
                    n_traces=j - i,
                )
            )
            i = j
        else:
            if trip_start is None:
                trip_start = i
            i += 1
    flush_trip(n)
    return stays, trips


def stays_as_array(stays: list[Stay], user_id: str = "stays") -> TraceArray:
    """Stays as a trace array (one trace per stay, at its start time)."""
    if not stays:
        return TraceArray.empty()
    return TraceArray.from_columns(
        [user_id],
        np.array([s.latitude for s in stays]),
        np.array([s.longitude for s in stays]),
        np.array([s.start_ts for s in stays]),
    )
