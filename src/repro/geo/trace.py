"""Core mobility-trace data model.

The paper (Section II) characterizes a *mobility trace* by an identifier, a
spatial coordinate, a timestamp and optional additional information (speed,
accuracy, ...).  A *trail of traces* is the time-ordered collection of one
individual's traces; a *geolocated dataset* is a set of trails from several
individuals.

Two representations coexist here:

* :class:`MobilityTrace` — a small frozen record, convenient for examples,
  tests and the record-at-a-time MapReduce layer.
* :class:`TraceArray` — a columnar NumPy view over many traces, used by the
  vectorized kernels (distance computation, sampling, filtering).  Following
  the HPC guidance, anything on the hot path works on :class:`TraceArray`
  columns rather than Python-object lists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["MobilityTrace", "TraceArray", "Trail", "GeolocatedDataset"]


@dataclass(frozen=True, slots=True)
class MobilityTrace:
    """A single mobility trace (Section II of the paper).

    Parameters
    ----------
    user_id:
        Identifier of the device/individual.  May be a real identifier, a
        pseudonym, or the value ``"unknown"`` for full anonymity.
    latitude, longitude:
        Spatial coordinate in decimal degrees (WGS84).
    timestamp:
        Seconds since the Unix epoch (float; sub-second precision allowed).
    altitude:
        Altitude in feet as in GeoLife logs (``-777`` means invalid).
    speed:
        Optional instantaneous speed in m/s when known (e.g. computed by the
        DJ-Cluster preprocessing phase); ``nan`` when unknown.
    """

    user_id: str
    latitude: float
    longitude: float
    timestamp: float
    altitude: float = -777.0
    speed: float = float("nan")

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude!r}")

    @property
    def coordinate(self) -> tuple[float, float]:
        """(latitude, longitude) pair in decimal degrees."""
        return (self.latitude, self.longitude)

    def with_user(self, user_id: str) -> "MobilityTrace":
        """Return a copy re-attributed to ``user_id`` (pseudonymization)."""
        return replace(self, user_id=user_id)

    def with_coordinate(self, latitude: float, longitude: float) -> "MobilityTrace":
        """Return a copy moved to a new coordinate (used by sanitizers)."""
        return replace(self, latitude=latitude, longitude=longitude)


# Structured dtype backing TraceArray.  user ids are stored as an index into
# a side table of strings so the hot columns stay numeric and contiguous.
_TRACE_DTYPE = np.dtype(
    [
        ("user_idx", np.int32),
        ("latitude", np.float64),
        ("longitude", np.float64),
        ("timestamp", np.float64),
        ("altitude", np.float64),
    ]
)


class TraceArray:
    """Columnar storage for a batch of mobility traces.

    All heavy per-trace computation (speed estimation, distance to centroids,
    window bucketing) runs over these contiguous NumPy columns.  The class is
    deliberately append-free: build it in one shot with
    :meth:`from_traces` / :meth:`from_columns`, then slice with NumPy masks.
    """

    __slots__ = ("_data", "_users")

    def __init__(self, data: np.ndarray, users: Sequence[str]):
        if data.dtype != _TRACE_DTYPE:
            raise TypeError(f"expected dtype {_TRACE_DTYPE}, got {data.dtype}")
        self._data = data
        self._users = tuple(users)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_traces(cls, traces: Iterable[MobilityTrace]) -> "TraceArray":
        """Build from an iterable of :class:`MobilityTrace` records."""
        traces = list(traces)
        users: dict[str, int] = {}
        data = np.empty(len(traces), dtype=_TRACE_DTYPE)
        for i, t in enumerate(traces):
            idx = users.setdefault(t.user_id, len(users))
            data[i] = (idx, t.latitude, t.longitude, t.timestamp, t.altitude)
        return cls(data, list(users))

    @classmethod
    def from_columns(
        cls,
        user_ids: Sequence[str] | np.ndarray,
        latitude: np.ndarray,
        longitude: np.ndarray,
        timestamp: np.ndarray,
        altitude: np.ndarray | None = None,
    ) -> "TraceArray":
        """Build from parallel columns.

        ``user_ids`` may be one id per row, or a single id applied to all
        rows (the common case for a per-user trail).
        """
        n = len(latitude)
        if isinstance(user_ids, str):
            user_ids = [user_ids]
        if len(user_ids) == 1 and n != 1:
            users = [str(user_ids[0])]
            user_idx = np.zeros(n, dtype=np.int32)
        else:
            if len(user_ids) != n:
                raise ValueError("user_ids length mismatch")
            table: dict[str, int] = {}
            user_idx = np.fromiter(
                (table.setdefault(str(u), len(table)) for u in user_ids),
                dtype=np.int32,
                count=n,
            )
            users = list(table)
        data = np.empty(n, dtype=_TRACE_DTYPE)
        data["user_idx"] = user_idx
        data["latitude"] = np.asarray(latitude, dtype=np.float64)
        data["longitude"] = np.asarray(longitude, dtype=np.float64)
        data["timestamp"] = np.asarray(timestamp, dtype=np.float64)
        data["altitude"] = (
            np.asarray(altitude, dtype=np.float64)
            if altitude is not None
            else np.full(n, -777.0)
        )
        return cls(data, users)

    @classmethod
    def empty(cls) -> "TraceArray":
        return cls(np.empty(0, dtype=_TRACE_DTYPE), [])

    @classmethod
    def from_buffer(
        cls, buffer, n_traces: int, users: Sequence[str]
    ) -> "TraceArray":
        """Zero-copy view over an externally owned buffer.

        Used by the process execution backend to reconstruct a chunk's
        traces from a ``multiprocessing.shared_memory`` segment without
        pickling the payload.  The caller owns the buffer's lifetime; the
        returned array must not outlive it.
        """
        data = np.ndarray((n_traces,), dtype=_TRACE_DTYPE, buffer=buffer)
        return cls(data, users)

    @property
    def data_nbytes(self) -> int:
        """Size in bytes of the packed columnar records."""
        return int(self._data.nbytes)

    def compact(self) -> "TraceArray":
        """A copy that owns exactly its own rows.

        Slicing returns views into the parent buffer; a view kept alive
        (e.g. a chunk payload paged by the budgeted HDFS store) pins the
        whole parent allocation.  ``compact`` breaks that tie.
        """
        return TraceArray(self._data.copy(), self._users)

    def copy_data_into(self, buffer) -> None:
        """Copy the packed records into ``buffer`` (inverse of
        :meth:`from_buffer`; the buffer must hold ``data_nbytes``)."""
        out = np.ndarray((len(self._data),), dtype=_TRACE_DTYPE, buffer=buffer)
        out[:] = self._data

    @classmethod
    def concatenate(cls, arrays: Sequence["TraceArray"]) -> "TraceArray":
        """Concatenate several arrays, re-mapping user index tables."""
        arrays = [a for a in arrays if len(a)]
        if not arrays:
            return cls.empty()
        users: dict[str, int] = {}
        chunks = []
        for a in arrays:
            remap = np.array(
                [users.setdefault(u, len(users)) for u in a._users],
                dtype=np.int32,
            )
            chunk = a._data.copy()
            if len(remap):
                chunk["user_idx"] = remap[a._data["user_idx"]]
            chunks.append(chunk)
        return cls(np.concatenate(chunks), list(users))

    # -- column access ---------------------------------------------------
    @property
    def latitude(self) -> np.ndarray:
        return self._data["latitude"]

    @property
    def longitude(self) -> np.ndarray:
        return self._data["longitude"]

    @property
    def timestamp(self) -> np.ndarray:
        return self._data["timestamp"]

    @property
    def altitude(self) -> np.ndarray:
        return self._data["altitude"]

    @property
    def user_index(self) -> np.ndarray:
        return self._data["user_idx"]

    @property
    def users(self) -> tuple[str, ...]:
        """The user-id side table; ``users[user_index[i]]`` names row i."""
        return self._users

    def user_ids(self) -> np.ndarray:
        """Per-row user ids as an object array (materialized on demand)."""
        table = np.array(self._users, dtype=object)
        if len(table) == 0:
            return np.empty(0, dtype=object)
        return table[self._data["user_idx"]]

    def coordinates(self) -> np.ndarray:
        """``(n, 2)`` float64 array of (latitude, longitude) rows."""
        out = np.empty((len(self), 2))
        out[:, 0] = self.latitude
        out[:, 1] = self.longitude
        return out

    # -- protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[MobilityTrace]:
        users = self._users
        for row in self._data:
            yield MobilityTrace(
                user_id=users[row["user_idx"]],
                latitude=float(row["latitude"]),
                longitude=float(row["longitude"]),
                timestamp=float(row["timestamp"]),
                altitude=float(row["altitude"]),
            )

    def __getitem__(self, item) -> "TraceArray | MobilityTrace":
        if isinstance(item, (int, np.integer)):
            row = self._data[int(item)]
            return MobilityTrace(
                user_id=self._users[row["user_idx"]],
                latitude=float(row["latitude"]),
                longitude=float(row["longitude"]),
                timestamp=float(row["timestamp"]),
                altitude=float(row["altitude"]),
            )
        return TraceArray(self._data[item], self._users)

    def __repr__(self) -> str:
        return f"TraceArray(n={len(self)}, users={len(self._users)})"

    # -- transforms ---------------------------------------------------------
    def with_coordinates(self, latitude: np.ndarray, longitude: np.ndarray) -> "TraceArray":
        """A copy with replaced coordinates (used by sanitizers).

        Keeps users, timestamps and altitudes; avoids re-materializing the
        per-row user-id objects on the hot path.
        """
        if len(latitude) != len(self) or len(longitude) != len(self):
            raise ValueError("coordinate column length mismatch")
        data = self._data.copy()
        data["latitude"] = np.asarray(latitude, dtype=np.float64)
        data["longitude"] = np.asarray(longitude, dtype=np.float64)
        return TraceArray(data, self._users)

    def sort_by_time(self) -> "TraceArray":
        """Return a copy sorted by (user, timestamp) — the trail order."""
        order = np.lexsort((self._data["timestamp"], self._data["user_idx"]))
        return TraceArray(self._data[order], self._users)

    def time_span(self) -> tuple[float, float]:
        """(min, max) timestamp; raises on empty array."""
        if not len(self):
            raise ValueError("empty TraceArray has no time span")
        ts = self._data["timestamp"]
        return float(ts.min()), float(ts.max())

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(min_lat, min_lon, max_lat, max_lon); raises on empty array."""
        if not len(self):
            raise ValueError("empty TraceArray has no bounding box")
        return (
            float(self.latitude.min()),
            float(self.longitude.min()),
            float(self.latitude.max()),
            float(self.longitude.max()),
        )


@dataclass
class Trail:
    """A trail of traces: the movements of one individual over time.

    Invariant: all traces belong to ``user_id`` and are sorted by timestamp.
    """

    user_id: str
    traces: TraceArray

    def __post_init__(self) -> None:
        if len(self.traces):
            uniq = np.unique(self.traces.user_index)
            if len(uniq) > 1:
                raise ValueError("a Trail must contain a single user")
            ts = self.traces.timestamp
            if np.any(np.diff(ts) < 0):
                self.traces = self.traces.sort_by_time()

    @classmethod
    def from_traces(cls, traces: Iterable[MobilityTrace]) -> "Trail":
        arr = TraceArray.from_traces(traces)
        if not len(arr):
            raise ValueError("cannot build a Trail from zero traces")
        return cls(user_id=arr.users[0], traces=arr.sort_by_time())

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[MobilityTrace]:
        return iter(self.traces)

    def duration_s(self) -> float:
        """Trail duration in seconds (0 for a single trace)."""
        lo, hi = self.traces.time_span()
        return hi - lo


class GeolocatedDataset:
    """A set of trails from different individuals (Section II).

    This is the object GEPETO's operations consume and produce.  It keeps a
    per-user mapping to :class:`Trail` plus a lazily materialized flat
    :class:`TraceArray` used by whole-dataset kernels.
    """

    def __init__(self, trails: Iterable[Trail] = ()):
        self._trails: dict[str, Trail] = {}
        for trail in trails:
            self.add_trail(trail)
        self._flat: TraceArray | None = None

    # -- construction ------------------------------------------------------
    def add_trail(self, trail: Trail) -> None:
        """Add a trail; merging if the user already has one."""
        if trail.user_id in self._trails:
            merged = TraceArray.concatenate(
                [self._trails[trail.user_id].traces, trail.traces]
            ).sort_by_time()
            self._trails[trail.user_id] = Trail(trail.user_id, merged)
        else:
            self._trails[trail.user_id] = trail
        self._flat = None

    @classmethod
    def from_traces(cls, traces: Iterable[MobilityTrace]) -> "GeolocatedDataset":
        by_user: dict[str, list[MobilityTrace]] = {}
        for t in traces:
            by_user.setdefault(t.user_id, []).append(t)
        ds = cls()
        for user, ts in by_user.items():
            ds.add_trail(Trail.from_traces(ts))
        return ds

    @classmethod
    def from_array(cls, array: TraceArray) -> "GeolocatedDataset":
        ds = cls()
        for idx, user in enumerate(array.users):
            mask = array.user_index == idx
            if mask.any():
                ds.add_trail(Trail(user, array[mask].sort_by_time()))
        return ds

    # -- access --------------------------------------------------------------
    @property
    def user_ids(self) -> list[str]:
        return sorted(self._trails)

    def trail(self, user_id: str) -> Trail:
        return self._trails[user_id]

    def trails(self) -> Iterator[Trail]:
        for user in self.user_ids:
            yield self._trails[user]

    def flat(self) -> TraceArray:
        """All traces of all users as one :class:`TraceArray` (cached)."""
        if self._flat is None:
            self._flat = TraceArray.concatenate(
                [self._trails[u].traces for u in self.user_ids]
            )
        return self._flat

    def __len__(self) -> int:
        """Total number of traces across all trails."""
        return sum(len(t) for t in self._trails.values())

    def num_users(self) -> int:
        return len(self._trails)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._trails

    def __repr__(self) -> str:
        return f"GeolocatedDataset(users={self.num_users()}, traces={len(self)})"

    # -- transforms -----------------------------------------------------------
    def map_trails(self, fn) -> "GeolocatedDataset":
        """Apply ``fn(Trail) -> Trail | None`` to every trail.

        Returning ``None`` drops the trail; used by sanitizers and samplers.
        """
        out = GeolocatedDataset()
        for trail in self.trails():
            new = fn(trail)
            if new is not None and len(new):
                out.add_trail(new)
        return out

    def subset(self, user_ids: Iterable[str]) -> "GeolocatedDataset":
        """Restrict to the given users (missing ids are ignored)."""
        out = GeolocatedDataset()
        for user in user_ids:
            if user in self._trails:
                out.add_trail(self._trails[user])
        return out

    def filter_time(self, start: float | None = None, end: float | None = None) -> "GeolocatedDataset":
        """Restrict to traces with ``start <= timestamp < end``.

        Either bound may be ``None`` (open).  Trails left empty by the
        filter are dropped.  The standard tool for train/release splits
        in linking-attack evaluations.
        """
        def _one(trail: Trail) -> Trail | None:
            ts = trail.traces.timestamp
            mask = np.ones(len(ts), dtype=bool)
            if start is not None:
                mask &= ts >= start
            if end is not None:
                mask &= ts < end
            if not mask.any():
                return None
            return Trail(trail.user_id, trail.traces[mask])

        return self.map_trails(_one)
