"""Mobility-trace substrate: data model, distances, GeoLife I/O, synthesis.

This subpackage provides the geolocated-data layer that GEPETO operates on:

* :mod:`repro.geo.trace` — the :class:`~repro.geo.trace.MobilityTrace` /
  :class:`~repro.geo.trace.Trail` / :class:`~repro.geo.trace.GeolocatedDataset`
  data model (Section II of the paper).
* :mod:`repro.geo.distance` — vectorized distance metrics (Haversine,
  Euclidean, squared Euclidean, Manhattan).
* :mod:`repro.geo.geolife` — reader/writer for the exact GeoLife PLT on-disk
  format (Figure 1 of the paper).
* :mod:`repro.geo.synthetic` — a generative model producing GeoLife-like
  datasets, used as the stand-in for the (proprietary-scale) GeoLife corpus.
"""

from repro.geo.trace import (
    MobilityTrace,
    Trail,
    GeolocatedDataset,
    TraceArray,
)
from repro.geo.distance import (
    haversine_km,
    haversine_m,
    euclidean,
    squared_euclidean,
    manhattan,
    get_metric,
    EARTH_RADIUS_KM,
)
from repro.geo.geolife import (
    read_plt,
    write_plt,
    read_geolife_dataset,
    write_geolife_dataset,
    GEOLIFE_EPOCH,
)
from repro.geo.synthetic import (
    SyntheticConfig,
    SyntheticUser,
    generate_user,
    generate_dataset,
)
from repro.geo.trajectory import Stay, Trip, segment_trail, stays_as_array
from repro.geo.stats import (
    UserStats,
    corpus_summary,
    radius_of_gyration_m,
    sampling_interval_stats,
    user_stats,
)

__all__ = [
    "MobilityTrace",
    "Trail",
    "GeolocatedDataset",
    "TraceArray",
    "haversine_km",
    "haversine_m",
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "get_metric",
    "EARTH_RADIUS_KM",
    "read_plt",
    "write_plt",
    "read_geolife_dataset",
    "write_geolife_dataset",
    "GEOLIFE_EPOCH",
    "SyntheticConfig",
    "SyntheticUser",
    "generate_user",
    "generate_dataset",
    "Stay",
    "Trip",
    "segment_trail",
    "stays_as_array",
    "UserStats",
    "corpus_summary",
    "radius_of_gyration_m",
    "sampling_interval_stats",
    "user_stats",
]
