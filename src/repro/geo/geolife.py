"""GeoLife PLT on-disk format (Figure 1 of the paper).

The GeoLife GPS-trajectory corpus stores one trajectory per ``.plt`` file,
grouped in a per-user directory layout::

    <root>/<user_id>/Trajectory/<yyyymmddHHMMSS>.plt

Each PLT file starts with six header lines (ignored by all parsers) followed
by one line per mobility trace::

    latitude,longitude,0,altitude,days,date,time

where

* ``latitude``/``longitude`` are decimal degrees,
* the third field is always ``0`` and "has no meaning for this dataset",
* ``altitude`` is in feet (``-777`` when invalid),
* ``days`` is the timestamp as fractional days elapsed since 1899-12-30
  (the Excel/OLE epoch), and
* ``date``/``time`` repeat the timestamp as ``yyyy-mm-dd`` / ``HH:MM:SS``
  strings.

This module reads and writes that exact format so the toolkit operates on
byte-compatible inputs, and so the synthetic generator can serialize its
output as a drop-in GeoLife replacement.
"""

from __future__ import annotations

import datetime as _dt
import io
import math
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.geo.trace import GeolocatedDataset, Trail, TraceArray

__all__ = [
    "GEOLIFE_EPOCH",
    "PLT_HEADER",
    "parse_plt_line",
    "format_plt_line",
    "read_plt",
    "write_plt",
    "iter_plt_files",
    "stream_geolife_trails",
    "read_geolife_dataset",
    "write_geolife_dataset",
    "unix_to_ole_days",
    "ole_days_to_unix",
]

#: The PLT "days" field counts days since this epoch (1899-12-30 00:00 UTC).
GEOLIFE_EPOCH = _dt.datetime(1899, 12, 30, tzinfo=_dt.timezone.utc)

#: Seconds between the OLE epoch and the Unix epoch.
_EPOCH_OFFSET_S = -GEOLIFE_EPOCH.timestamp()

#: The six header lines every PLT file begins with (verbatim from GeoLife).
PLT_HEADER = (
    "Geolife trajectory\n"
    "WGS 84\n"
    "Altitude is in Feet\n"
    "Reserved 3\n"
    "0,2,255,My Track,0,0,2,8421376\n"
    "0\n"
)


def unix_to_ole_days(timestamp: float | np.ndarray) -> float | np.ndarray:
    """Convert a Unix timestamp (s) to fractional days since 1899-12-30."""
    return (np.asarray(timestamp, dtype=np.float64) + _EPOCH_OFFSET_S) / 86400.0


def ole_days_to_unix(days: float | np.ndarray) -> float | np.ndarray:
    """Convert fractional days since 1899-12-30 to a Unix timestamp (s)."""
    return np.asarray(days, dtype=np.float64) * 86400.0 - _EPOCH_OFFSET_S


def parse_plt_line(line: str) -> tuple[float, float, float, float]:
    """Parse one PLT record into ``(lat, lon, altitude, unix_timestamp)``.

    The timestamp is taken from the ``days`` field (field 5), which carries
    full sub-second precision; the date/time string fields are redundant.
    """
    parts = line.rstrip("\n").split(",")
    if len(parts) != 7:
        raise ValueError(f"malformed PLT line ({len(parts)} fields): {line!r}")
    lat = float(parts[0])
    lon = float(parts[1])
    alt = float(parts[3])
    ts = float(ole_days_to_unix(float(parts[4])))
    return lat, lon, alt, ts


def format_plt_line(lat: float, lon: float, alt: float, timestamp: float) -> str:
    """Format one trace as a PLT record line (without trailing newline).

    The ``days`` field carries the timestamp at full float precision; the
    redundant date/time strings name the *containing* second (``floor``),
    so the two encodings always agree to the second.  Rounding half-up
    here would place the strings up to 0.5 s ahead of the days field,
    in the next calendar second (or minute, hour, day...).
    """
    days = float(unix_to_ole_days(timestamp))
    when = _dt.datetime.fromtimestamp(math.floor(timestamp), tz=_dt.timezone.utc)
    return (
        f"{lat:.6f},{lon:.6f},0,{alt:.0f},{days:.10f},"
        f"{when:%Y-%m-%d},{when:%H:%M:%S}"
    )


def read_plt(source: str | Path | io.TextIOBase, user_id: str) -> Trail:
    """Read a single PLT trajectory file into a :class:`Trail`.

    ``source`` may be a path or an open text stream.  Lines that do not
    parse (e.g. the six-line header) are skipped only within the header
    region; malformed body lines raise.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_plt(fh, user_id)
    lines = source.read().splitlines()
    body = lines[6:]  # the fixed six-line header
    n = len(body)
    lat = np.empty(n)
    lon = np.empty(n)
    alt = np.empty(n)
    ts = np.empty(n)
    for i, line in enumerate(body):
        lat[i], lon[i], alt[i], ts[i] = parse_plt_line(line)
    arr = TraceArray.from_columns([user_id], lat, lon, ts, alt)
    return Trail(user_id, arr.sort_by_time())


def write_plt(trail: Trail, target: str | Path | io.TextIOBase) -> None:
    """Write a trail as one PLT file (header + one record per trace)."""
    if isinstance(target, (str, Path)):
        Path(target).parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            write_plt(trail, fh)
        return
    target.write(PLT_HEADER)
    arr = trail.traces
    lat, lon, alt, ts = arr.latitude, arr.longitude, arr.altitude, arr.timestamp
    for i in range(len(arr)):
        target.write(format_plt_line(lat[i], lon[i], alt[i], ts[i]))
        target.write("\n")


def iter_plt_files(
    root: str | Path, user_ids: Iterable[str] | None = None
) -> Iterator[tuple[str, Path]]:
    """Walk a GeoLife tree, yielding ``(user_id, plt_path)`` pairs.

    The order is deterministic (sorted users, then sorted file names) and
    shared by every reader in this module, so streaming and materializing
    consumers see the same record sequence.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"GeoLife root not found: {root}")
    wanted = set(user_ids) if user_ids is not None else None
    for user_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        user = user_dir.name
        if wanted is not None and user not in wanted:
            continue
        traj_dir = user_dir / "Trajectory"
        if not traj_dir.is_dir():
            continue
        for plt_file in sorted(traj_dir.glob("*.plt")):
            yield user, plt_file


def stream_geolife_trails(
    root: str | Path, user_ids: Iterable[str] | None = None
) -> Iterator[Trail]:
    """Stream a GeoLife tree one trajectory at a time.

    Each ``.plt`` file becomes an independent :class:`Trail` the moment it
    is yielded, so peak memory is one trajectory — never the corpus.  This
    is the ingestion path for datasets larger than RAM: feed the trails
    into ``SimulatedHDFS`` (which pages chunks to disk under a memory
    budget) instead of building a :class:`GeolocatedDataset` first.
    Empty trajectories are skipped, matching :func:`read_geolife_dataset`.
    """
    for user, plt_file in iter_plt_files(root, user_ids):
        trail = read_plt(plt_file, user)
        if len(trail):
            yield trail


def read_geolife_dataset(root: str | Path, user_ids: Iterable[str] | None = None) -> GeolocatedDataset:
    """Read a GeoLife-layout directory tree into a :class:`GeolocatedDataset`.

    ``root`` contains one directory per user; each user directory contains a
    ``Trajectory/`` folder of ``.plt`` files.  ``user_ids`` optionally
    restricts which users to load.  For corpora that should never be fully
    resident, use :func:`stream_geolife_trails` instead.
    """
    ds = GeolocatedDataset()
    for trail in stream_geolife_trails(root, user_ids):
        ds.add_trail(trail)
    return ds


def write_geolife_dataset(dataset: GeolocatedDataset, root: str | Path) -> list[Path]:
    """Write a dataset in GeoLife directory layout; returns written paths.

    Each trail becomes a single PLT file named from its first timestamp,
    matching GeoLife's ``yyyymmddHHMMSS.plt`` convention.
    """
    root = Path(root)
    written: list[Path] = []
    for trail in dataset.trails():
        first = _dt.datetime.fromtimestamp(
            trail.traces.timestamp[0], tz=_dt.timezone.utc
        )
        path = root / trail.user_id / "Trajectory" / f"{first:%Y%m%d%H%M%S}.plt"
        write_plt(trail, path)
        written.append(path)
    return written
