"""Spatial indexing substrate: R-trees and space-filling curves.

DJ-Cluster's neighborhood phase (Section VII-B) relies on an R-tree so
that finding the neighbors of a point costs ``O(log n)``; the index over
the whole dataset is itself built with MapReduce (Section VII-C, Figure 6)
using a space-filling curve (Z-order or Hilbert) as the locality-preserving
partitioning function.
"""

from repro.index.spacefilling import (
    zorder_key,
    hilbert_key,
    get_curve,
    CURVES,
    normalize_to_grid,
)
from repro.index.rtree import RTree, Rect
from repro.index.rtree_mr import build_rtree_mapreduce, RTreeBuildResult
from repro.index.persistent import (
    IndexCatalog,
    IndexCorruptError,
    PersistentRTree,
    PortableIndex,
    QueryEngine,
)
from repro.index.selfjoin import radius_self_join

__all__ = [
    "radius_self_join",
    "zorder_key",
    "hilbert_key",
    "get_curve",
    "CURVES",
    "normalize_to_grid",
    "RTree",
    "Rect",
    "build_rtree_mapreduce",
    "RTreeBuildResult",
    "IndexCatalog",
    "IndexCorruptError",
    "PersistentRTree",
    "PortableIndex",
    "QueryEngine",
]
