"""Vectorized radius self-join: every point's r-neighborhood at once.

DJ-Cluster's neighborhood phase queries the index once *per trace* —
``O(n log n)`` with an R-tree, but in Python the per-query constant
dominates.  When the query set *is* the indexed set (the self-join
case), a grid-hash join computes all neighborhoods in a handful of
vectorized passes: bucket points into radius-sized cells, then for each
cell compare its members against the 3x3 cell neighbourhood with one
broadcasted Haversine evaluation.

Results are exactly the per-point ``RTree.query_radius`` sets (the
property tests assert it); the sequential DJ-Cluster uses this kernel,
while the MapReduce mapper keeps the paper's R-tree formulation.
"""

from __future__ import annotations


import numpy as np

from repro.geo.distance import haversine_m

__all__ = ["radius_self_join"]

# Deliberately below the true ~111,195 m/deg of the Haversine sphere so a
# grid cell is always *at least* radius-sized in both axes; with the exact
# constant two in-radius points could straddle two band boundaries and
# escape the 3x3 neighbourhood join.
_M_PER_DEG_LAT = 111_000.0


def radius_self_join(points: np.ndarray, radius_m: float) -> list[np.ndarray]:
    """For each (lat, lon) row, the sorted indices within ``radius_m``.

    Each point's neighborhood includes itself.  Memory per cell-pair
    comparison is O(|cell| * |neighbourhood|), fine for the dwell-cluster
    densities mobility data exhibits.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    if radius_m < 0:
        raise ValueError("radius must be non-negative")
    n = len(points)
    if n == 0:
        return []
    if radius_m == 0:
        # Exact-coordinate groups only.
        _, inverse = np.unique(points, axis=0, return_inverse=True)
        groups: dict[int, list[int]] = {}
        for i, g in enumerate(inverse):
            groups.setdefault(int(g), []).append(i)
        return [np.array(groups[int(inverse[i])], dtype=np.int64) for i in range(n)]

    lat, lon = points[:, 0], points[:, 1]
    # Cells only need to be *at least* radius-sized; a floor keeps the
    # integer band computation finite for degenerate tiny radii (the
    # exact refinement below still uses the true radius).
    bucket_m = max(radius_m, 1e-3)
    cell_lat = bucket_m / _M_PER_DEG_LAT
    lat_band = np.floor(lat / cell_lat).astype(np.int64)
    # One *global* longitude cell width (sized for the dataset's worst
    # latitude) keeps the grid uniform, so any two points within the
    # radius differ by at most one band on each axis and the 3x3
    # neighbourhood join is exhaustive.
    min_cos = max(float(np.min(np.cos(np.radians(lat)))), 1e-9)
    cell_lon = bucket_m / (_M_PER_DEG_LAT * min_cos)
    lon_band = np.floor(lon / cell_lon).astype(np.int64)

    # Bucket index: cell -> member row ids.
    order = np.lexsort((lon_band, lat_band))
    cells: dict[tuple[int, int], np.ndarray] = {}
    start = 0
    sorted_lat = lat_band[order]
    sorted_lon = lon_band[order]
    for i in range(1, n + 1):
        if i == n or sorted_lat[i] != sorted_lat[start] or sorted_lon[i] != sorted_lon[start]:
            cells[(int(sorted_lat[start]), int(sorted_lon[start]))] = order[start:i]
            start = i

    neighborhoods: list[np.ndarray | None] = [None] * n
    for (clat, clon), members in cells.items():
        candidates = [
            cells[(clat + dl, clon + dc)]
            for dl in (-1, 0, 1)
            for dc in (-1, 0, 1)
            if (clat + dl, clon + dc) in cells
        ]
        cand = np.concatenate(candidates)
        d = haversine_m(
            lat[members][:, None], lon[members][:, None],
            lat[cand][None, :], lon[cand][None, :],
        )
        close = np.atleast_2d(d) <= radius_m
        for row, point_id in enumerate(members):
            neighborhoods[int(point_id)] = np.sort(cand[close[row]])
    return neighborhoods  # type: ignore[return-value]
