"""Persistent disk-backed R-tree pages in SimulatedHDFS + a serving path.

The paper's Figure-6 pipeline builds a global R-tree with MapReduce, but
the merged index only ever lived in driver memory: every analysis paid
the build again.  This module makes the index a first-class HDFS
artifact and puts a query path in front of it:

* **Node pages** — every tree node serializes to one checksummed block
  (``RTP1`` magic + CRC-32 + a fixed little-endian body), DFS-numbered
  with the root at page 0.  Pages are grouped into HDFS chunks, so under
  ``mapreduce.memory_budget_mb`` they ride the PR-4 ``PayloadStore``
  LRU: a million-point index serves queries while only the touched page
  groups are resident.
* :class:`PersistentRTree` — save/open of a bulk-loaded
  :class:`~repro.index.rtree.RTree`.  Opening builds a *facade* tree
  whose nodes decode lazily from pages; the facade reuses ``RTree``'s
  own traversal code verbatim, so every answer (including kNN tie
  order) is byte-identical to the in-memory tree.
* :class:`IndexCatalog` — a namenode-side registry keyed by (dataset
  version, build parameters): ``ensure`` answers repeat builds with a
  zero-job catalog hit and records ``index_publish`` /
  ``index_reuse`` history events.
* :class:`QueryEngine` — point / range / radius / kNN serving with
  per-query simulated latency (dispatch + page-fault read time from the
  cost model) and ``query_served`` history events; no map task ever
  launches.
* :class:`PortableIndex` — a picklable, self-contained page set that
  crosses process-pool boundaries (paged chunks refuse to pickle), used
  to broadcast the shared index to DJ-Cluster's neighborhood mappers.

Corruption never produces garbage answers: a truncated block, a bad
checksum, or a missing catalog entry raises :class:`IndexCorruptError`.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TYPE_CHECKING

import numpy as np

from repro.index.rtree import DEFAULT_MAX_ENTRIES, Rect, RTree
from repro.index.spacefilling import DEFAULT_ORDER
from repro.mapreduce.simtime import CostModel
from repro.mapreduce.types import RecordPayload, concrete_payload
from repro.observability.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.runner import JobRunner
    from repro.observability.history import JobHistory

__all__ = [
    "IndexCorruptError",
    "PersistentRTree",
    "PortableIndex",
    "IndexCatalog",
    "CatalogEntry",
    "QueryEngine",
    "QUERY_DISPATCH_S",
    "INDEX_ROOT",
    "DEFAULT_PAGE_GROUP_BYTES",
]

#: Magic prefix of every serialized node page (version 1 of the format).
PAGE_MAGIC = b"RTP1"

#: Fixed header: magic + CRC-32 of the body.
_HEADER = struct.Struct("<4sI")

#: Body prefix: is_leaf flag + entry count, then the node MBR (4 f64).
_BODY_PREFIX = struct.Struct("<BI")

_MBR_BYTES = 4 * 8
_LEAF_ENTRY_BYTES = 8 + 16  # int64 id + (lat, lon) float64
_CHILD_ENTRY_BYTES = 8 + 32  # int64 page id + child MBR (4 f64)

#: Modelled bytes per page-group chunk.  Small groups (vs the 64 MB data
#: chunks) are what make the LRU useful: an 8 MB budget holds the hot
#: ~32 groups of a million-point index instead of thrashing whole files.
DEFAULT_PAGE_GROUP_BYTES = 256 * 1024

#: HDFS prefix under which the catalog stores its indexes.
INDEX_ROOT = ".index"

#: Simulated seconds to dispatch one query to the serving path (no job
#: setup, no map wave — the whole point of serving from a persisted
#: index).  Page faults add ``CostModel.spill_read_time`` on top.
QUERY_DISPATCH_S = 1e-3


class IndexCorruptError(RuntimeError):
    """A persisted index page or catalog entry failed validation."""


# -- page codec -------------------------------------------------------------


def _encode_leaf_page(ids: np.ndarray, points: np.ndarray, mbr: Rect) -> bytes:
    n = len(ids)
    body = (
        _BODY_PREFIX.pack(1, n)
        + mbr.as_array().astype("<f8").tobytes()
        + np.ascontiguousarray(ids, dtype="<i8").tobytes()
        + np.ascontiguousarray(points, dtype="<f8").tobytes()
    )
    return _HEADER.pack(PAGE_MAGIC, zlib.crc32(body) & 0xFFFFFFFF) + body


def _encode_internal_page(
    child_ids: list[int], child_mbrs: np.ndarray, mbr: Rect
) -> bytes:
    n = len(child_ids)
    body = (
        _BODY_PREFIX.pack(0, n)
        + mbr.as_array().astype("<f8").tobytes()
        + np.asarray(child_ids, dtype="<i8").tobytes()
        + np.ascontiguousarray(child_mbrs, dtype="<f8").tobytes()
    )
    return _HEADER.pack(PAGE_MAGIC, zlib.crc32(body) & 0xFFFFFFFF) + body


@dataclass
class _DecodedPage:
    """One node page, decoded and validated."""

    is_leaf: bool
    mbr: Rect
    ids: np.ndarray | None = None
    points: np.ndarray | None = None
    child_ids: np.ndarray | None = None
    child_mbrs: np.ndarray | None = None


def decode_page(blob: bytes, page_id: int) -> _DecodedPage:
    """Decode one node block, raising :class:`IndexCorruptError` on a
    short read, bad magic, checksum mismatch or inconsistent length."""
    if len(blob) < _HEADER.size + _BODY_PREFIX.size + _MBR_BYTES:
        raise IndexCorruptError(
            f"page {page_id}: truncated block ({len(blob)} bytes)"
        )
    magic, crc = _HEADER.unpack_from(blob, 0)
    if magic != PAGE_MAGIC:
        raise IndexCorruptError(f"page {page_id}: bad magic {magic!r}")
    body = blob[_HEADER.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise IndexCorruptError(f"page {page_id}: checksum mismatch")
    is_leaf, n = _BODY_PREFIX.unpack_from(body, 0)
    offset = _BODY_PREFIX.size
    mbr_arr = np.frombuffer(body[offset : offset + _MBR_BYTES], dtype="<f8")
    offset += _MBR_BYTES
    per_entry = _LEAF_ENTRY_BYTES if is_leaf else _CHILD_ENTRY_BYTES
    if len(body) != offset + n * per_entry:
        raise IndexCorruptError(
            f"page {page_id}: body length {len(body)} does not match "
            f"{n} entries"
        )
    mbr = Rect(*(float(x) for x in mbr_arr))
    if is_leaf:
        ids = np.frombuffer(body[offset : offset + 8 * n], dtype="<i8")
        points = np.frombuffer(body[offset + 8 * n :], dtype="<f8").reshape(n, 2)
        return _DecodedPage(True, mbr, ids=ids, points=points)
    child_ids = np.frombuffer(body[offset : offset + 8 * n], dtype="<i8")
    child_mbrs = np.frombuffer(body[offset + 8 * n :], dtype="<f8").reshape(n, 4)
    return _DecodedPage(False, mbr, child_ids=child_ids, child_mbrs=child_mbrs)


def _pages_from_tree(tree: RTree) -> list[bytes]:
    """DFS-preorder page blobs of a tree (root at page 0)."""
    pages: list[bytes | None] = []

    def encode(node) -> int:
        page_id = len(pages)
        pages.append(None)
        if node.is_leaf:
            pages[page_id] = _encode_leaf_page(node.ids, node.points, node.mbr)
        else:
            child_ids = [encode(c) for c in node.children]
            pages[page_id] = _encode_internal_page(
                child_ids, node.child_mbrs(), node.mbr
            )
        return page_id

    if tree._root is not None:
        encode(tree._root)
    return pages  # type: ignore[return-value]


# -- lazy facade over a page source -----------------------------------------


class _PageSource:
    """Decodes pages on demand through a bounded decoded-page LRU.

    Residency of the *raw* page groups is governed by the HDFS payload
    store (when budgeted); this cache only bounds how many *decoded*
    nodes are alive at once, so a full-tree walk over a million points
    never materializes the whole index as Python objects.
    """

    def __init__(self, reader: Callable[[int], bytes], cache_pages: int = 128):
        self._reader = reader
        self._cache: OrderedDict[int, _DecodedPage] = OrderedDict()
        self._cache_pages = max(1, cache_pages)

    def decoded(self, page_id: int) -> _DecodedPage:
        try:
            page = self._cache[page_id]
            self._cache.move_to_end(page_id)
            return page
        except KeyError:
            pass
        page = decode_page(self._reader(page_id), page_id)
        self._cache[page_id] = page
        if len(self._cache) > self._cache_pages:
            self._cache.popitem(last=False)
        return page

    def node(self, page_id: int, mbr: Rect | None = None) -> "_PagedNode":
        return _PagedNode(self, page_id, mbr)


class _PagedChildren:
    """Lazy child sequence exposing the ``list[_Node]`` surface."""

    __slots__ = ("_source", "_child_ids", "_child_mbrs")

    def __init__(self, source: _PageSource, child_ids, child_mbrs):
        self._source = source
        self._child_ids = child_ids
        self._child_mbrs = child_mbrs

    def __len__(self) -> int:
        return len(self._child_ids)

    def __getitem__(self, i: int) -> "_PagedNode":
        pid = int(self._child_ids[i])
        return self._source.node(pid, Rect(*(float(x) for x in self._child_mbrs[i])))

    def __iter__(self) -> Iterator["_PagedNode"]:
        for i in range(len(self._child_ids)):
            yield self[i]


class _PagedNode:
    """A node proxy with the exact ``_Node`` read surface.

    ``mbr`` is known from the parent page without decoding this one (the
    kNN best-first heap prioritizes children by MBR distance before ever
    visiting them); everything else decodes on first access.
    """

    __slots__ = ("_source", "_page_id", "_mbr")

    def __init__(self, source: _PageSource, page_id: int, mbr: Rect | None):
        self._source = source
        self._page_id = page_id
        self._mbr = mbr

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = self._source.decoded(self._page_id).mbr
        return self._mbr

    @property
    def is_leaf(self) -> bool:
        return self._source.decoded(self._page_id).is_leaf

    @property
    def ids(self) -> np.ndarray:
        return self._source.decoded(self._page_id).ids

    @property
    def points(self) -> np.ndarray:
        return self._source.decoded(self._page_id).points

    @property
    def children(self) -> _PagedChildren:
        page = self._source.decoded(self._page_id)
        return _PagedChildren(self._source, page.child_ids, page.child_mbrs)

    def child_mbrs(self) -> np.ndarray:
        return self._source.decoded(self._page_id).child_mbrs

    def n_entries(self) -> int:
        page = self._source.decoded(self._page_id)
        return len(page.ids) if page.is_leaf else len(page.child_ids)


def _facade_tree(source: _PageSource, meta: dict[str, Any]) -> RTree:
    """An ``RTree`` whose root is a lazy page proxy.

    The facade reuses the in-memory tree's own query methods unmodified
    — identical pruning, identical refinement, identical tie-breaking —
    which is what makes persistent answers byte-identical by
    construction rather than by reimplementation.
    """
    tree = RTree(max_entries=int(meta["max_entries"]))
    if int(meta["n_pages"]) > 0:
        tree._root = source.node(int(meta["root"]), None)
    tree._size = int(meta["size"])
    return tree


# -- HDFS-backed storage -----------------------------------------------------


class _HDFSPageReader:
    """Locates a page blob via the meta record's chunk-start table.

    ``chunk_starts[i]`` is the first page id stored in chunk ``i`` of the
    pages file, so a read is one bisect + one record index — no payload
    scans.  Under a memory budget, touching a paged-out group counts a
    page fault in the store's :class:`~repro.mapreduce.spill.SpillStats`.
    """

    def __init__(self, hdfs: "SimulatedHDFS", pages_path: str, chunk_starts, n_pages: int):
        self._hdfs = hdfs
        self._pages_path = pages_path
        self._chunk_starts = list(chunk_starts)
        self._n_pages = n_pages

    def __call__(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._n_pages:
            raise IndexCorruptError(
                f"page {page_id} out of range (index has {self._n_pages} pages)"
            )
        ordinal = bisect.bisect_right(self._chunk_starts, page_id) - 1
        try:
            chunks = self._hdfs.chunks(self._pages_path)
        except FileNotFoundError as exc:
            raise IndexCorruptError(
                f"pages file missing: {self._pages_path}"
            ) from exc
        if ordinal < 0 or ordinal >= len(chunks):
            raise IndexCorruptError(
                f"page {page_id}: chunk ordinal {ordinal} missing from "
                f"{self._pages_path}"
            )
        payload = concrete_payload(chunks[ordinal].payload)
        if not isinstance(payload, RecordPayload):
            raise IndexCorruptError(
                f"{self._pages_path}: chunk {ordinal} is not a record payload"
            )
        pos = page_id - self._chunk_starts[ordinal]
        if pos >= len(payload.records):
            raise IndexCorruptError(
                f"page {page_id} missing from chunk {ordinal} of "
                f"{self._pages_path}"
            )
        key, blob = payload.records[pos]
        if key != page_id or not isinstance(blob, (bytes, bytearray)):
            raise IndexCorruptError(
                f"page {page_id}: record mismatch in {self._pages_path} "
                f"(found key {key!r})"
            )
        return bytes(blob)


class PersistentRTree:
    """A bulk-loaded R-tree persisted as checksummed node pages in HDFS.

    Layout under ``path``:

    * ``{path}/pages`` — ``(page_id, block_bytes)`` records, grouped
      into ~``group_bytes`` chunks (the paging unit under a budget);
    * ``{path}/meta`` — one record: root page, page/entry counts,
      height, fanout, and the per-chunk first-page table that makes a
      page read one bisect instead of a scan.
    """

    def __init__(self, hdfs: "SimulatedHDFS", path: str, meta: dict[str, Any]):
        self._hdfs = hdfs
        self.path = path
        self.meta = meta
        reader = _HDFSPageReader(
            hdfs, f"{path}/pages", meta["chunk_starts"], int(meta["n_pages"])
        )
        self._source = _PageSource(reader)
        self._tree = _facade_tree(self._source, meta)

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def save(
        cls,
        hdfs: "SimulatedHDFS",
        path: str,
        tree: RTree,
        group_bytes: int = DEFAULT_PAGE_GROUP_BYTES,
    ) -> "PersistentRTree":
        """Serialize ``tree`` under ``path`` and return the opened index."""
        if group_bytes <= 0:
            raise ValueError("group_bytes must be positive")
        pages = _pages_from_tree(tree)
        payloads: list[RecordPayload] = []
        chunk_starts: list[int] = []
        current: list[tuple[int, bytes]] = []
        used = 0
        for page_id, blob in enumerate(pages):
            size = 8 + len(blob)
            if current and used + size > group_bytes:
                payloads.append(RecordPayload(current))
                current, used = [], 0
            if not current:
                chunk_starts.append(page_id)
            current.append((page_id, blob))
            used += size
        if current:
            payloads.append(RecordPayload(current))
        hdfs.delete(f"{path}/pages", missing_ok=True)
        hdfs.delete(f"{path}/meta", missing_ok=True)
        hdfs.put_chunks(f"{path}/pages", payloads)
        meta = {
            "format": "rtree-pages-v1",
            "root": 0,
            "n_pages": len(pages),
            "size": len(tree),
            "height": tree.height(),
            "max_entries": tree.max_entries,
            "page_bytes": sum(len(b) for b in pages),
            "chunk_starts": chunk_starts,
        }
        hdfs.put_records(f"{path}/meta", [("meta", meta)])
        return cls(hdfs, path, meta)

    @classmethod
    def open(cls, hdfs: "SimulatedHDFS", path: str) -> "PersistentRTree":
        """Open a persisted index from its meta record (no page scans)."""
        try:
            records = hdfs.read_records(f"{path}/meta")
        except FileNotFoundError as exc:
            raise IndexCorruptError(f"no persisted index at {path}") from exc
        if not records or records[0][0] != "meta" or not isinstance(records[0][1], dict):
            raise IndexCorruptError(f"{path}/meta is not an index meta record")
        meta = records[0][1]
        if meta.get("format") != "rtree-pages-v1":
            raise IndexCorruptError(
                f"{path}: unknown index format {meta.get('format')!r}"
            )
        return cls(hdfs, path, meta)

    # -- structure ----------------------------------------------------------
    @property
    def tree(self) -> RTree:
        """The lazy facade tree (the full ``RTree`` query surface)."""
        return self._tree

    def __len__(self) -> int:
        return self._tree._size

    @property
    def bounds(self) -> Rect | None:
        return self._tree.bounds

    def height(self) -> int:
        return int(self.meta["height"])

    # -- queries (delegating to RTree's own code) ----------------------------
    def query_point(self, lat: float, lon: float) -> np.ndarray:
        return self._tree.query_rect(Rect(lat, lon, lat, lon))

    def query_rect(self, rect: Rect) -> np.ndarray:
        return self._tree.query_rect(rect)

    def query_radius(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        return self._tree.query_radius(lat, lon, radius_m)

    def query_radius_batch(self, points: np.ndarray, radius_m: float) -> list[np.ndarray]:
        return self._tree.query_radius_batch(points, radius_m)

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[int, float]]:
        return self._tree.knn(lat, lon, k)

    # -- portability ---------------------------------------------------------
    def to_portable(self) -> "PortableIndex":
        """Self-contained in-memory copy of the page set.

        Budgeted chunks deliberately refuse to pickle (their loader holds
        the driver's payload store), so the distributed-cache broadcast
        to process-pool workers ships this portable form instead.
        """
        blobs: list[bytes] = [b""] * int(self.meta["n_pages"])
        seen = 0
        for chunk in self._hdfs.chunks(f"{self.path}/pages"):
            for page_id, blob in chunk.records():
                if not 0 <= page_id < len(blobs):
                    raise IndexCorruptError(
                        f"page {page_id} out of range in {self.path}/pages"
                    )
                blobs[page_id] = bytes(blob)
                seen += 1
        if seen != len(blobs):
            raise IndexCorruptError(
                f"{self.path}: expected {len(blobs)} pages, found {seen}"
            )
        meta = {k: v for k, v in self.meta.items() if k != "chunk_starts"}
        return PortableIndex(meta, blobs)


class PortableIndex:
    """A picklable page set with the same lazy facade on top.

    Equality of answers with :class:`PersistentRTree` (and hence with
    the in-memory tree) is structural: both decode the same page bytes
    through the same facade.
    """

    def __init__(self, meta: dict[str, Any], blobs: list[bytes]):
        self._meta = meta
        self._blobs = blobs
        self._tree: RTree | None = None

    def __getstate__(self):
        return {"meta": self._meta, "blobs": self._blobs}

    def __setstate__(self, state):
        self._meta = state["meta"]
        self._blobs = state["blobs"]
        self._tree = None

    @property
    def tree(self) -> RTree:
        if self._tree is None:
            blobs = self._blobs
            source = _PageSource(lambda pid: blobs[pid])
            self._tree = _facade_tree(source, self._meta)
        return self._tree

    def __len__(self) -> int:
        return int(self._meta["size"])

    def query_point(self, lat: float, lon: float) -> np.ndarray:
        return self.tree.query_rect(Rect(lat, lon, lat, lon))

    def query_rect(self, rect: Rect) -> np.ndarray:
        return self.tree.query_rect(rect)

    def query_radius(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        return self.tree.query_radius(lat, lon, radius_m)

    def query_radius_batch(self, points: np.ndarray, radius_m: float) -> list[np.ndarray]:
        return self.tree.query_radius_batch(points, radius_m)

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[int, float]]:
        return self.tree.knn(lat, lon, k)


# -- catalog -----------------------------------------------------------------


@dataclass
class CatalogEntry:
    """One catalog row: what was indexed, how, and where it lives."""

    key: str
    path: str
    input_path: str
    dataset_version: int
    params: dict[str, Any]
    n_points: int
    build_sim_seconds: float = 0.0


class IndexCatalog:
    """HDFS-resident registry of persisted R-trees.

    The key digests (input path, namenode version of the input, build
    parameters): any rewrite of the dataset or change of build knobs
    yields a different key, so a catalog hit is always safe to reuse —
    the same contract the service-layer result cache makes.
    """

    def __init__(self, hdfs: "SimulatedHDFS", root: str = INDEX_ROOT):
        self._hdfs = hdfs
        self._root = root

    # -- keys ----------------------------------------------------------------
    def _params(self, n_partitions, curve, sample_per_chunk, max_entries, curve_order):
        return {
            "n_partitions": int(n_partitions),
            "curve": str(curve),
            "sample_per_chunk": int(sample_per_chunk),
            "max_entries": int(max_entries),
            "curve_order": int(curve_order),
        }

    def key_for(self, input_path: str, params: dict[str, Any]) -> str:
        version = self._hdfs.version(input_path)
        blob = json.dumps(
            {"input": input_path, "version": version, "params": params},
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def path_for(self, key: str) -> str:
        return f"{self._root}/{key}"

    # -- lookup --------------------------------------------------------------
    def entry(self, key: str) -> CatalogEntry:
        """The catalog row for ``key``; :class:`IndexCorruptError` if the
        entry (or its index) is missing or dangling."""
        entry_path = f"{self.path_for(key)}/entry"
        if not self._hdfs.exists(entry_path):
            raise IndexCorruptError(f"no catalog entry for key {key}")
        data = self._hdfs.read_records(entry_path)[0][1]
        if not self._hdfs.exists(f"{self.path_for(key)}/meta"):
            raise IndexCorruptError(
                f"catalog entry {key} dangles: index pages/meta missing"
            )
        return CatalogEntry(**data)

    def entries(self) -> list[CatalogEntry]:
        out = []
        suffix = "/entry"
        prefix = f"{self._root}/"
        for path in self._hdfs.ls():
            if path.startswith(prefix) and path.endswith(suffix):
                key = path[len(prefix) : -len(suffix)]
                try:
                    out.append(self.entry(key))
                except IndexCorruptError:
                    continue
        return out

    def open(self, key: str) -> PersistentRTree:
        """Open a cataloged index; missing entries are a typed error,
        never a silent rebuild."""
        entry = self.entry(key)
        return PersistentRTree.open(self._hdfs, entry.path)

    def delete(self, key: str) -> None:
        for part in ("entry", "meta", "pages"):
            self._hdfs.delete(f"{self.path_for(key)}/{part}", missing_ok=True)

    # -- ensure --------------------------------------------------------------
    def ensure(
        self,
        runner: "JobRunner",
        input_path: str,
        n_partitions: int | None = None,
        curve: str = "hilbert",
        sample_per_chunk: int = 1024,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        curve_order: int = DEFAULT_ORDER,
        group_bytes: int = DEFAULT_PAGE_GROUP_BYTES,
        history: "JobHistory | None" = None,
        job: str = "index-catalog",
    ) -> tuple[PersistentRTree, bool]:
        """The cataloged index for (input, params), building it at most
        once per dataset version.

        Returns ``(index, built)``.  A hit opens the persisted pages with
        zero jobs and emits ``index_reuse``; a miss runs the Figure-6
        MapReduce build, persists the merged tree, registers the entry
        and emits ``index_publish``.
        """
        if n_partitions is None:
            n_partitions = max(1, runner.cluster.total_reduce_slots() // 2)
        params = self._params(
            n_partitions, curve, sample_per_chunk, max_entries, curve_order
        )
        key = self.key_for(input_path, params)
        h = history if history is not None else runner.history
        try:
            entry = self.entry(key)
        except IndexCorruptError:
            entry = None
        if entry is not None:
            index = PersistentRTree.open(self._hdfs, entry.path)
            if h is not None:
                h.emit(
                    EventKind.INDEX_REUSE,
                    job,
                    h.clock,
                    key=key,
                    path=entry.path,
                    input_path=input_path,
                    dataset_version=entry.dataset_version,
                    n_points=entry.n_points,
                )
            return index, False

        from repro.index.rtree_mr import build_rtree_mapreduce

        path = self.path_for(key)
        build = build_rtree_mapreduce(
            runner,
            input_path,
            n_partitions=n_partitions,
            curve=curve,
            sample_per_chunk=sample_per_chunk,
            max_entries=max_entries,
            curve_order=curve_order,
            workdir=f"{path}.build",
        )
        index = PersistentRTree.save(
            self._hdfs, path, build.tree, group_bytes=group_bytes
        )
        entry = CatalogEntry(
            key=key,
            path=path,
            input_path=input_path,
            dataset_version=self._hdfs.version(input_path),
            params=params,
            n_points=len(build.tree),
            build_sim_seconds=build.sim_seconds,
        )
        self._hdfs.delete(f"{path}/entry", missing_ok=True)
        self._hdfs.put_records(f"{path}/entry", [("entry", entry.__dict__)])
        if h is not None:
            h.emit(
                EventKind.INDEX_PUBLISH,
                job,
                h.clock,
                key=key,
                path=path,
                input_path=input_path,
                dataset_version=entry.dataset_version,
                n_points=entry.n_points,
                n_pages=int(index.meta["n_pages"]),
                page_bytes=int(index.meta["page_bytes"]),
                build_sim_seconds=build.sim_seconds,
            )
        return index, True


# -- serving -----------------------------------------------------------------


@dataclass
class QueryStats:
    """Cumulative serving counters (all on the simulated clock)."""

    n_queries: int = 0
    page_faults: int = 0
    fault_bytes: int = 0
    latency_s: float = 0.0
    results: int = 0
    last: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_queries": self.n_queries,
            "page_faults": self.page_faults,
            "fault_bytes": self.fault_bytes,
            "latency_s": self.latency_s,
            "results": self.results,
        }


class QueryEngine:
    """Point / range / radius / kNN serving over a persisted index.

    Zero map tasks per query: answers come straight from the page facade.
    Each query is charged ``QUERY_DISPATCH_S`` plus the cost model's
    local-disk read time for the bytes actually paged in (measured as the
    delta of the HDFS payload store's fault counters), advances the
    history clock by that latency, and emits one ``query_served`` event.
    """

    def __init__(
        self,
        index: PersistentRTree | PortableIndex,
        hdfs: "SimulatedHDFS | None" = None,
        cost_model: CostModel | None = None,
        history: "JobHistory | None" = None,
        job: str = "serving",
    ):
        self.index = index
        self._hdfs = hdfs if hdfs is not None else getattr(index, "_hdfs", None)
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._history = history
        self._job = job
        self.stats = QueryStats()

    # -- internals -----------------------------------------------------------
    def _fault_counters(self) -> tuple[int, int]:
        stats = self._hdfs.spill_stats if self._hdfs is not None else None
        if stats is None:
            return 0, 0
        return stats.pages_in, stats.page_in_bytes

    def _serve(self, kind: str, run: Callable[[], Any], n_results: Callable[[Any], int], **detail):
        before_faults, before_bytes = self._fault_counters()
        result = run()
        after_faults, after_bytes = self._fault_counters()
        faults = after_faults - before_faults
        fault_bytes = after_bytes - before_bytes
        latency = QUERY_DISPATCH_S + self._cost_model.spill_read_time(fault_bytes)
        count = n_results(result)
        self.stats.n_queries += 1
        self.stats.page_faults += faults
        self.stats.fault_bytes += fault_bytes
        self.stats.latency_s += latency
        self.stats.results += count
        self.stats.last = {
            "query": kind,
            "n_results": count,
            "page_faults": faults,
            "fault_bytes": fault_bytes,
            "latency_s": latency,
            **detail,
        }
        if self._history is not None:
            t0 = self._history.clock
            self._history.emit(
                EventKind.QUERY_SERVED,
                self._job,
                t0 + latency,
                query=kind,
                n_results=count,
                page_faults=faults,
                fault_bytes=fault_bytes,
                latency_s=latency,
                **detail,
            )
            self._history.advance(t0 + latency)
        return result

    @staticmethod
    def _check_finite(**coords: float) -> None:
        for name, value in coords.items():
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")

    # -- the query surface ---------------------------------------------------
    def point(self, lat: float, lon: float) -> np.ndarray:
        """Ids of entries at exactly (lat, lon)."""
        self._check_finite(lat=lat, lon=lon)
        return self._serve(
            "point",
            lambda: self.index.query_point(lat, lon),
            len,
            lat=lat,
            lon=lon,
        )

    def range(
        self, min_lat: float, min_lon: float, max_lat: float, max_lon: float
    ) -> np.ndarray:
        """Ids of entries inside the inclusive rectangle."""
        self._check_finite(
            min_lat=min_lat, min_lon=min_lon, max_lat=max_lat, max_lon=max_lon
        )
        rect = Rect(min_lat, min_lon, max_lat, max_lon)
        return self._serve(
            "range",
            lambda: self.index.query_rect(rect),
            len,
            rect=[float(x) for x in rect.as_array()],
        )

    def radius(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        """Ids of entries within ``radius_m`` Haversine metres."""
        self._check_finite(lat=lat, lon=lon)
        return self._serve(
            "radius",
            lambda: self.index.query_radius(lat, lon, radius_m),
            len,
            lat=lat,
            lon=lon,
            radius_m=radius_m,
        )

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest entries as ``(id, metres)``, nearest first."""
        self._check_finite(lat=lat, lon=lon)
        return self._serve(
            "knn",
            lambda: self.index.knn(lat, lon, k),
            len,
            lat=lat,
            lon=lon,
            k=k,
        )

    def report(self) -> dict[str, Any]:
        """Cumulative serving counters as a JSON-safe dict."""
        out = self.stats.as_dict()
        n = max(1, self.stats.n_queries)
        out["mean_latency_ms"] = 1000.0 * self.stats.latency_s / n
        return out
