"""R-tree spatial index (Guttman 1984) over mobility-trace coordinates.

"R-Trees are data structures commonly used for indexing multidimensional
data ... At the leaf level each rectangle contains only a single datapoint
while higher levels aggregate an increasing number of datapoints.  When
querying an R-Tree only the bounding rectangles intersecting the current
query are traversed." (Section VII-C.)

This implementation provides both construction paths the reproduction
needs:

* **STR bulk load** (:meth:`RTree.bulk_load`) — sort-tile-recursive
  packing, used by the MapReduce phase-2 reducers to index a partition;
* **dynamic insert** with Guttman's quadratic split (:meth:`RTree.insert`)
  — the classic algorithm, used in tests as the reference behaviour;

plus the queries DJ-Cluster needs: rectangle search, radius search
(metres, Haversine-refined) and k-nearest-neighbours, and the phase-3
**merge** of small R-trees into a global index.

Hot-path note: each internal node keeps its children's MBRs in one
``(fanout, 4)`` NumPy array so that the overlap test per visited node is a
single vectorized comparison, not a per-child Python loop.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geo.distance import haversine_m

__all__ = ["Rect", "RTree", "DEFAULT_MAX_ENTRIES"]

#: Default node fanout (Guttman's M).
DEFAULT_MAX_ENTRIES = 32

#: Metres per degree of latitude, for radius -> bounding-box conversion.
#: Deliberately *below* the true ~111,195 m/deg of the Haversine sphere so
#: the pruning rectangle is a strict superset of the query disc — the box
#: may only ever admit extra candidates (discarded by the exact Haversine
#: refinement), never exclude a true neighbour.
_M_PER_DEG_LAT = 111_000.0

#: Absolute floor (degrees) on the pruning rectangle's half-widths for
#: positive radii.  Degree deltas below ~1e-13 vanish when ``haversine_m``
#: converts to radians (the difference rounds away), so such point pairs
#: have Haversine distance exactly 0 and belong to *every* positive-radius
#: neighbourhood; the floor keeps them inside the box.  Zero radii skip the
#: floor: they must match exact-coordinate grouping.
_DEG_EPS = 1e-12


def _radius_rect(lat: float, lon: float, radius_m: float) -> Rect:
    """Degree-space pruning rectangle covering the Haversine disc.

    Conservative by construction: longitude width uses the smallest
    cosine over the rectangle's latitude band (widest meridian
    convergence), and a band touching a pole spans all longitudes.
    """
    pad = _DEG_EPS if radius_m > 0 else 0.0
    dlat = radius_m / _M_PER_DEG_LAT + pad
    min_lat = max(lat - dlat, -90.0)
    max_lat = min(lat + dlat, 90.0)
    if lat - dlat <= -90.0 or lat + dlat >= 90.0:
        # Disc may wrap a pole: every longitude is reachable.
        return Rect(min_lat, -180.0, max_lat, 180.0)
    cos_band = max(
        min(math.cos(math.radians(min_lat)), math.cos(math.radians(max_lat))),
        1e-9,
    )
    dlon = radius_m / (_M_PER_DEG_LAT * cos_band) + pad
    return Rect(min_lat, max(lon - dlon, -180.0), max_lat, min(lon + dlon, 180.0))


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle in (latitude, longitude) space."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.max_lat < self.min_lat or self.max_lon < self.min_lon:
            raise ValueError(f"degenerate rect: {self}")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "Rect":
        """MBR of an (n, 2) array of (lat, lon) rows."""
        if len(points) == 0:
            raise ValueError("cannot bound zero points")
        return cls(
            float(points[:, 0].min()),
            float(points[:, 1].min()),
            float(points[:, 0].max()),
            float(points[:, 1].max()),
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def contains_point(self, lat: float, lon: float) -> bool:
        return (
            self.min_lat <= lat <= self.max_lat
            and self.min_lon <= lon <= self.max_lon
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def area(self) -> float:
        return (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).area() - self.area()

    def as_array(self) -> np.ndarray:
        return np.array([self.min_lat, self.min_lon, self.max_lat, self.max_lon])

    def min_dist_m(self, lat: float, lon: float) -> float:
        """Lower bound on the Haversine distance from a point to this rect.

        Clamps the point into the rectangle and measures to the clamped
        point — exact for points outside, zero inside.
        """
        clat = min(max(lat, self.min_lat), self.max_lat)
        clon = min(max(lon, self.min_lon), self.max_lon)
        return float(haversine_m(lat, lon, clat, clon))


class _Node:
    """Internal tree node: a leaf over points, or a parent over nodes."""

    __slots__ = ("is_leaf", "ids", "points", "children", "mbr")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.ids: np.ndarray | None = None  # leaf: (n,) int64
        self.points: np.ndarray | None = None  # leaf: (n, 2) float64
        self.children: list[_Node] = []  # internal
        self.mbr: Rect | None = None

    def recompute_mbr(self) -> None:
        if self.is_leaf:
            self.mbr = Rect.of_points(self.points)
        else:
            mbr = self.children[0].mbr
            for child in self.children[1:]:
                mbr = mbr.union(child.mbr)
            self.mbr = mbr

    def child_mbrs(self) -> np.ndarray:
        """(n_children, 4) array of child MBRs for vectorized pruning."""
        return np.array([c.mbr.as_array() for c in self.children])

    def n_entries(self) -> int:
        return len(self.ids) if self.is_leaf else len(self.children)


def _chunk_evenly(n: int, size: int) -> Iterator[slice]:
    for start in range(0, n, size):
        yield slice(start, min(start + size, n))


class RTree:
    """An R-tree over (latitude, longitude) points with integer ids."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        self.max_entries = max_entries
        self.min_entries = max(1, max_entries // 2)
        self._root: _Node | None = None
        self._size = 0

    # -- construction -------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        ids: np.ndarray | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Sort-tile-recursive bulk load of an (n, 2) point array.

        STR packs points into ``ceil(n/M)`` full leaves arranged in a
        near-square tile grid: sort by latitude, cut into vertical slabs,
        sort each slab by longitude, cut into leaves.  Upper levels pack
        node centres the same way.
        """
        tree = cls(max_entries=max_entries)
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array")
        n = len(points)
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) != n:
                raise ValueError("ids length mismatch")
        if n == 0:
            return tree
        leaves = tree._str_pack_leaves(points, ids)
        tree._root = tree._build_upper_levels(leaves)
        tree._size = n
        return tree

    def _str_pack_leaves(self, points: np.ndarray, ids: np.ndarray) -> list[_Node]:
        m = self.max_entries
        n = len(points)
        n_leaves = -(-n // m)
        n_slabs = max(1, int(math.ceil(math.sqrt(n_leaves))))
        slab_size = n_slabs * m
        order = np.argsort(points[:, 0], kind="stable")
        leaves: list[_Node] = []
        for slab in _chunk_evenly(n, slab_size):
            slab_idx = order[slab]
            slab_order = slab_idx[np.argsort(points[slab_idx, 1], kind="stable")]
            for piece in _chunk_evenly(len(slab_order), m):
                idx = slab_order[piece]
                leaf = _Node(is_leaf=True)
                leaf.ids = ids[idx].copy()
                leaf.points = points[idx].copy()
                leaf.recompute_mbr()
                leaves.append(leaf)
        return leaves

    def _build_upper_levels(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            centers = np.array(
                [
                    (
                        (c.mbr.min_lat + c.mbr.max_lat) / 2.0,
                        (c.mbr.min_lon + c.mbr.max_lon) / 2.0,
                    )
                    for c in nodes
                ]
            )
            m = self.max_entries
            n_parents = -(-len(nodes) // m)
            n_slabs = max(1, int(math.ceil(math.sqrt(n_parents))))
            slab_size = n_slabs * m
            order = np.argsort(centers[:, 0], kind="stable")
            parents: list[_Node] = []
            for slab in _chunk_evenly(len(nodes), slab_size):
                slab_idx = order[slab]
                slab_order = slab_idx[np.argsort(centers[slab_idx, 1], kind="stable")]
                for piece in _chunk_evenly(len(slab_order), m):
                    parent = _Node(is_leaf=False)
                    parent.children = [nodes[i] for i in slab_order[piece]]
                    parent.recompute_mbr()
                    parents.append(parent)
            nodes = parents
        return nodes[0]

    # -- dynamic insert (Guttman, quadratic split) -----------------------------
    def insert(self, point_id: int, lat: float, lon: float) -> None:
        """Insert one point, splitting overflowing nodes quadratically."""
        if self._root is None:
            leaf = _Node(is_leaf=True)
            leaf.ids = np.array([point_id], dtype=np.int64)
            leaf.points = np.array([[lat, lon]])
            leaf.recompute_mbr()
            self._root = leaf
            self._size = 1
            return
        split = self._insert_into(self._root, point_id, lat, lon)
        if split is not None:
            new_root = _Node(is_leaf=False)
            new_root.children = [self._root, split]
            new_root.recompute_mbr()
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _Node, point_id: int, lat: float, lon: float) -> _Node | None:
        point_rect = Rect(lat, lon, lat, lon)
        if node.is_leaf:
            node.ids = np.append(node.ids, np.int64(point_id))
            node.points = np.vstack([node.points, [lat, lon]])
            node.recompute_mbr()
            if len(node.ids) > self.max_entries:
                return self._split_leaf(node)
            return None
        # ChooseLeaf: the child needing least enlargement (ties: least area).
        best = min(
            node.children,
            key=lambda c: (c.mbr.enlargement(point_rect), c.mbr.area()),
        )
        split = self._insert_into(best, point_id, lat, lon)
        if split is not None:
            node.children.append(split)
        node.recompute_mbr()
        if len(node.children) > self.max_entries:
            return self._split_internal(node)
        return None

    @staticmethod
    def _quadratic_seeds(rects: list[Rect]) -> tuple[int, int]:
        """PickSeeds: the pair wasting the most area if grouped together."""
        worst, seeds = -1.0, (0, 1)
        for i, j in itertools.combinations(range(len(rects)), 2):
            waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
            if waste > worst:
                worst, seeds = waste, (i, j)
        return seeds

    def _distribute(self, rects: list[Rect]) -> tuple[list[int], list[int]]:
        """Quadratic-split distribution of entry indices into two groups."""
        i, j = self._quadratic_seeds(rects)
        group_a, group_b = [i], [j]
        mbr_a, mbr_b = rects[i], rects[j]
        rest = [k for k in range(len(rects)) if k not in (i, j)]
        for k in rest:
            # Force the remainder into a group that must reach min_entries.
            need_a = self.min_entries - len(group_a)
            need_b = self.min_entries - len(group_b)
            remaining = len(rects) - len(group_a) - len(group_b)
            if need_a >= remaining:
                group_a.append(k)
                mbr_a = mbr_a.union(rects[k])
                continue
            if need_b >= remaining:
                group_b.append(k)
                mbr_b = mbr_b.union(rects[k])
                continue
            grow_a = mbr_a.enlargement(rects[k])
            grow_b = mbr_b.enlargement(rects[k])
            if (grow_a, mbr_a.area(), len(group_a)) <= (grow_b, mbr_b.area(), len(group_b)):
                group_a.append(k)
                mbr_a = mbr_a.union(rects[k])
            else:
                group_b.append(k)
                mbr_b = mbr_b.union(rects[k])
        return group_a, group_b

    def _split_leaf(self, node: _Node) -> _Node:
        rects = [
            Rect(p[0], p[1], p[0], p[1]) for p in node.points
        ]
        group_a, group_b = self._distribute(rects)
        sibling = _Node(is_leaf=True)
        sibling.ids = node.ids[group_b].copy()
        sibling.points = node.points[group_b].copy()
        node.ids = node.ids[group_a].copy()
        node.points = node.points[group_a].copy()
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    def _split_internal(self, node: _Node) -> _Node:
        rects = [c.mbr for c in node.children]
        group_a, group_b = self._distribute(rects)
        sibling = _Node(is_leaf=False)
        sibling.children = [node.children[i] for i in group_b]
        node.children = [node.children[i] for i in group_a]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # -- queries ------------------------------------------------------------
    def query_rect(self, rect: Rect) -> np.ndarray:
        """Ids of all points inside ``rect`` (inclusive bounds)."""
        if self._root is None:
            return np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = []
        stack = [self._root]
        qarr = rect.as_array()
        while stack:
            node = stack.pop()
            if node.is_leaf:
                pts = node.points
                mask = (
                    (pts[:, 0] >= qarr[0])
                    & (pts[:, 1] >= qarr[1])
                    & (pts[:, 0] <= qarr[2])
                    & (pts[:, 1] <= qarr[3])
                )
                if mask.any():
                    out.append(node.ids[mask])
            else:
                mbrs = node.child_mbrs()
                hit = ~(
                    (mbrs[:, 0] > qarr[2])
                    | (mbrs[:, 2] < qarr[0])
                    | (mbrs[:, 1] > qarr[3])
                    | (mbrs[:, 3] < qarr[1])
                )
                for i in np.flatnonzero(hit):
                    stack.append(node.children[i])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    def query_radius(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        """Ids of points within ``radius_m`` metres (Haversine) of a point.

        A latitude/longitude bounding box prunes the tree; survivors are
        refined with the exact Haversine distance.
        """
        if not math.isfinite(radius_m):
            raise ValueError(f"radius must be finite, got {radius_m!r}")
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        if not (math.isfinite(lat) and math.isfinite(lon)):
            raise ValueError(f"query coordinates must be finite, got ({lat!r}, {lon!r})")
        if self._root is None:
            return np.empty(0, dtype=np.int64)
        rect = _radius_rect(lat, lon, radius_m)
        out: list[np.ndarray] = []
        stack = [self._root]
        qarr = rect.as_array()
        while stack:
            node = stack.pop()
            if node.is_leaf:
                pts = node.points
                mask = (
                    (pts[:, 0] >= qarr[0])
                    & (pts[:, 1] >= qarr[1])
                    & (pts[:, 0] <= qarr[2])
                    & (pts[:, 1] <= qarr[3])
                )
                if mask.any():
                    cand_pts = pts[mask]
                    dist = haversine_m(lat, lon, cand_pts[:, 0], cand_pts[:, 1])
                    keep = dist <= radius_m
                    if np.any(keep):
                        out.append(node.ids[mask][keep])
            else:
                mbrs = node.child_mbrs()
                hit = ~(
                    (mbrs[:, 0] > qarr[2])
                    | (mbrs[:, 2] < qarr[0])
                    | (mbrs[:, 1] > qarr[3])
                    | (mbrs[:, 3] < qarr[1])
                )
                for i in np.flatnonzero(hit):
                    stack.append(node.children[i])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    def query_radius_batch(self, points: np.ndarray, radius_m: float) -> list[np.ndarray]:
        """Per-point :meth:`query_radius` for an (n, 2) array of queries.

        One shared tree walk answers every query: each visited node
        carries the subset of query indices whose pruning rectangles
        intersect it, and the rect-vs-child-MBR test for that whole
        subset is a single broadcasted comparison instead of ``n``
        independent traversals.  Leaf survivors are refined per query
        with the same 1-D Haversine call the scalar path makes, so the
        result arrays are exactly ``[query_radius(lat, lon, radius_m)
        for lat, lon in points]`` (the property tests assert it).
        """
        if not math.isfinite(radius_m):
            raise ValueError(f"radius must be finite, got {radius_m!r}")
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be an (n, 2) array")
        if not np.isfinite(points).all():
            raise ValueError("query points must be finite (no NaN/inf coordinates)")
        n = len(points)
        empty = np.empty(0, dtype=np.int64)
        if n == 0 or self._root is None:
            return [empty for _ in range(n)]
        # Rects come from the same scalar helper as query_radius, so the
        # pruning geometry is bit-identical to the per-point path.
        rects = np.empty((n, 4), dtype=np.float64)
        for q in range(n):
            rects[q] = _radius_rect(points[q, 0], points[q, 1], radius_m).as_array()
        out: list[list[np.ndarray]] = [[] for _ in range(n)]
        all_queries = np.arange(n, dtype=np.int64)
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, all_queries)]
        while stack:
            node, active = stack.pop()
            qarr = rects[active]  # (a, 4)
            if node.is_leaf:
                pts = node.points
                # (a, m) inclusion mask: leaf point inside each query rect.
                mask = (
                    (pts[None, :, 0] >= qarr[:, 0, None])
                    & (pts[None, :, 1] >= qarr[:, 1, None])
                    & (pts[None, :, 0] <= qarr[:, 2, None])
                    & (pts[None, :, 1] <= qarr[:, 3, None])
                )
                for row in np.flatnonzero(mask.any(axis=1)):
                    qi = int(active[row])
                    cand_pts = pts[mask[row]]
                    dist = haversine_m(
                        points[qi, 0], points[qi, 1], cand_pts[:, 0], cand_pts[:, 1]
                    )
                    keep = dist <= radius_m
                    if np.any(keep):
                        out[qi].append(node.ids[mask[row]][keep])
            else:
                mbrs = node.child_mbrs()  # (c, 4)
                # (a, c) intersection matrix: query rect vs child MBR.
                hit = ~(
                    (mbrs[None, :, 0] > qarr[:, 2, None])
                    | (mbrs[None, :, 2] < qarr[:, 0, None])
                    | (mbrs[None, :, 1] > qarr[:, 3, None])
                    | (mbrs[None, :, 3] < qarr[:, 1, None])
                )
                for ci in np.flatnonzero(hit.any(axis=0)):
                    stack.append((node.children[ci], active[hit[:, ci]]))
        return [
            np.sort(np.concatenate(parts)) if parts else empty for parts in out
        ]

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest points as ``(id, haversine_metres)``, nearest
        first.  Best-first search over node MBR min-distances."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not (math.isfinite(lat) and math.isfinite(lon)):
            raise ValueError(f"query coordinates must be finite, got ({lat!r}, {lon!r})")
        if self._root is None:
            return []
        counter = itertools.count()
        # Heap holds (min_dist, tiebreak, kind, payload).
        heap: list[tuple[float, int, bool, object]] = [
            (self._root.mbr.min_dist_m(lat, lon), next(counter), False, self._root)
        ]
        result: list[tuple[int, float]] = []
        while heap and len(result) < k:
            dist, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                result.append((int(payload), dist))
                continue
            node: _Node = payload
            if node.is_leaf:
                dists = haversine_m(lat, lon, node.points[:, 0], node.points[:, 1])
                for pid, d in zip(node.ids, np.atleast_1d(dists)):
                    heapq.heappush(heap, (float(d), next(counter), True, int(pid)))
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (child.mbr.min_dist_m(lat, lon), next(counter), False, child),
                    )
        return result

    # -- structure -----------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Rect | None:
        return self._root.mbr if self._root is not None else None

    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a single leaf)."""
        h, node = 0, self._root
        while node is not None:
            h += 1
            node = node.children[0] if not node.is_leaf else None
        return h

    def iter_entries(self) -> Iterator[tuple[int, float, float]]:
        """All (id, lat, lon) entries, leaf order."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for pid, pt in zip(node.ids, node.points):
                    yield int(pid), float(pt[0]), float(pt[1])
            else:
                stack.extend(node.children)

    def check_invariants(self) -> None:
        """Validate MBR containment and leaf-depth uniformity (tests)."""
        if self._root is None:
            return
        depths: set[int] = set()

        def visit(node: _Node, depth: int) -> None:
            if node.is_leaf:
                depths.add(depth)
                assert node.mbr == Rect.of_points(node.points)
            else:
                mbr = node.children[0].mbr
                for child in node.children:
                    mbr = mbr.union(child.mbr)
                    visit(child, depth + 1)
                assert node.mbr == mbr, "internal MBR does not cover children"

        visit(self._root, 0)
        assert len(depths) == 1, f"leaves at different depths: {depths}"

    # -- merging (Figure 6, phase 3) ------------------------------------------
    @classmethod
    def merge(cls, trees: Sequence["RTree"]) -> "RTree":
        """Merge small R-trees into one global index.

        When all inputs have equal height (the common case for STR-packed
        equal-size partitions) their roots are packed under new upper
        levels directly.  Mixed heights fall back to re-packing all leaf
        nodes, which preserves the entries while keeping the tree balanced.
        """
        trees = [t for t in trees if t._root is not None]
        if not trees:
            return cls()
        if len(trees) == 1:
            return trees[0]
        max_entries = trees[0].max_entries
        merged = cls(max_entries=max_entries)
        heights = {t.height() for t in trees}
        if len(heights) == 1:
            roots = [t._root for t in trees]
            merged._root = merged._build_upper_levels(roots)
        else:
            leaves: list[_Node] = []
            for t in trees:
                stack = [t._root]
                while stack:
                    node = stack.pop()
                    if node.is_leaf:
                        leaves.append(node)
                    else:
                        stack.extend(node.children)
            merged._root = merged._build_upper_levels(leaves)
        merged._size = sum(len(t) for t in trees)
        return merged
