"""MapReduce construction of a global R-tree (Section VII-C, Figure 6).

The construction proceeds in three phases, the first two MapReduced and
the third sequential (its computational complexity is low):

1. **Partitioning function** (Algorithms 6–7): each mapper samples a
   predefined number of objects from its chunk and outputs their
   space-filling-curve scalars; a single reducer sorts the collected
   sample and picks the ``p - 1`` partition boundaries.
2. **Small R-trees** (Algorithms 8–9): mappers assign every object of
   their chunk to a partition via the curve-plus-boundaries function
   (loaded from the first phase's output); the intermediate key is the
   partition identifier, so each of the ``p`` reducers receives one
   partition and bulk-builds its small R-tree.
3. **Merge**: the small R-trees are merged into the final index by a
   single node.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.index.rtree import RTree
from repro.index.spacefilling import DEFAULT_ORDER, get_curve
from repro.mapreduce.config import Configuration
from repro.mapreduce.job import JobSpec, Mapper, Partitioner, Reducer
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.types import ArrayPayload, Chunk, concrete_payload

__all__ = ["build_rtree_mapreduce", "RTreeBuildResult", "BOUNDARIES_CACHE_KEY"]

#: Distributed-cache key under which the driver publishes phase-1 output.
BOUNDARIES_CACHE_KEY = "rtree.partition_boundaries"


def _chunk_points_ids(chunk: Chunk) -> tuple[np.ndarray, np.ndarray]:
    """(points, global ids) of a chunk, vectorized.

    The paging indirection must be unwrapped before the offset check: a
    memory-budgeted deployment hands out ``PagedPayload`` wrappers, and
    treating those as offset-0 would collide every chunk's ids at zero.
    """
    array = chunk.trace_array()
    payload = concrete_payload(chunk.payload)
    offset = payload.offset if isinstance(payload, ArrayPayload) else 0
    ids = offset + np.arange(len(array), dtype=np.int64)
    return array.coordinates(), ids


class SampleCurveMapper(Mapper):
    """Phase-1 mapper: sample objects, emit their curve scalars.

    Conf keys: ``rtree.curve``, ``rtree.bounds`` (dataset MBR as a
    4-tuple), ``rtree.sample_per_chunk``, ``rtree.curve_order``.
    """

    def run(self, chunk: Chunk, ctx) -> None:
        points, _ = _chunk_points_ids(chunk)
        n = len(points)
        if n == 0:
            return
        sample_size = min(ctx.conf.get_int("rtree.sample_per_chunk", 1024), n)
        # Seeded per task id with a *stable* hash: builtin hash() is
        # salted per interpreter, which made the sampled boundaries (and
        # the committed fig6 artifact) drift between runs and would
        # diverge across spawn-context pool workers.
        seed = zlib.crc32(ctx.task_id.encode())
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=sample_size, replace=False)
        curve = get_curve(ctx.conf.get_str("rtree.curve", "hilbert"))
        bounds = tuple(ctx.conf["rtree.bounds"])
        order = ctx.conf.get_int("rtree.curve_order", DEFAULT_ORDER)
        keys = curve(points[idx, 0], points[idx, 1], bounds, order)
        ctx.emit("sample", keys.astype(np.float64), nbytes=keys.nbytes, n_records=len(keys))


class BoundaryReducer(Reducer):
    """Phase-1 reducer: sort the pooled sample, emit partition boundaries.

    ``p - 1`` boundaries are the ``i/p`` quantiles of the sampled scalar
    distribution, so partitions receive near-equal point counts.
    """

    def reduce(self, key, values, ctx) -> None:
        pooled = np.sort(np.concatenate([np.atleast_1d(v) for v in values]))
        p = ctx.conf.get_int("rtree.partitions")
        if p < 1:
            raise ValueError("rtree.partitions must be >= 1")
        if len(pooled) == 0:
            boundaries = np.empty(0)
        else:
            quantiles = np.arange(1, p) / p
            boundaries = np.quantile(pooled, quantiles)
        ctx.emit("boundaries", boundaries, nbytes=boundaries.nbytes)


class PartitionAssignMapper(Mapper):
    """Phase-2 mapper: route every object to its partition id.

    Loads the boundaries from the distributed cache in ``setup`` (the
    paper's mappers "load output of first phase"), computes curve keys for
    the whole chunk in one vectorized pass, and emits one block per
    partition present in the chunk.
    """

    def setup(self, ctx) -> None:
        self._boundaries = np.asarray(ctx.cache.get(BOUNDARIES_CACHE_KEY), dtype=np.float64)
        self._curve = get_curve(ctx.conf.get_str("rtree.curve", "hilbert"))
        self._bounds = tuple(ctx.conf["rtree.bounds"])
        self._order = ctx.conf.get_int("rtree.curve_order", DEFAULT_ORDER)

    def run(self, chunk: Chunk, ctx) -> None:
        points, ids = _chunk_points_ids(chunk)
        if len(points) == 0:
            return
        keys = self._curve(points[:, 0], points[:, 1], self._bounds, self._order)
        pids = np.searchsorted(self._boundaries, keys.astype(np.float64), side="right")
        for pid in np.unique(pids):
            mask = pids == pid
            block = (ids[mask], points[mask])
            ctx.emit(
                int(pid),
                block,
                nbytes=int(ids[mask].nbytes + points[mask].nbytes),
                n_records=int(mask.sum()),
            )


class SmallRTreeReducer(Reducer):
    """Phase-2 reducer: bulk-build the small R-tree of one partition."""

    def reduce(self, key, values, ctx) -> None:
        ids = np.concatenate([v[0] for v in values])
        points = np.vstack([v[1] for v in values])
        max_entries = ctx.conf.get_int("rtree.max_entries", 32)
        tree = RTree.bulk_load(points, ids, max_entries=max_entries)
        ctx.emit(key, tree, nbytes=len(tree) * 24)


class PartitionIdPartitioner(Partitioner):
    """Routes partition id *i* to reducer ``i % n`` (identity when p == n)."""

    def partition(self, key, n_reducers: int) -> int:
        return int(key) % n_reducers


@dataclass
class RTreeBuildResult:
    """Outcome of the three-phase build."""

    tree: RTree
    boundaries: np.ndarray
    partition_sizes: dict[int, int]
    sim_seconds: float
    phase1_sim_seconds: float
    phase2_sim_seconds: float
    curve: str

    @property
    def balance_ratio(self) -> float:
        """max/mean partition size — 1.0 is perfectly balanced."""
        sizes = np.array(list(self.partition_sizes.values()), dtype=float)
        if len(sizes) == 0 or sizes.mean() == 0:
            return 1.0
        return float(sizes.max() / sizes.mean())


def build_rtree_mapreduce(
    runner: JobRunner,
    input_path: str,
    n_partitions: int,
    curve: str = "hilbert",
    sample_per_chunk: int = 1024,
    max_entries: int = 32,
    curve_order: int = DEFAULT_ORDER,
    workdir: str = "tmp/rtree",
) -> RTreeBuildResult:
    """Run the full Figure 6 pipeline and return the merged global R-tree.

    ``input_path`` must hold traces (array or trace-record chunks).  The
    dataset MBR needed by the curve is computed by the driver from the
    namenode's chunk metadata — a cheap sequential pass, like the paper's
    driver-side initialization steps.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    get_curve(curve)  # validate early
    hdfs = runner.hdfs
    all_points = hdfs.read_trace_array(input_path)
    if len(all_points) == 0:
        return RTreeBuildResult(RTree(max_entries=max_entries), np.empty(0), {}, 0.0, 0.0, 0.0, curve)
    bounds = all_points.bounding_box()

    conf = Configuration(
        {
            "rtree.curve": curve,
            "rtree.bounds": bounds,
            "rtree.sample_per_chunk": sample_per_chunk,
            "rtree.partitions": n_partitions,
            "rtree.max_entries": max_entries,
            "rtree.curve_order": curve_order,
        }
    )

    phase1_out = f"{workdir}/phase1"
    hdfs.delete(phase1_out, missing_ok=True)
    res1 = runner.run(
        JobSpec(
            name="rtree-phase1-sample",
            mapper=SampleCurveMapper,
            reducer=BoundaryReducer,
            input_paths=[input_path],
            output_path=phase1_out,
            conf=conf,
            num_reducers=1,
        )
    )
    records = hdfs.read_records(phase1_out)
    boundaries = np.asarray(records[0][1], dtype=np.float64)
    runner.cache.replace(BOUNDARIES_CACHE_KEY, boundaries)

    phase2_out = f"{workdir}/phase2"
    hdfs.delete(phase2_out, missing_ok=True)
    res2 = runner.run(
        JobSpec(
            name="rtree-phase2-build",
            mapper=PartitionAssignMapper,
            reducer=SmallRTreeReducer,
            input_paths=[input_path],
            output_path=phase2_out,
            conf=conf,
            num_reducers=n_partitions,
            partitioner=PartitionIdPartitioner(),
        )
    )
    small_trees: list[tuple[int, RTree]] = sorted(
        ((int(k), v) for k, v in hdfs.read_records(phase2_out)), key=lambda kv: kv[0]
    )
    partition_sizes = {pid: len(tree) for pid, tree in small_trees}
    merged = RTree.merge([tree for _, tree in small_trees])
    return RTreeBuildResult(
        tree=merged,
        boundaries=boundaries,
        partition_sizes=partition_sizes,
        sim_seconds=res1.sim_seconds + res2.sim_seconds,
        phase1_sim_seconds=res1.sim_seconds,
        phase2_sim_seconds=res2.sim_seconds,
        curve=curve,
    )
