"""Space-filling curves: Z-order (Morton) and Hilbert.

The R-tree construction's partitioning function (Section VII-C) "has to
map multidimensional datapoints into an ordered sequence of unidimensional
values" while preserving data locality.  Both curves here map a point on a
``2^order x 2^order`` grid to a single integer key in ``[0, 4^order)``:

* **Z-order** interleaves the bits of the two grid coordinates — cheap,
  decent locality, with the well-known "Z jumps" between quadrants;
* **Hilbert** follows the Hilbert curve — slightly costlier, strictly
  better locality (no long jumps), which yields better-balanced, more
  compact partitions (the Figure 6 ablation bench measures exactly this).

Everything is vectorized: keys for a million points are computed with a
handful of NumPy passes (``order`` iterations for Hilbert), never a
per-point Python loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "normalize_to_grid",
    "morton_interleave",
    "zorder_key",
    "hilbert_key",
    "hilbert_xy_from_key",
    "CURVES",
    "get_curve",
    "DEFAULT_ORDER",
]

#: Default curve order: a 65536^2 grid, fine enough that city-scale data
#: rarely collides.
DEFAULT_ORDER = 16


def normalize_to_grid(
    x: np.ndarray,
    y: np.ndarray,
    bounds: tuple[float, float, float, float],
    order: int = DEFAULT_ORDER,
) -> tuple[np.ndarray, np.ndarray]:
    """Map continuous coordinates into integer cells of a ``2^order`` grid.

    ``bounds`` is ``(min_x, min_y, max_x, max_y)``.  Degenerate extents
    (all points sharing one coordinate) collapse to cell 0 on that axis.
    """
    if not 1 <= order <= 31:
        raise ValueError("order must be within [1, 31]")
    min_x, min_y, max_x, max_y = bounds
    if max_x < min_x or max_y < min_y:
        raise ValueError("invalid bounds: max < min")
    size = (1 << order) - 1
    span_x = max_x - min_x
    span_y = max_y - min_y
    gx = np.zeros(len(np.atleast_1d(x)), dtype=np.uint64)
    gy = np.zeros(len(np.atleast_1d(y)), dtype=np.uint64)
    if span_x > 0:
        fx = (np.asarray(x, dtype=np.float64) - min_x) / span_x
        gx = np.clip(np.floor(fx * (size + 1)), 0, size).astype(np.uint64)
    if span_y > 0:
        fy = (np.asarray(y, dtype=np.float64) - min_y) / span_y
        gy = np.clip(np.floor(fy * (size + 1)), 0, size).astype(np.uint64)
    return gx, gy


def morton_interleave(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Interleave the bits of two uint arrays (x in even bits, y in odd).

    Standard "part1by1" bit-spreading with 64-bit magic masks; supports
    grid coordinates up to 31 bits.
    """

    def _part1by1(v: np.ndarray) -> np.ndarray:
        v = v.astype(np.uint64)
        v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
        v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
        v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
        v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
        return v

    return _part1by1(gx) | (_part1by1(gy) << np.uint64(1))


def zorder_key(
    x: np.ndarray,
    y: np.ndarray,
    bounds: tuple[float, float, float, float],
    order: int = DEFAULT_ORDER,
) -> np.ndarray:
    """Z-order (Morton) key of each point, as uint64."""
    gx, gy = normalize_to_grid(x, y, bounds, order)
    return morton_interleave(gx, gy)


def hilbert_key(
    x: np.ndarray,
    y: np.ndarray,
    bounds: tuple[float, float, float, float],
    order: int = DEFAULT_ORDER,
) -> np.ndarray:
    """Hilbert-curve key of each point, as uint64.

    Vectorized form of the classic ``xy2d`` rotate-and-fold algorithm:
    one pass per curve level over the whole arrays.
    """
    gx, gy = normalize_to_grid(x, y, bounds, order)
    rx = np.zeros_like(gx)
    ry = np.zeros_like(gy)
    d = np.zeros_like(gx)
    gx = gx.copy()
    gy = gy.copy()
    s = np.uint64(1 << (order - 1))
    n = np.uint64(1 << order)
    one = np.uint64(1)
    zero = np.uint64(0)
    while s > 0:
        rx = np.where((gx & s) > 0, one, zero)
        ry = np.where((gy & s) > 0, one, zero)
        d += s * s * ((np.uint64(3) * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous; the forward
        # transform reflects within the full n x n grid (classic xy2d).
        swap = ry == 0
        flip = swap & (rx == 1)
        gx_f = np.where(flip, n - one - gx, gx)
        gy_f = np.where(flip, n - one - gy, gy)
        gx_new = np.where(swap, gy_f, gx_f)
        gy_new = np.where(swap, gx_f, gy_f)
        gx, gy = gx_new, gy_new
        s = np.uint64(int(s) >> 1)
    return d


def hilbert_xy_from_key(
    d: np.ndarray, order: int = DEFAULT_ORDER
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse Hilbert mapping (``d2xy``), vectorized; for property tests."""
    d = np.asarray(d, dtype=np.uint64).copy()
    gx = np.zeros_like(d)
    gy = np.zeros_like(d)
    t = d.copy()
    one = np.uint64(1)
    s = np.uint64(1)
    top = np.uint64(1 << order)
    while s < top:
        rx = (t // np.uint64(2)) & one
        ry = (t ^ rx) & one
        # Rotate back.
        swap = ry == 0
        flip = swap & (rx == 1)
        gx_f = np.where(flip, s - one - gx, gx)
        gy_f = np.where(flip, s - one - gy, gy)
        gx_r = np.where(swap, gy_f, gx_f)
        gy_r = np.where(swap, gx_f, gy_f)
        gx = gx_r + s * rx
        gy = gy_r + s * ry
        t = t // np.uint64(4)
        s = np.uint64(int(s) << 1)
    return gx, gy


#: Registry of curve implementations by name (the paper tests both).
CURVES: dict[str, Callable] = {
    "zorder": zorder_key,
    "hilbert": hilbert_key,
}


def get_curve(name: str) -> Callable:
    """Look up a space-filling curve by name (``zorder`` / ``hilbert``)."""
    key = name.strip().lower().replace("-", "").replace("_", "")
    if key == "z":
        key = "zorder"
    if key not in CURVES:
        raise KeyError(f"unknown curve {name!r}; known: {sorted(CURVES)}")
    return CURVES[key]
