"""Seeded chaos campaigns: equivalence-under-failure for the paper's drivers.

The paper's central claim is that the MapReduce adaptations compute *the
same thing* as GEPETO's sequential implementations — just over millions
of traces.  That claim only holds if it survives the failures a real
Hadoop deployment absorbs routinely: task crashes, straggler nodes,
mid-job node loss, shuffle fetch timeouts, corrupt distributed-cache
loads.  This module turns :class:`repro.mapreduce.failures.ChaosSchedule`
into a repeatable experiment:

1. run a driver on a pristine deployment (no faults) and fingerprint its
   output;
2. re-run it on a fresh deployment with a seeded fault schedule and check
   the output fingerprint is **byte-identical** — recovery must be
   invisible to the algorithm;
3. re-run the *same* seeded schedule again and check the whole traced
   execution (every event dict, every counter, the simulated makespan)
   is **bit-reproducible** — chaos is an input, not a source of noise.

``python -m repro chaos`` drives this from the command line; the
property-based suite (`tests/properties/test_chaos_equivalence.py`)
drives it from hypothesis with randomized schedules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mapreduce.failures import ChaosSchedule

__all__ = [
    "ChaosDriver",
    "DriverOutcome",
    "ChaosReport",
    "DRIVERS",
    "driver_names",
    "default_schedule",
    "run_chaos_campaign",
    "run_chaos_selfcheck",
    "MultiTenantOutcome",
    "run_multitenant_check",
]

#: HDFS path every campaign deployment stores its corpus under.
INPUT_PATH = "input/traces"


# ---------------------------------------------------------------------------
# Output fingerprints
# ---------------------------------------------------------------------------

def _digest(*blobs: bytes) -> str:
    h = hashlib.sha256()
    for blob in blobs:
        h.update(blob)
    return h.hexdigest()


def _trace_array_signature(array) -> str:
    """Canonical fingerprint of a columnar trace array (order-sensitive)."""
    return _digest(
        ",".join(array.users).encode(),
        np.ascontiguousarray(array.user_index).tobytes(),
        np.ascontiguousarray(array.latitude).tobytes(),
        np.ascontiguousarray(array.longitude).tobytes(),
        np.ascontiguousarray(array.timestamp).tobytes(),
    )


# ---------------------------------------------------------------------------
# Driver registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosDriver:
    """One algorithm driver the campaign can subject to faults.

    ``run`` executes the driver end to end on ``runner`` over
    :data:`INPUT_PATH` and returns a canonical fingerprint of the
    *algorithmic output* (not the trace) — equal fingerprints mean the
    algorithm produced byte-identical results.
    """

    name: str
    title: str
    run: Callable[..., str]


def _drive_sampling(runner, context) -> str:
    from repro.algorithms.sampling import run_sampling_job

    prefix = context.get("prefix", "")
    result = run_sampling_job(
        runner, INPUT_PATH, f"{prefix}out/chaos-sampled", window_s=600.0
    )
    return _trace_array_signature(runner.hdfs.read_trace_array(result.output_path))


def _drive_kmeans(runner, context) -> str:
    from repro.algorithms.kmeans import run_kmeans_mapreduce

    result = run_kmeans_mapreduce(
        runner,
        INPUT_PATH,
        k=3,
        max_iter=3,
        seed=7,
        use_combiner=True,
        workdir=f"{context.get('prefix', '')}tmp/chaos-kmeans",
    )
    return _digest(
        np.ascontiguousarray(result.centroids).tobytes(),
        str(result.n_iterations).encode(),
    )


def _drive_djcluster(runner, context) -> str:
    from repro.algorithms.djcluster import DJClusterParams, run_preprocessing_pipeline

    pipeline = run_preprocessing_pipeline(
        runner, INPUT_PATH, DJClusterParams(),
        workdir=f"{context.get('prefix', '')}tmp/chaos-dj",
    )
    return _trace_array_signature(
        runner.hdfs.read_trace_array(pipeline.output_path)
    )


def _drive_mmc(runner, context) -> str:
    from repro.attacks.mmc_mr import run_mmc_mapreduce

    models = run_mmc_mapreduce(
        runner,
        INPUT_PATH,
        context["poi_coords"],
        output_path=f"{context.get('prefix', '')}tmp/chaos-mmc/models",
    )
    blobs = []
    for user in sorted(models):
        chain = models[user]
        blobs.append(user.encode())
        blobs.append(np.ascontiguousarray(chain.transitions).tobytes())
        blobs.append(np.ascontiguousarray(chain.visit_counts).tobytes())
    return _digest(*blobs)


def _drive_linkage(runner, context) -> str:
    from repro.attacks.linkage_mr import run_linkage_attack, split_linkage_corpus
    from repro.algorithms.djcluster import DJClusterParams

    prefix = context.get("prefix", "")
    training, target, truth = split_linkage_corpus(
        runner.hdfs.read_trace_array(INPUT_PATH)
    )
    train_path = f"{prefix}tmp/chaos-linkage/train"
    target_path = f"{prefix}tmp/chaos-linkage/target"
    runner.hdfs.delete(train_path, missing_ok=True)
    runner.hdfs.delete(target_path, missing_ok=True)
    runner.hdfs.put_trace_array(train_path, training, record_bytes=64)
    runner.hdfs.put_trace_array(target_path, target, record_bytes=64)
    outcome = run_linkage_attack(
        runner,
        train_path,
        target_path,
        truth,
        params=DJClusterParams(radius_m=150.0, min_pts=3),
        workdir=f"{prefix}tmp/chaos-linkage/work",
    )
    return outcome.signature()


DRIVERS: dict[str, ChaosDriver] = {
    "sampling": ChaosDriver("sampling", "map-only temporal sampling", _drive_sampling),
    "kmeans": ChaosDriver("kmeans", "iterative k-means clustering", _drive_kmeans),
    "djcluster": ChaosDriver(
        "djcluster", "DJ-Cluster preprocessing pipeline", _drive_djcluster
    ),
    "mmc": ChaosDriver("mmc", "Mobility Markov Chain learning", _drive_mmc),
    "linkage": ChaosDriver(
        "linkage", "MapReduce fingerprint linkage attack", _drive_linkage
    ),
}


def driver_names() -> list[str]:
    return list(DRIVERS)


def default_schedule(seed: int, node_loss: bool = False) -> ChaosSchedule:
    """A campaign schedule touching every fault kind the engine injects."""
    return ChaosSchedule(
        seed=seed,
        crash_prob=0.15,
        cache_load_prob=0.1,
        shuffle_fetch_prob=0.1,
        slow_node_prob=0.25,
        slow_factor=3.0,
        node_loss_prob=1.0 if node_loss else 0.0,
        max_node_losses=1,
    )


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------

@dataclass
class _RunArtifacts:
    signature: str
    events: list[dict]
    makespan_s: float
    faults: dict[str, int]
    retried: int
    nodes_lost: list[str]
    blacklisted: list[str]
    refetches: int


@dataclass
class DriverOutcome:
    """Result of one driver's clean/chaos/replay triple."""

    driver: str
    title: str
    equivalent: bool
    reproducible: bool
    clean_makespan_s: float
    chaos_makespan_s: float
    faults: dict[str, int] = field(default_factory=dict)
    retried: int = 0
    nodes_lost: list[str] = field(default_factory=list)
    blacklisted: list[str] = field(default_factory=list)
    refetches: int = 0
    signature: str = ""

    @property
    def ok(self) -> bool:
        return self.equivalent and self.reproducible

    @property
    def overhead_s(self) -> float:
        return self.chaos_makespan_s - self.clean_makespan_s


@dataclass
class ChaosReport:
    """Aggregate campaign outcome, renderable as a recovery report."""

    seed: int
    schedule: ChaosSchedule
    outcomes: list[DriverOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def render(self) -> str:
        lines = [
            f"chaos campaign  seed={self.seed}  [{self.schedule.describe()}]",
            "",
        ]
        for o in self.outcomes:
            verdict = "ok" if o.ok else "FAILED"
            lines.append(f"{o.driver} ({o.title}): {verdict}")
            lines.append(
                "  output equivalence: "
                + ("identical with and without faults" if o.equivalent
                   else "DIVERGED under faults")
            )
            lines.append(
                "  bit-reproducibility: "
                + ("same seed -> same events, counters, makespan" if o.reproducible
                   else "same seed produced a DIFFERENT execution")
            )
            injected = ", ".join(f"{k} x{v}" for k, v in sorted(o.faults.items()))
            lines.append(f"  faults injected: {injected or 'none'}")
            recovery = []
            if o.retried:
                recovery.append(f"{o.retried} attempt(s) re-dispatched")
            if o.nodes_lost:
                recovery.append(f"node(s) lost: {', '.join(o.nodes_lost)}")
            if o.blacklisted:
                recovery.append(f"blacklisted: {', '.join(o.blacklisted)}")
            if o.refetches:
                recovery.append(f"{o.refetches} shuffle refetch(es)")
            lines.append(f"  recovery: {'; '.join(recovery) or 'none needed'}")
            lines.append(
                f"  simulated makespan: {o.clean_makespan_s:.1f}s clean -> "
                f"{o.chaos_makespan_s:.1f}s under chaos "
                f"(+{o.overhead_s:.1f}s recovery overhead)"
            )
            lines.append(f"  output sha256: {o.signature[:16]}…")
            lines.append("")
        lines.append(
            "campaign result: "
            + ("all drivers recovered with identical outputs"
               if self.ok else "EQUIVALENCE VIOLATED — see above")
        )
        return "\n".join(lines)


def _fresh_runner(
    array,
    n_workers: int,
    chunk_size: int,
    chaos: ChaosSchedule | None,
    executor: str = "serial",
    max_workers: "int | None" = None,
    memory_budget_mb: "float | None" = None,
):
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.runner import JobRunner

    hdfs = SimulatedHDFS(
        paper_cluster(n_workers),
        chunk_size=chunk_size,
        seed=0,
        memory_budget_mb=memory_budget_mb,
    )
    hdfs.put_trace_array(INPUT_PATH, array, record_bytes=64)
    return JobRunner(
        hdfs,
        chaos=chaos,
        executor=executor,
        max_workers=max_workers,
        memory_budget_mb=memory_budget_mb,
    )


def _run_once(
    driver: ChaosDriver,
    array,
    context: dict,
    n_workers: int,
    chunk_size: int,
    chaos: ChaosSchedule | None,
    save_path: "str | None" = None,
    executor: str = "serial",
    max_workers: "int | None" = None,
    memory_budget_mb: "float | None" = None,
) -> _RunArtifacts:
    from repro.observability.events import EventKind

    runner = _fresh_runner(
        array, n_workers, chunk_size, chaos,
        executor=executor, max_workers=max_workers,
        memory_budget_mb=memory_budget_mb,
    )
    try:
        signature = driver.run(runner, context)
    finally:
        runner.close()
    history = runner.history
    if save_path is not None:
        history.save(save_path)
    faults: dict[str, int] = {}
    retried = 0
    nodes_lost: list[str] = []
    blacklisted: list[str] = []
    refetches = 0
    for event in history:
        if event.kind == EventKind.FAULT_INJECTED:
            kind = event.data.get("fault", "unknown")
            faults[kind] = faults.get(kind, 0) + 1
        elif event.kind == EventKind.ATTEMPT_RETRIED:
            retried += 1
        elif event.kind == EventKind.NODE_LOST:
            nodes_lost.append(event.node or "?")
        elif event.kind == EventKind.NODE_BLACKLISTED:
            if event.node and event.node not in blacklisted:
                blacklisted.append(event.node)
        elif event.kind == EventKind.SHUFFLE_REFETCH:
            refetches += 1
    return _RunArtifacts(
        signature=signature,
        events=[e.to_dict() for e in history],
        makespan_s=history.clock,
        faults=faults,
        retried=retried,
        nodes_lost=nodes_lost,
        blacklisted=sorted(set(blacklisted)),
        refetches=refetches,
    )


def _build_corpus(n_users: int, days: int, data_seed: int):
    from repro.geo.synthetic import SyntheticConfig, generate_dataset

    dataset, _ = generate_dataset(
        SyntheticConfig(n_users=n_users, days=days, seed=data_seed)
    )
    return dataset.flat().sort_by_time()


def run_chaos_campaign(
    drivers: "list[str] | None" = None,
    seed: int = 0,
    schedule: ChaosSchedule | None = None,
    n_users: int = 3,
    days: int = 1,
    data_seed: int = 42,
    n_workers: int = 3,
    chunk_size: int = 64 * 1024,
    history_path: "str | None" = None,
    executor: str = "serial",
    max_workers: "int | None" = None,
    memory_budget_mb: "float | None" = None,
) -> ChaosReport:
    """Run the clean/chaos/replay triple for each requested driver.

    Every run gets a *fresh* deployment (own HDFS, own cluster state), so
    a node killed under chaos cannot leak into the clean baseline or the
    replay.  ``history_path`` exports the traced chaos run of the last
    driver for ``python -m repro history`` inspection.  ``executor``
    selects the execution backend for every run — outputs, counters and
    histories are backend-invariant, so the report must be identical for
    any choice.  ``memory_budget_mb`` runs every deployment out-of-core
    under that budget; outputs and counters are budget-invariant too.
    """
    chosen = drivers or driver_names()
    unknown = [d for d in chosen if d not in DRIVERS]
    if unknown:
        raise ValueError(
            f"unknown chaos driver(s) {unknown}; known: {driver_names()}"
        )
    chaos = schedule if schedule is not None else default_schedule(seed)
    array = _build_corpus(n_users, days, data_seed)
    context: dict = {}
    if "mmc" in chosen:
        from repro.algorithms.kmeans import kmeans_sequential

        context["poi_coords"] = kmeans_sequential(
            array.coordinates(), k=4, seed=0
        ).centroids
    report = ChaosReport(seed=chaos.seed, schedule=chaos)
    for name in chosen:
        driver = DRIVERS[name]
        save = history_path if name == chosen[-1] else None
        clean = _run_once(
            driver, array, context, n_workers, chunk_size, None,
            executor=executor, max_workers=max_workers,
            memory_budget_mb=memory_budget_mb,
        )
        faulted = _run_once(
            driver, array, context, n_workers, chunk_size, chaos,
            save_path=save, executor=executor, max_workers=max_workers,
            memory_budget_mb=memory_budget_mb,
        )
        replay = _run_once(
            driver, array, context, n_workers, chunk_size, chaos,
            executor=executor, max_workers=max_workers,
            memory_budget_mb=memory_budget_mb,
        )
        report.outcomes.append(
            DriverOutcome(
                driver=name,
                title=driver.title,
                equivalent=faulted.signature == clean.signature,
                reproducible=(
                    faulted.events == replay.events
                    and faulted.makespan_s == replay.makespan_s
                ),
                clean_makespan_s=clean.makespan_s,
                chaos_makespan_s=faulted.makespan_s,
                faults=faulted.faults,
                retried=faulted.retried,
                nodes_lost=faulted.nodes_lost,
                blacklisted=faulted.blacklisted,
                refetches=faulted.refetches,
                signature=faulted.signature,
            )
        )
    return report


# ---------------------------------------------------------------------------
# Multi-tenant equivalence: tenants on a shared service == solo runs
# ---------------------------------------------------------------------------


@dataclass
class MultiTenantOutcome:
    """One driver's tenants-vs-solo verdict.

    ``signatures`` holds each tenant's output fingerprint from a shared
    :class:`~repro.mapreduce.service.JobService` deployment; every one
    must equal ``solo_signature`` (the driver on a pristine solo runner)
    — concurrent tenancy, and any chaos schedule applied to the shared
    deployment, must be invisible in the outputs.
    """

    driver: str
    title: str
    solo_signature: str
    signatures: dict[str, str]
    chaos_active: bool
    #: The shared service's rendered fair-share report (for display).
    report: str = ""

    @property
    def ok(self) -> bool:
        return bool(self.signatures) and all(
            s == self.solo_signature for s in self.signatures.values()
        )


def run_multitenant_check(
    drivers: "list[str] | None" = None,
    seed: int = 0,
    with_chaos: bool = True,
    tenants: "dict[str, float] | None" = None,
    n_users: int = 3,
    days: int = 1,
    data_seed: int = 42,
    n_workers: int = 3,
    chunk_size: int = 64 * 1024,
    executor: str = "serial",
    result_cache: bool = True,
) -> list[MultiTenantOutcome]:
    """Run each driver concurrently for every tenant on one shared service.

    Per driver: fingerprint a pristine solo run, then stand up a fresh
    :class:`~repro.mapreduce.service.JobService` (optionally under the
    seeded chaos schedule, with node loss enabled) and run the *same*
    driver from one thread per tenant, each under its own
    ``tenants/<name>/`` path prefix.  Every tenant's fingerprint must be
    byte-identical to the solo run — the acceptance invariant of the
    service layer.  With ``result_cache=True`` later tenants typically
    hit the result cache for identical sub-jobs, which must not change a
    byte either.
    """
    import threading

    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import SimulatedHDFS
    from repro.mapreduce.service import JobService

    chosen = drivers or driver_names()
    unknown = [d for d in chosen if d not in DRIVERS]
    if unknown:
        raise ValueError(
            f"unknown chaos driver(s) {unknown}; known: {driver_names()}"
        )
    roster = tenants or {"alice": 2.0, "bob": 1.0}
    array = _build_corpus(n_users, days, data_seed)
    context: dict = {}
    if "mmc" in chosen:
        from repro.algorithms.kmeans import kmeans_sequential

        context["poi_coords"] = kmeans_sequential(
            array.coordinates(), k=4, seed=0
        ).centroids

    outcomes: list[MultiTenantOutcome] = []
    for name in chosen:
        driver = DRIVERS[name]
        solo = _run_once(
            driver, array, context, n_workers, chunk_size, None,
            executor=executor,
        )
        schedule = (
            default_schedule(seed, node_loss=True) if with_chaos else None
        )
        hdfs = SimulatedHDFS(
            paper_cluster(n_workers), chunk_size=chunk_size, seed=0
        )
        hdfs.put_trace_array(INPUT_PATH, array, record_bytes=64)
        service = JobService(
            hdfs,
            tenants=roster,
            chaos=schedule,
            executor=executor,
            result_cache=result_cache,
        )
        signatures: dict[str, str] = {}
        errors: dict[str, BaseException] = {}

        def tenant_workload(tenant: str) -> None:
            ctx = dict(context)
            ctx["prefix"] = f"tenants/{tenant}/"
            try:
                signatures[tenant] = driver.run(service.client(tenant), ctx)
            except BaseException as exc:
                errors[tenant] = exc

        try:
            threads = [
                threading.Thread(target=tenant_workload, args=(t,))
                for t in sorted(roster)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            service.close()
        if errors:
            tenant, exc = sorted(errors.items())[0]
            raise RuntimeError(
                f"driver {name!r} failed for tenant {tenant!r}: {exc!r}"
            ) from exc
        outcomes.append(
            MultiTenantOutcome(
                driver=name,
                title=driver.title,
                solo_signature=solo.signature,
                signatures=signatures,
                chaos_active=with_chaos,
                report=service.report().render(),
            )
        )
    return outcomes


def run_chaos_selfcheck(verbose: bool = True) -> int:
    """CI smoke: all five drivers survive a fault-heavy seeded schedule.

    Returns 0 when every driver's output is equivalent under failure and
    the chaos runs are bit-reproducible, 1 otherwise — mirroring
    :func:`repro.observability.selfcheck.run_selfcheck`.
    """
    report = run_chaos_campaign(seed=1, schedule=default_schedule(1, node_loss=True))
    problems = []
    injected = sum(sum(o.faults.values()) for o in report.outcomes)
    if injected == 0:
        problems.append("selfcheck schedule injected no faults at all")
    for o in report.outcomes:
        if not o.equivalent:
            problems.append(f"{o.driver}: output diverged under faults")
        if not o.reproducible:
            problems.append(f"{o.driver}: same seed replay diverged")
    if problems:
        for problem in problems:
            print(f"chaos selfcheck FAILED: {problem}")
        return 1
    if verbose:
        drivers = ", ".join(o.driver for o in report.outcomes)
        print(
            f"chaos selfcheck: ok ({drivers}; {injected} fault(s) injected, "
            "outputs identical, replays bit-stable)"
        )
    return 0
