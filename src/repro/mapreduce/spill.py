"""Out-of-core execution: spill files, budgeted residency, external sort.

Hadoop runs datasets far larger than cluster RAM by keeping only a
bounded working set in memory and writing everything else to local disk:
map output spills as sorted runs when its in-memory buffer fills
(``io.sort.mb``), reducers merge the fetched runs from disk, and HDFS
itself is a disk-backed store.  This module gives the simulator the same
discipline under one knob, ``mapreduce.memory_budget_mb``:

* :class:`SpillDirectory` — a temp directory of spill files whose
  lifetime is tied to its owner (removed on ``cleanup()`` or GC);
* :class:`PayloadStore` — an LRU residency manager for HDFS chunk
  payloads: payloads page out to the spill directory when resident bytes
  exceed the budget and rehydrate transparently on read
  (:class:`~repro.mapreduce.types.PagedPayload` is the in-namespace stub);
* the **external-sort shuffle**: :class:`ShuffleSpiller` accumulates map
  output, cuts stably-sorted runs to disk whenever the in-flight buffer
  exceeds the budget, and :func:`merge_runs` k-way merges each reduce
  partition's segments back — reproducing the in-memory shuffle's
  stable-sort semantics byte for byte (see ``docs/PERFORMANCE.md``);
* worker-side map-output spill for the execution backends:
  :func:`spill_map_output` writes a task's output where the task ran, so
  the processes backend ships a tiny :class:`SpilledMapOutput` handle
  over IPC instead of the data itself.

Everything here is deliberately observable: :class:`SpillStats` counts
runs/pages/bytes, and the shuffle path records per-run and per-merge
facts that the runner turns into ``spill_start`` / ``spill_merge``
history events with simulated IO charges.
"""

from __future__ import annotations

import heapq
import operator
import os
import pickle
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.mapreduce.types import (
    ArrayPayload,
    PagedPayload,
    RecordPayload,
    estimate_nbytes,
)

__all__ = [
    "MB",
    "SpillStats",
    "SpillDirectory",
    "PayloadStore",
    "SpilledMapOutput",
    "SpilledPartition",
    "WorkerSpillSpec",
    "ShuffleSpiller",
    "SpillManager",
    "as_pairs",
    "as_groups",
    "resident_nbytes",
]

MB = 1024 * 1024

_PICKLE = pickle.HIGHEST_PROTOCOL


@dataclass
class SpillStats:
    """Counters of out-of-core activity (one instance per owner)."""

    runs_spilled: int = 0
    run_bytes: int = 0
    merges: int = 0
    merge_bytes: int = 0
    map_spills: int = 0
    map_spill_bytes: int = 0
    pages_out: int = 0
    page_out_bytes: int = 0
    pages_in: int = 0
    page_in_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


def _remove_tree(path: str) -> None:
    shutil.rmtree(path, ignore_errors=True)


class SpillDirectory:
    """A temp directory of spill files, removed when its owner is done.

    ``root=None`` creates a private ``mkdtemp``; an explicit root is
    created (and still removed on cleanup — the owner asked us to manage
    it).  A ``weakref.finalize`` guarantees removal even without an
    explicit :meth:`cleanup` call.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            self.path = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        else:
            self.path = Path(root)
            self.path.mkdir(parents=True, exist_ok=True)
        self._counter = 0
        self._finalizer = weakref.finalize(self, _remove_tree, str(self.path))

    def new_path(self, stem: str) -> Path:
        """A fresh, never-before-returned file path under the directory."""
        self._counter += 1
        return self.path / f"{stem}-{self._counter:06d}.spill"

    def cleanup(self) -> None:
        """Remove the directory and everything in it (idempotent)."""
        self._finalizer()


def resident_nbytes(payload: RecordPayload | ArrayPayload) -> int:
    """Actual in-memory footprint of a payload, for budget accounting.

    Modelled ``nbytes()`` prices records at their on-disk size; residency
    must instead charge what the payload occupies in RAM: the columnar
    buffer for arrays, the per-record estimate for record lists.
    """
    if isinstance(payload, ArrayPayload):
        return estimate_nbytes(payload.array)
    return payload.nbytes()


class PayloadStore:
    """LRU-pinned chunk-payload residency under a byte budget.

    The namenode registers every chunk payload here; the store keeps the
    most recently used payloads resident until their combined footprint
    exceeds the budget, then pages the least recently used ones out to
    the spill directory (one pickle file per chunk, written at most once
    — payloads are immutable, so a page-out after the first is free).
    Reads rehydrate transparently and re-pin the payload.  At least one
    payload stays resident regardless of budget, so a budget smaller
    than a single chunk degrades to "one chunk at a time" rather than
    thrashing to zero.
    """

    def __init__(
        self,
        budget_bytes: int,
        directory: SpillDirectory,
        stats: SpillStats | None = None,
    ):
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = int(budget_bytes)
        self.directory = directory
        self.stats = stats if stats is not None else SpillStats()
        self._resident: dict[str, RecordPayload | ArrayPayload] = {}
        self._resident_bytes = 0
        self._sizes: dict[str, int] = {}
        self._paged: dict[str, Path] = {}

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def put(self, chunk_id: str, payload: RecordPayload | ArrayPayload) -> None:
        if chunk_id in self._sizes:
            raise ValueError(f"chunk {chunk_id} already registered")
        size = resident_nbytes(payload)
        self._sizes[chunk_id] = size
        self._resident[chunk_id] = payload
        self._resident_bytes += size
        self._shrink()

    def get(self, chunk_id: str) -> RecordPayload | ArrayPayload:
        payload = self._resident.get(chunk_id)
        if payload is not None:
            # Re-pin: dicts iterate in insertion order, so re-inserting
            # moves the entry to the MRU end.
            del self._resident[chunk_id]
            self._resident[chunk_id] = payload
            return payload
        path = self._paged.get(chunk_id)
        if path is None:
            raise KeyError(f"unknown chunk {chunk_id}")
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        size = self._sizes[chunk_id]
        self.stats.pages_in += 1
        self.stats.page_in_bytes += size
        self._resident[chunk_id] = payload
        self._resident_bytes += size
        self._shrink(keep=chunk_id)
        return payload

    def _shrink(self, keep: str | None = None) -> None:
        while self._resident_bytes > self.budget_bytes and len(self._resident) > 1:
            victim = next(iter(self._resident))  # LRU = oldest insertion
            if victim == keep:
                victim = next(
                    cid for cid in self._resident if cid != keep
                )
            payload = self._resident.pop(victim)
            size = self._sizes[victim]
            self._resident_bytes -= size
            if victim not in self._paged:
                path = self.directory.new_path(f"page-{victim}")
                with open(path, "wb") as fh:
                    pickle.dump(payload, fh, protocol=_PICKLE)
                self._paged[victim] = path
            self.stats.pages_out += 1
            self.stats.page_out_bytes += size

    def paged_stub(
        self, chunk_id: str, payload: RecordPayload | ArrayPayload
    ) -> PagedPayload:
        """A :class:`PagedPayload` for a payload registered under this store."""
        kind = "array" if isinstance(payload, ArrayPayload) else "records"
        return PagedPayload(
            load=_StoreLoader(self, chunk_id),
            kind=kind,
            n_records_hint=payload.n_records,
            nbytes_hint=payload.nbytes(),
            record_bytes=getattr(payload, "record_bytes", 0),
            offset=getattr(payload, "offset", 0),
        )


class _StoreLoader:
    """Picklable-by-refusal loader binding a chunk id to its store.

    A plain lambda would silently pickle (dragging the whole store along)
    if a paged chunk ever crossed a process boundary; this object makes
    that path an explicit error instead — the backends materialize
    payloads before shipping chunks (see ``ProcessBackend._chunk_ref``).
    """

    __slots__ = ("store", "chunk_id")

    def __init__(self, store: PayloadStore, chunk_id: str):
        self.store = store
        self.chunk_id = chunk_id

    def __call__(self) -> RecordPayload | ArrayPayload:
        return self.store.get(self.chunk_id)

    def __reduce__(self):
        raise pickle.PicklingError(
            f"paged chunk {self.chunk_id} cannot cross a process boundary; "
            "materialize the payload first (types.concrete_payload)"
        )


# -- worker-side map-output spill ---------------------------------------------


@dataclass(frozen=True)
class WorkerSpillSpec:
    """Instructions a task request carries: where and when to spill.

    Plain picklable data — the processes backend ships it to workers,
    which write spill files directly into ``directory`` (a shared local
    path) and return a :class:`SpilledMapOutput` handle instead of the
    output list itself.
    """

    directory: str
    threshold_bytes: int
    prefix: str = "job"


@dataclass(frozen=True)
class SpilledMapOutput:
    """Handle to one map task's output, spilled where the task ran."""

    path: str
    n_records: int
    nbytes: int

    def load(self) -> list[tuple[Any, Any]]:
        with open(self.path, "rb") as fh:
            return pickle.load(fh)

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


def spill_map_output(
    spec: WorkerSpillSpec,
    task_id: str,
    output: list[tuple[Any, Any]],
    output_nbytes: int,
) -> SpilledMapOutput:
    """Write one map task's output to the spill directory (worker-side)."""
    path = os.path.join(spec.directory, f"{spec.prefix}-{task_id}.mapout")
    with open(path, "wb") as fh:
        pickle.dump(output, fh, protocol=_PICKLE)
    return SpilledMapOutput(path, len(output), output_nbytes)


def as_pairs(output: Any) -> list[tuple[Any, Any]]:
    """A map task's output as a concrete pair list (loads spill handles)."""
    if isinstance(output, SpilledMapOutput):
        return output.load()
    return output


# -- external-sort shuffle -----------------------------------------------------


@dataclass(frozen=True)
class SpilledPartition:
    """Handle to one reduce partition's merged groups, resident on disk."""

    path: str
    n_groups: int
    n_records: int

    def load(self) -> list[tuple[Any, list[Any]]]:
        with open(self.path, "rb") as fh:
            return pickle.load(fh)

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


def as_groups(groups: Any) -> list[tuple[Any, list[Any]]]:
    """Reduce input as concrete groups (loads a spilled partition)."""
    if isinstance(groups, SpilledPartition):
        return groups.load()
    return groups


@dataclass
class _Run:
    """One spilled sorted run: per-partition segment index into a file.

    ``segments`` maps partition -> (file offset, records); each segment
    is an independently pickled list of ``(seq, key, value)`` triples in
    stable key order, where ``seq`` is the record's global arrival index
    (runs cover contiguous arrival windows, so stable k-way merging in
    run order reproduces arrival order within equal keys exactly).
    """

    path: Path
    segments: dict[int, tuple[int, int]]
    n_records: int
    nbytes: int

    def segment(self, partition: int) -> list[tuple[int, Any, Any]]:
        entry = self.segments.get(partition)
        if entry is None:
            return []
        offset, _ = entry
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            return pickle.load(fh)

    def all_triples(self) -> list[tuple[int, Any, Any]]:
        """Every triple of the run (fallback-path reload)."""
        out: list[tuple[int, Any, Any]] = []
        with open(self.path, "rb") as fh:
            for offset, _ in sorted(self.segments.values()):
                fh.seek(offset)
                out.extend(pickle.load(fh))
        return out

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


_key_of = operator.itemgetter(1)


def _sortable_with(kind: str | None, key: Any) -> str | None:
    """The key-stream kind after seeing ``key``, or ``None`` if the stream
    can no longer be externally sorted.

    External sorting needs one total order shared by the run sort, the
    k-way merge and the in-memory reference (`sorted`'s natural order).
    Real numbers (int/float/bool, NaN excluded) share one; strings
    another; anything else — or a mix — has no natural total order and
    the shuffle falls back to fully in-memory grouping.
    """
    if isinstance(key, (int, float)):
        if isinstance(key, float) and key != key:  # NaN
            return None
        new = "number"
    elif isinstance(key, str):
        new = "str"
    else:
        return None
    if kind is None or kind == new:
        return new
    return None


class ShuffleSpiller:
    """External-sort accumulator for the shuffle's map-output stream.

    Feed map task outputs in task order; whenever the in-flight buffer's
    estimated bytes exceed the budget, the buffer is stably sorted by key
    and written as one run (per-partition pickled segments).  After the
    last task, either no run was cut (the caller should use the ordinary
    in-memory shuffle) or :meth:`merge` k-way merges every partition's
    segments into grouped reduce input, spilled per partition.

    Byte-for-byte equivalence with the in-memory shuffle holds because
    (a) runs cover contiguous arrival windows and are each stably
    sorted, (b) ``heapq.merge`` is stable across its inputs in run
    order, and (c) key-equality-implies-adjacency after sorting makes
    adjacent-run grouping identical to dict grouping.  Key streams
    without a shared natural total order (mixed str/number, NaN, exotic
    types) cannot be stream-merged; :attr:`disabled` flips on and the
    caller falls back to the in-memory path (``fallback_pairs`` restores
    exact arrival order from the spilled ``seq`` indices).
    """

    def __init__(
        self,
        budget_bytes: int,
        directory: SpillDirectory,
        n_reducers: int,
        partitioner,
        stats: SpillStats,
        stem: str = "shuffle",
    ):
        self.budget_bytes = int(budget_bytes)
        self.directory = directory
        self.n_reducers = n_reducers
        self.partitioner = partitioner
        self.stats = stats
        self.stem = stem
        self.runs: list[_Run] = []
        self.run_events: list[dict[str, int]] = []
        self.disabled = False
        self._buffer: list[tuple[int, Any, Any]] = []
        self._buffer_bytes = 0
        self._parts: list[int] = []
        self._seq = 0
        self._kind: str | None = None
        self.partition_bytes = [0] * n_reducers

    def feed(self, task_output: Iterable[tuple[Any, Any]]) -> None:
        """Buffer one map task's output; cut a run if over budget."""
        n_reducers = self.n_reducers
        for key, value in task_output:
            part = self.partitioner.partition(key, n_reducers)
            if not 0 <= part < n_reducers:
                raise ValueError(
                    f"partitioner returned {part} for {n_reducers} reducers"
                )
            nbytes = estimate_nbytes(key) + estimate_nbytes(value)
            self.partition_bytes[part] += nbytes
            self._buffer.append((self._seq, key, value))
            self._parts.append(part)
            self._buffer_bytes += nbytes
            self._seq += 1
            if not self.disabled:
                self._kind = _sortable_with(self._kind, key)
                if self._kind is None:
                    self.disabled = True
        if not self.disabled and self._buffer_bytes > self.budget_bytes:
            self._cut_run()

    def _cut_run(self) -> None:
        if not self._buffer:
            return
        order = sorted(range(len(self._buffer)),
                       key=lambda i: _key_of(self._buffer[i]))
        # `sorted` is stable and the buffer is in arrival (seq) order, so
        # equal keys stay in arrival order within the run.
        by_part: dict[int, list[tuple[int, Any, Any]]] = {}
        for i in order:
            by_part.setdefault(self._parts[i], []).append(self._buffer[i])
        path = self.directory.new_path(self.stem)
        segments: dict[int, tuple[int, int]] = {}
        with open(path, "wb") as fh:
            for part in sorted(by_part):
                offset = fh.tell()
                pickle.dump(by_part[part], fh, protocol=_PICKLE)
                segments[part] = (offset, len(by_part[part]))
        run = _Run(path, segments, len(self._buffer), self._buffer_bytes)
        self.runs.append(run)
        self.stats.runs_spilled += 1
        self.stats.run_bytes += run.nbytes
        self.run_events.append(
            {"run": len(self.runs) - 1, "records": run.n_records,
             "bytes": run.nbytes}
        )
        self._buffer, self._parts, self._buffer_bytes = [], [], 0

    def spilled(self) -> bool:
        return bool(self.runs)

    def finish(self) -> None:
        """Flush the trailing buffer as the final run (only if spilling)."""
        if self.runs and not self.disabled and self._buffer:
            self._cut_run()

    def fallback_pairs(self) -> list[tuple[Any, Any]]:
        """Every fed record in exact arrival order (in-memory fallback).

        Used when the key stream turned out not to be externally
        sortable after runs were already cut: reload everything and let
        the in-memory shuffle (whose grouping handles arbitrary keys)
        take over.  ``seq`` indices restore global arrival order across
        the sorted runs.
        """
        triples = [t for run in self.runs for t in run.all_triples()]
        triples.extend(self._buffer)
        triples.sort(key=operator.itemgetter(0))
        for run in self.runs:
            run.delete()
        self.runs = []
        return [(k, v) for _, k, v in triples]

    def merge(self) -> tuple[list[SpilledPartition], list[dict[str, int]]]:
        """K-way merge every partition's run segments into grouped input.

        Returns per-partition :class:`SpilledPartition` handles plus one
        merge-event dict per partition.  Run files are deleted once
        merged; each partition's groups live in their own spill file
        until the reduce task (possibly in a worker process) loads them.
        """
        partitions: list[SpilledPartition] = []
        merge_events: list[dict[str, int]] = []
        for part in range(self.n_reducers):
            streams = [run.segment(part) for run in self.runs]
            merged = heapq.merge(*streams, key=_key_of)
            groups: list[tuple[Any, list[Any]]] = []
            last_key: Any = None
            have_last = False
            n_records = 0
            for _, key, value in merged:
                n_records += 1
                if have_last and key == last_key:
                    groups[-1][1].append(value)
                else:
                    groups.append((key, [value]))
                    last_key, have_last = key, True
            path = self.directory.new_path(f"{self.stem}-part{part:04d}")
            with open(path, "wb") as fh:
                pickle.dump(groups, fh, protocol=_PICKLE)
            handle = SpilledPartition(str(path), len(groups), n_records)
            partitions.append(handle)
            self.stats.merges += 1
            self.stats.merge_bytes += self.partition_bytes[part]
            merge_events.append(
                {"partition": part, "runs": sum(1 for s in streams if s),
                 "records": n_records, "groups": len(groups),
                 "bytes": self.partition_bytes[part]}
            )
        for run in self.runs:
            run.delete()
        self.runs = []
        return partitions, merge_events


# -- per-runner coordination ---------------------------------------------------


class SpillManager:
    """One runner's out-of-core state: budget, spill dir, stats, job seq."""

    def __init__(self, budget_bytes: int, root: str | os.PathLike | None = None):
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = int(budget_bytes)
        self.directory = SpillDirectory(root)
        self.stats = SpillStats()
        self._job_seq = 0

    def next_job(self) -> int:
        self._job_seq += 1
        return self._job_seq

    def worker_spec(self, job_seq: int) -> WorkerSpillSpec:
        return WorkerSpillSpec(
            directory=str(self.directory.path),
            threshold_bytes=self.budget_bytes,
            prefix=f"j{job_seq:04d}",
        )

    def shuffle_spiller(
        self, job_seq: int, n_reducers: int, partitioner
    ) -> ShuffleSpiller:
        return ShuffleSpiller(
            self.budget_bytes,
            self.directory,
            n_reducers,
            partitioner,
            self.stats,
            stem=f"j{job_seq:04d}-shuffle",
        )

    def close(self) -> None:
        self.directory.cleanup()
