"""Hadoop-style job configuration.

A :class:`Configuration` is the bag of string-keyed parameters handed to
every mapper/reducer at ``setup`` time, mirroring Hadoop's ``Configuration``
/ ``JobConf``.  The paper's algorithms read their runtime arguments from it
(e.g. the k-means arguments of Table II: ``k``, ``distanceMeasure``,
``convergencedelta``, ``maxIter``, input/output/clusters paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["Configuration", "MapReduceConfig", "BACKENDS", "validate_tenants"]

_MISSING = object()

#: Execution backends the runner can dispatch tasks on.
BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class MapReduceConfig:
    """Engine-level execution knobs (as opposed to per-job parameters).

    ``backend`` selects how tasks execute: ``"serial"`` runs everything
    inline in the driver, ``"threads"`` uses a thread pool (concurrent
    I/O, GIL-bound compute), ``"processes"`` uses a persistent process
    pool with shared-memory chunk transport (true CPU parallelism; see
    docs/PERFORMANCE.md).  All backends produce byte-identical outputs,
    counters and histories.

    ``max_workers`` caps pool size; ``None`` picks a backend-specific
    default (map slots for threads, CPU count for processes).  Zero or
    negative worker counts are rejected here — ``ThreadPoolExecutor``
    would otherwise accept them silently and hang or misbehave at
    dispatch time.

    ``memory_budget_mb`` bounds the engine's resident working set (the
    Hadoop ``io.sort.mb`` analogue, generalized): map outputs above the
    budget spill worker-side, the shuffle switches to an external merge
    sort, and a budgeted namenode pages chunk payloads to disk.  ``None``
    (the default) means unbounded — everything stays in memory.  Results
    are byte-identical either way.

    ``tenants`` declares the multi-tenant roster for a
    :class:`~repro.mapreduce.service.JobService` deployment: a mapping
    of tenant name to either a numeric fair-share weight or a knob dict
    ``{"weight": float, "max_queued": int | None}`` (``max_queued`` is
    the tenant's admission quota — the most jobs it may have queued or
    running at once).  Zero/negative weights and quotas are rejected
    here, mirroring the ``max_workers`` validation: the fair-share
    scheduler divides by the weight and a zero quota would silently
    reject every submit.  ``None`` means single-tenant (``"default"``
    with weight 1).
    """

    backend: str = "serial"
    max_workers: int | None = None
    memory_budget_mb: float | None = None
    tenants: Mapping[str, Any] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.backend!r}; "
                f"choose one of {', '.join(BACKENDS)}"
            )
        if self.max_workers is not None:
            if not isinstance(self.max_workers, int) or isinstance(self.max_workers, bool):
                raise ValueError(
                    f"max_workers must be a positive int or None, "
                    f"got {self.max_workers!r}"
                )
            if self.max_workers < 1:
                raise ValueError(
                    f"max_workers must be >= 1 (got {self.max_workers}); "
                    f"pass None to use the backend default"
                )
        if self.memory_budget_mb is not None:
            if isinstance(self.memory_budget_mb, bool) or not isinstance(
                self.memory_budget_mb, (int, float)
            ):
                raise ValueError(
                    f"memory_budget_mb must be a positive number or None, "
                    f"got {self.memory_budget_mb!r}"
                )
            if self.memory_budget_mb <= 0:
                raise ValueError(
                    f"memory_budget_mb must be positive (got "
                    f"{self.memory_budget_mb}); pass None for unbounded"
                )
        if self.tenants is not None:
            validate_tenants(self.tenants)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_tenants(tenants: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    """Validate a tenant roster; returns ``{name: {weight, max_queued}}``.

    Accepts the two spellings :class:`MapReduceConfig.tenants` documents
    (bare weight, or a ``{"weight", "max_queued"}`` dict) and normalizes
    both.  Raises ``ValueError`` with an actionable message on empty
    rosters, blank names, non-positive/non-finite weights, non-positive
    quotas, and unknown per-tenant keys — the same fail-at-construction
    stance as the ``max_workers`` check above.
    """
    if not isinstance(tenants, Mapping):
        raise ValueError(
            f"tenants must be a mapping of name -> weight or knob dict, "
            f"got {type(tenants).__name__}"
        )
    if not tenants:
        raise ValueError("tenants must not be empty; pass None for single-tenant")
    normalized: dict[str, dict[str, Any]] = {}
    for name, knobs in tenants.items():
        if not isinstance(name, str) or not name.strip():
            raise ValueError(f"tenant names must be non-empty strings, got {name!r}")
        if _is_number(knobs):
            weight, max_queued = knobs, None
        elif isinstance(knobs, Mapping):
            unknown = set(knobs) - {"weight", "max_queued"}
            if unknown:
                raise ValueError(
                    f"tenant {name!r}: unknown knobs {sorted(unknown)}; "
                    f"expected 'weight' and/or 'max_queued'"
                )
            weight = knobs.get("weight", 1.0)
            max_queued = knobs.get("max_queued")
        else:
            raise ValueError(
                f"tenant {name!r}: expected a weight or a knob dict, got {knobs!r}"
            )
        if not _is_number(weight) or not 0 < weight < float("inf"):
            raise ValueError(
                f"tenant {name!r}: weight must be a positive finite number "
                f"(got {weight!r})"
            )
        if max_queued is not None:
            if not isinstance(max_queued, int) or isinstance(max_queued, bool):
                raise ValueError(
                    f"tenant {name!r}: max_queued must be a positive int or "
                    f"None, got {max_queued!r}"
                )
            if max_queued < 1:
                raise ValueError(
                    f"tenant {name!r}: max_queued must be >= 1 (got "
                    f"{max_queued}); pass None for unlimited"
                )
        normalized[name] = {"weight": float(weight), "max_queued": max_queued}
    return normalized


class Configuration:
    """Immutable-by-convention key/value job configuration.

    Values are stored as given; typed getters coerce on read, as Hadoop
    does with its ``getInt``/``getFloat`` accessors.
    """

    def __init__(self, values: Mapping[str, Any] | None = None, **kwargs: Any):
        self._values: dict[str, Any] = dict(values or {})
        self._values.update(kwargs)

    def copy(self, **overrides: Any) -> "Configuration":
        """A copy with ``overrides`` applied (used when chaining jobs)."""
        merged = dict(self._values)
        merged.update(overrides)
        return Configuration(merged)

    # -- raw access -------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Configuration) and self._values == other._values

    def __repr__(self) -> str:
        return f"Configuration({self._values!r})"

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    # -- typed getters ------------------------------------------------------
    def _typed(self, key: str, default: Any, caster) -> Any:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            if default is _MISSING:
                raise KeyError(f"missing required configuration key {key!r}")
            return default
        try:
            return caster(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"configuration key {key!r} = {value!r}: {exc}") from exc

    def get_int(self, key: str, default: int | object = _MISSING) -> int:
        return self._typed(key, default, int)

    def get_float(self, key: str, default: float | object = _MISSING) -> float:
        return self._typed(key, default, float)

    def get_bool(self, key: str, default: bool | object = _MISSING) -> bool:
        def caster(v: Any) -> bool:
            if isinstance(v, bool):
                return v
            if isinstance(v, str):
                low = v.strip().lower()
                if low in ("true", "1", "yes"):
                    return True
                if low in ("false", "0", "no"):
                    return False
                raise ValueError(f"not a boolean: {v!r}")
            return bool(v)

        return self._typed(key, default, caster)

    def get_str(self, key: str, default: str | object = _MISSING) -> str:
        return self._typed(key, default, str)

    def require(self, *keys: str) -> None:
        """Raise ``KeyError`` listing any missing required keys."""
        missing = [k for k in keys if k not in self._values]
        if missing:
            raise KeyError(f"missing required configuration keys: {missing}")
