"""Hadoop-style job configuration.

A :class:`Configuration` is the bag of string-keyed parameters handed to
every mapper/reducer at ``setup`` time, mirroring Hadoop's ``Configuration``
/ ``JobConf``.  The paper's algorithms read their runtime arguments from it
(e.g. the k-means arguments of Table II: ``k``, ``distanceMeasure``,
``convergencedelta``, ``maxIter``, input/output/clusters paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

__all__ = ["Configuration", "MapReduceConfig", "BACKENDS"]

_MISSING = object()

#: Execution backends the runner can dispatch tasks on.
BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class MapReduceConfig:
    """Engine-level execution knobs (as opposed to per-job parameters).

    ``backend`` selects how tasks execute: ``"serial"`` runs everything
    inline in the driver, ``"threads"`` uses a thread pool (concurrent
    I/O, GIL-bound compute), ``"processes"`` uses a persistent process
    pool with shared-memory chunk transport (true CPU parallelism; see
    docs/PERFORMANCE.md).  All backends produce byte-identical outputs,
    counters and histories.

    ``max_workers`` caps pool size; ``None`` picks a backend-specific
    default (map slots for threads, CPU count for processes).  Zero or
    negative worker counts are rejected here — ``ThreadPoolExecutor``
    would otherwise accept them silently and hang or misbehave at
    dispatch time.

    ``memory_budget_mb`` bounds the engine's resident working set (the
    Hadoop ``io.sort.mb`` analogue, generalized): map outputs above the
    budget spill worker-side, the shuffle switches to an external merge
    sort, and a budgeted namenode pages chunk payloads to disk.  ``None``
    (the default) means unbounded — everything stays in memory.  Results
    are byte-identical either way.
    """

    backend: str = "serial"
    max_workers: int | None = None
    memory_budget_mb: float | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.backend!r}; "
                f"choose one of {', '.join(BACKENDS)}"
            )
        if self.max_workers is not None:
            if not isinstance(self.max_workers, int) or isinstance(self.max_workers, bool):
                raise ValueError(
                    f"max_workers must be a positive int or None, "
                    f"got {self.max_workers!r}"
                )
            if self.max_workers < 1:
                raise ValueError(
                    f"max_workers must be >= 1 (got {self.max_workers}); "
                    f"pass None to use the backend default"
                )
        if self.memory_budget_mb is not None:
            if isinstance(self.memory_budget_mb, bool) or not isinstance(
                self.memory_budget_mb, (int, float)
            ):
                raise ValueError(
                    f"memory_budget_mb must be a positive number or None, "
                    f"got {self.memory_budget_mb!r}"
                )
            if self.memory_budget_mb <= 0:
                raise ValueError(
                    f"memory_budget_mb must be positive (got "
                    f"{self.memory_budget_mb}); pass None for unbounded"
                )


class Configuration:
    """Immutable-by-convention key/value job configuration.

    Values are stored as given; typed getters coerce on read, as Hadoop
    does with its ``getInt``/``getFloat`` accessors.
    """

    def __init__(self, values: Mapping[str, Any] | None = None, **kwargs: Any):
        self._values: dict[str, Any] = dict(values or {})
        self._values.update(kwargs)

    def copy(self, **overrides: Any) -> "Configuration":
        """A copy with ``overrides`` applied (used when chaining jobs)."""
        merged = dict(self._values)
        merged.update(overrides)
        return Configuration(merged)

    # -- raw access -------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Configuration) and self._values == other._values

    def __repr__(self) -> str:
        return f"Configuration({self._values!r})"

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    # -- typed getters ------------------------------------------------------
    def _typed(self, key: str, default: Any, caster) -> Any:
        value = self._values.get(key, _MISSING)
        if value is _MISSING:
            if default is _MISSING:
                raise KeyError(f"missing required configuration key {key!r}")
            return default
        try:
            return caster(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"configuration key {key!r} = {value!r}: {exc}") from exc

    def get_int(self, key: str, default: int | object = _MISSING) -> int:
        return self._typed(key, default, int)

    def get_float(self, key: str, default: float | object = _MISSING) -> float:
        return self._typed(key, default, float)

    def get_bool(self, key: str, default: bool | object = _MISSING) -> bool:
        def caster(v: Any) -> bool:
            if isinstance(v, bool):
                return v
            if isinstance(v, str):
                low = v.strip().lower()
                if low in ("true", "1", "yes"):
                    return True
                if low in ("false", "0", "no"):
                    return False
                raise ValueError(f"not a boolean: {v!r}")
            return bool(v)

        return self._typed(key, default, caster)

    def get_str(self, key: str, default: str | object = _MISSING) -> str:
        return self._typed(key, default, str)

    def require(self, *keys: str) -> None:
        """Raise ``KeyError`` listing any missing required keys."""
        missing = [k for k in keys if k not in self._values]
        if missing:
            raise KeyError(f"missing required configuration keys: {missing}")
