"""Text-line input: the paper's record-at-a-time GeoLife processing.

The paper's Hadoop jobs read GeoLife as text: "each map task reads its
input chunk and processes each line of the chunk corresponding to a
mobility trace".  The columnar :class:`~repro.mapreduce.types.ArrayPayload`
path is this library's fast default, but this module provides the
faithful text path:

* :func:`put_geolife_text` uploads a dataset as PLT record lines, chunked
  by actual text bytes (so a 64 MB chunk really holds ~64 MB of lines);
* :class:`GeoLifeTextMapper` is a mapper base class that parses each
  line into a :class:`~repro.geo.trace.MobilityTrace` before calling
  ``map_trace``;
* :class:`TextSamplingMapper` reimplements Section V's sampling exactly
  as described — one pass, comparing each trace against the window's
  reference trace — and is tested equivalent to the vectorized kernel.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.algorithms.sampling import SamplingTechnique
from repro.geo.geolife import format_plt_line, parse_plt_line
from repro.geo.trace import GeolocatedDataset, MobilityTrace, Trail, TraceArray
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobSpec, MapContext, Mapper
from repro.mapreduce.runner import JobResult, JobRunner

__all__ = [
    "put_geolife_text",
    "put_geolife_text_stream",
    "read_geolife_text",
    "GeoLifeTextMapper",
    "TextSamplingMapper",
    "run_text_sampling_job",
]


def _array_lines(array: TraceArray) -> Iterator[tuple[str, str]]:
    users = array.user_ids()
    for i in range(len(array)):
        line = format_plt_line(
            float(array.latitude[i]),
            float(array.longitude[i]),
            float(array.altitude[i]),
            float(array.timestamp[i]),
        )
        yield str(users[i]), line


def put_geolife_text(
    hdfs: SimulatedHDFS,
    path: str,
    dataset: GeolocatedDataset | TraceArray,
    writer: str | None = None,
) -> None:
    """Upload a dataset as ``(user_id, plt_line)`` text records.

    Unlike the array path, chunk sizes here reflect the genuine text
    length of each line (~64 bytes), matching the paper's on-disk model.
    For corpora that must never be fully resident, feed
    :func:`put_geolife_text_stream` from
    :func:`repro.geo.geolife.stream_geolife_trails` instead.
    """
    array = dataset.flat() if isinstance(dataset, GeolocatedDataset) else dataset
    hdfs.put_records(path, _array_lines(array), writer=writer)


def put_geolife_text_stream(
    hdfs: SimulatedHDFS,
    path: str,
    trails: Iterable[Trail],
    writer: str | None = None,
) -> int:
    """Upload a stream of trails as text records, one trajectory resident
    at a time.

    The streaming twin of :func:`put_geolife_text`: records flow straight
    from each trail into the namenode's chunk cutter, and under a memory
    budget each completed chunk pages out before the next trajectory is
    even read — end-to-end ingestion of a dataset larger than RAM.
    Returns the number of traces written.
    """
    count = 0

    def lines() -> Iterator[tuple[str, str]]:
        nonlocal count
        for trail in trails:
            for record in _array_lines(trail.traces):
                count += 1
                yield record

    hdfs.put_records(path, lines(), writer=writer)
    return count


def read_geolife_text(hdfs: SimulatedHDFS, path: str) -> TraceArray:
    """Read a text file written by :func:`put_geolife_text` (or produced
    by a text job) back into a columnar array."""
    traces = []
    for user, line in hdfs.iter_records(path):
        lat, lon, alt, ts = parse_plt_line(line)
        traces.append(MobilityTrace(str(user), lat, lon, ts, alt))
    return TraceArray.from_traces(traces)


class GeoLifeTextMapper(Mapper):
    """Parses each text record into a trace before mapping.

    Subclasses implement ``map_trace(trace, ctx)``; malformed lines are
    counted under the ``textio.malformed_lines`` counter and skipped,
    as Hadoop text jobs conventionally do.
    """

    def map(self, key: Any, value: str, ctx: MapContext) -> None:
        try:
            lat, lon, alt, ts = parse_plt_line(value)
        except (ValueError, IndexError):
            ctx.counters.increment("textio", "malformed_lines", 1)
            return
        self.map_trace(MobilityTrace(str(key), lat, lon, ts, alt), ctx)

    def map_trace(self, trace: MobilityTrace, ctx: MapContext) -> None:
        raise NotImplementedError


class TextSamplingMapper(GeoLifeTextMapper):
    """Section V's sampling, record-at-a-time, exactly as the paper puts
    it: "for each time window the mapper artificially generates a
    reference trace ... the current mobility trace read from the chunk is
    compared against the reference trace ... only the trace closest to
    the reference trace is outputted".

    State per (user, window) holds the best trace seen so far; winners
    are emitted in ``cleanup`` once the chunk is exhausted.
    """

    def setup(self, ctx: MapContext) -> None:
        self._window_s = ctx.conf.get_float("sampling.window_s")
        self._technique = SamplingTechnique.parse(
            ctx.conf.get_str("sampling.technique", "upper")
        )
        self._best: dict[tuple[str, int], tuple[float, MobilityTrace]] = {}

    def _reference(self, window: int) -> float:
        if self._technique is SamplingTechnique.UPPER:
            return (window + 1) * self._window_s
        return window * self._window_s + self._window_s / 2.0

    def map_trace(self, trace: MobilityTrace, ctx: MapContext) -> None:
        window = int(trace.timestamp // self._window_s)
        delta = abs(trace.timestamp - self._reference(window))
        key = (trace.user_id, window)
        best = self._best.get(key)
        if best is None or delta < best[0]:
            self._best[key] = (delta, trace)

    def cleanup(self, ctx: MapContext) -> None:
        for (user, _window), (_delta, trace) in sorted(self._best.items()):
            line = format_plt_line(
                trace.latitude, trace.longitude, trace.altitude, trace.timestamp
            )
            ctx.emit(user, line)


def run_text_sampling_job(
    runner: JobRunner,
    input_path: str,
    output_path: str,
    window_s: float,
    technique: "str | SamplingTechnique" = SamplingTechnique.UPPER,
) -> JobResult:
    """Map-only text sampling job over a :func:`put_geolife_text` file."""
    from repro.mapreduce.config import Configuration

    technique = SamplingTechnique.parse(technique)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    return runner.run(
        JobSpec(
            name="sampling-text",
            mapper=TextSamplingMapper,
            input_paths=[input_path],
            output_path=output_path,
            conf=Configuration(
                {"sampling.window_s": window_s, "sampling.technique": technique.value}
            ),
            map_cost_factor=0.6,
        )
    )
