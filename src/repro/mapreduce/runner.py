"""The job runner: executes a :class:`~repro.mapreduce.job.JobSpec`.

Execution follows the Hadoop lifecycle from Section III end-to-end:

1. the namenode supplies the input chunks and their replica locations;
2. the jobtracker plans map tasks onto tasktracker slots with locality
   preference (:mod:`repro.mapreduce.scheduler`);
3. map tasks run on the configured execution backend (serial, thread
   pool, or shared-memory process pool — see
   :mod:`repro.mapreduce.backends`), each over one chunk, with failure
   injection + retry on another replica holder;
4. the optional combiner folds each map task's local output;
5. the shuffle partitions, transfers and sorts intermediate pairs;
6. reduce tasks aggregate their key groups; output lands in HDFS;
7. the cost model converts the executed DAG into simulated seconds.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any


from repro.geo.trace import TraceArray
from repro.mapreduce.aggregation import AggregationReducerFactory, preaggregate
from repro.mapreduce.backends import (
    MapOutcome,
    MapTaskRequest,
    ReduceOutcome,
    ReduceTaskRequest,
    create_backend,
    run_combiner,
)
from repro.mapreduce.cache import DistributedCache, FaultyCacheView
from repro.mapreduce.config import MapReduceConfig
from repro.mapreduce.counters import Counters, STANDARD
from repro.mapreduce.failures import (
    ChaosSchedule,
    FailureInjector,
    FaultKind,
    JobFailedError,
    MAX_TASK_ATTEMPTS,
    TaskFailure,
)
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import (
    ARRAY_OUTPUT_KEY,
    JobSpec,
    MapContext,
    ReduceContext,
)
from repro.mapreduce.scheduler import (
    MapPhasePlan,
    NodeBlacklist,
    ReduceAssignment,
    RetryPolicy,
    TaskAssignment,
    emit_map_phase_events,
    emit_reduce_phase_events,
    plan_map_phase,
    plan_reduce_phase,
    record_locality,
)
from repro.mapreduce.shuffle import (
    emit_shuffle_events,
    emit_shuffle_refetch_events,
    shuffle,
)
from repro.mapreduce.simtime import CostModel, JobTiming
from repro.mapreduce.spill import MB, SpillManager, SpilledMapOutput, as_pairs
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory

__all__ = ["JobRunner", "JobResult"]


@dataclass
class JobResult:
    """Everything a caller can observe about a finished job."""

    job_name: str
    output_path: str
    counters: Counters
    timing: JobTiming
    map_plan: MapPhasePlan
    n_map_tasks: int
    n_reduce_tasks: int
    #: Per-reduce-task placements (empty for map-only jobs).  The service
    #: layer's fair-share interleave replans these durations over the
    #: shared slot pool.
    reduce_plan: list[ReduceAssignment] = field(default_factory=list)

    @property
    def sim_seconds(self) -> float:
        """Simulated job duration on the modelled cluster."""
        return self.timing.total_s

    def summary(self) -> str:
        """One-line jobtracker-style report (name, tasks, locality,
        shuffle volume, simulated timing breakdown)."""
        sched = self.counters.group(STANDARD.GROUP_SCHEDULER)
        local = sched.get(STANDARD.DATA_LOCAL_MAPS, 0)
        shuffle_mb = self.counters.value(
            STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES
        ) / (1024 * 1024)
        failed = sched.get(STANDARD.FAILED_TASKS, 0)
        parts = [
            f"{self.job_name}: {self.n_map_tasks} maps ({local} node-local)",
            f"{self.n_reduce_tasks} reduces" if self.n_reduce_tasks else "map-only",
            f"shuffle {shuffle_mb:.2f} MB",
            f"sim {self.sim_seconds:.1f}s "
            f"({self.timing.setup_s:.0f}+{self.timing.map_s:.1f}"
            f"+{self.timing.reduce_s:.1f})",
        ]
        if failed:
            parts.append(f"{failed} retried attempts")
        return "  ".join(parts)


class JobRunner:
    """Executes MapReduce jobs against a :class:`SimulatedHDFS` cluster.

    Parameters
    ----------
    hdfs:
        The filesystem (and, through it, the cluster topology).
    cost_model:
        Simulated-time constants; defaults to the Table III calibration.
    cache:
        The distributed cache visible to all tasks of all jobs run here.
    failure_injector:
        Optional :class:`FailureInjector`; injected crashes are retried up
        to ``max_attempts`` per task, preferring a different replica node.
    chaos:
        Optional :class:`~repro.mapreduce.failures.ChaosSchedule` — the
        deterministic chaos engine.  Adds slow-node stragglers, cache-load
        and shuffle-fetch faults, and mid-phase node loss (tasktracker +
        datanode) on top of plain attempt crashes; all recovery costs are
        charged to the job's retry penalty.
    retry_policy:
        Optional :class:`~repro.mapreduce.scheduler.RetryPolicy`
        (attempt budget, exponential backoff, per-job node blacklist
        threshold).  When given it overrides ``max_attempts``; when
        omitted a default policy is built around ``max_attempts``.
    executor:
        Execution backend: ``"serial"`` (default), ``"threads"`` (thread
        pool sized to the cluster's map slots), or ``"processes"`` (a
        persistent worker-process pool with shared-memory chunk
        transport; see :mod:`repro.mapreduce.backends` and
        docs/PERFORMANCE.md).  All backends produce byte-identical
        outputs, counters and histories.  Use :meth:`close` (or the
        context-manager protocol) to release process-backend resources
        promptly.
    max_workers:
        Worker-pool size cap; ``None`` picks the backend default.
        Validated by :class:`~repro.mapreduce.config.MapReduceConfig`
        (zero/negative counts are rejected with a clear error).
    memory_budget_mb / spill_dir:
        Out-of-core execution knob (``None`` = unbounded, the default).
        With a budget, map tasks spill over-budget output worker-side,
        the shuffle switches to an external merge sort when its buffer
        exceeds the budget, and spilled reduce partitions are loaded by
        the reduce attempt where it runs.  Outputs, counters and
        histories (minus the extra ``spill_*`` events and the reported
        ``spill_s``) are byte-identical to unbudgeted runs — the budget
        trades resident memory for local-disk IO, which the cost model
        charges as overlapped background time.  ``spill_dir`` overrides
        the private temp directory spill files live in.
    prefer_locality / speculative:
        Scheduler knobs (DESIGN.md locality ablation; straggler
        speculation).
    preagg:
        Map-side vectorized pre-aggregation (default on).  Only jobs
        declaring a :class:`~repro.mapreduce.aggregation.Aggregation`
        are affected: their map output is folded into fixed-size
        aggregate envelopes worker-side and their reduce is synthesized
        from the monoid.  ``False`` falls back to the declared
        combiner/reducer — the ablation knob; outputs are byte-identical
        either way.
    metadata_shuffle:
        When a pre-aggregated job's every map output is envelopes, ship
        one coalesced envelope per (node, partition, key) and charge the
        cost model for those bytes only (default on).  ``False`` pushes
        envelopes through the generic shuffle — same outputs, legacy
        byte accounting.
    reduce_locality:
        Locality-aware reduce placement (default off, preserving legacy
        placements): schedule each reducer on the node holding the
        plurality of its partition's bytes and charge shuffle fetch for
        bytes actually crossing nodes.  Requires the per-node byte
        provenance the metadata-only shuffle records; jobs without it
        keep legacy placement.
    history:
        The :class:`~repro.observability.history.JobHistory` receiving
        this deployment's structured trace events.  One collector spans
        every job the runner executes (successive jobs stack on one
        cumulative simulated clock), so a driver's per-iteration jobs
        land in a single exportable history.  Defaults to a fresh
        collector; pass one explicitly to share a history across runners.
    """

    def __init__(
        self,
        hdfs: SimulatedHDFS,
        cost_model: CostModel | None = None,
        cache: DistributedCache | None = None,
        failure_injector: FailureInjector | None = None,
        max_attempts: int = MAX_TASK_ATTEMPTS,
        executor: str = "serial",
        max_workers: int | None = None,
        prefer_locality: bool = True,
        speculative: bool = False,
        history: JobHistory | None = None,
        chaos: ChaosSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        memory_budget_mb: float | None = None,
        spill_dir: str | None = None,
        preagg: bool = True,
        metadata_shuffle: bool = True,
        reduce_locality: bool = False,
    ):
        self.exec_config = MapReduceConfig(
            backend=executor,
            max_workers=max_workers,
            memory_budget_mb=memory_budget_mb,
        )
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.hdfs = hdfs
        self.cluster = hdfs.cluster
        self.cost_model = cost_model or CostModel()
        self.cache = cache or DistributedCache()
        self.failure_injector = failure_injector
        self.chaos = chaos
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=max_attempts)
        self.max_attempts = self.retry_policy.max_attempts
        #: Node losses already inflicted this deployment (the chaos
        #: schedule's ``max_node_losses`` budget spans all jobs run here).
        self._node_losses = 0
        self.executor = executor
        self.max_workers = max_workers
        if executor == "processes":
            workers = max_workers or max(os.cpu_count() or 1, 1)
        else:
            workers = max_workers or max(self.cluster.total_map_slots(), 1)
        self._backend = create_backend(self.exec_config, workers)
        self.memory_budget_mb = memory_budget_mb
        self._spill = (
            SpillManager(max(1, int(memory_budget_mb * MB)), spill_dir)
            if memory_budget_mb is not None
            else None
        )
        self.prefer_locality = prefer_locality
        self.speculative = speculative
        self.preagg = preagg
        self.metadata_shuffle = metadata_shuffle
        self.reduce_locality = reduce_locality
        self.history = history if history is not None else JobHistory()
        #: Tenant label stamped into JOB_START events; ``None`` (solo
        #: deployments) keeps histories byte-identical to pre-service
        #: runs.  Set by the :class:`~repro.mapreduce.service.JobService`
        #: dispatcher around each job it executes.
        self.tenant: str | None = None
        #: Extra JSON-safe labels stamped into JOB_START alongside the
        #: tenant (e.g. the streaming window index); also set by the
        #: service dispatcher, ``None`` everywhere else.
        self.job_tags: dict | None = None
        #: Simulated one-time deployment overhead (HDFS install + upload);
        #: reported separately, as the paper does (~25 s).
        self.deploy_overhead_s = self.cost_model.deploy_overhead_s

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (process pool, shared memory).

        Safe to call more than once; a garbage-collected runner releases
        them too, but closing promptly avoids lingering worker processes
        between jobs."""
        self._backend.close()
        if self._spill is not None:
            self._spill.close()

    @property
    def spill_stats(self):
        """Out-of-core activity counters, or ``None`` when unbudgeted."""
        return self._spill.stats if self._spill is not None else None

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backend dispatch ----------------------------------------------------
    def _uses_order_dependent_faults(self) -> bool:
        """Whether fault decisions depend on execution order or placement.

        A probabilistic :class:`FailureInjector` draws from a sequential
        RNG (attempt outcomes depend on draw order), and a chaos
        schedule's ``bad_nodes`` makes crashes depend on the retry node —
        which depends on the shared blacklist's evolution.  Neither can
        be computed by the pure worker-side attempt loop, so the runner
        falls back to its legacy in-driver execution path for them.
        """
        if self.failure_injector is not None and self.failure_injector.probability > 0:
            return True
        if self.chaos is not None and self.chaos.bad_nodes:
            return True
        return False

    def _scripted_set(self) -> frozenset | None:
        """The injector's scripted ``(task_id, attempt)`` pairs, if any
        (the only injector mechanism the pure attempt loop supports)."""
        if self.failure_injector is None or not self.failure_injector.scripted:
            return None
        return frozenset(self.failure_injector.scripted)

    def _finalize_map_outcome(
        self,
        assignment: TaskAssignment,
        outcome: MapOutcome,
        blacklist: NodeBlacklist,
    ) -> tuple[list[tuple[Any, Any]], Counters, float, int, list[tuple]]:
        """Replay one map outcome's failure narrative in the driver.

        Reconstructs exactly what the legacy serial loop would have
        recorded: node choice per attempt (initial assignment, then
        :meth:`_retry_node` against the evolving shared blacklist),
        backoffs, the per-failure blacklist updates and the retry
        penalty.  Called in task order, so the blacklist evolves in the
        same order as serial execution.
        """
        chunk = assignment.chunk
        tried: set[str] = set()
        node = assignment.node
        retry_penalty = 0.0
        failures: list[tuple] = []
        for attempt, reason, kind in outcome.failures:
            tried.add(node)
            backoff = self.retry_policy.backoff_s(attempt)
            failures.append((attempt, node, reason, kind, backoff))
            retry_penalty += assignment.duration + backoff
            blacklist.record_failure(node)
            node = self._retry_node(chunk, tried, blacklist)
        if not outcome.success:
            last = outcome.failures[-1]
            raise JobFailedError(
                assignment.task_id, self.max_attempts, failures
            ) from TaskFailure(assignment.task_id, last[0], last[1], last[2])
        return (
            outcome.output,
            outcome.counters,
            retry_penalty,
            outcome.output_records,
            failures,
        )

    def _finalize_reduce_outcome(
        self,
        task_id: str,
        outcome: ReduceOutcome,
        blacklist: NodeBlacklist,
        alive: list[str],
    ) -> tuple[list[tuple[Any, Any]], Counters, list[tuple]]:
        """Replay one reduce outcome's failure narrative (node rotation
        over non-blacklisted alive workers, as the legacy loop does)."""
        failures: list[tuple] = []
        for attempt, reason, kind in outcome.failures:
            usable = [
                n for n in alive if not blacklist.is_blacklisted(n)
            ] or alive
            node = usable[(attempt - 1) % len(usable)]
            backoff = self.retry_policy.backoff_s(attempt)
            failures.append((attempt, node, reason, kind, backoff))
            blacklist.record_failure(node)
        if not outcome.success:
            last = outcome.failures[-1]
            raise JobFailedError(
                task_id, self.max_attempts, failures
            ) from TaskFailure(task_id, last[0], last[1], last[2])
        return outcome.output, outcome.counters, failures

    # -- map side -----------------------------------------------------------
    def _retry_node(
        self, chunk: Chunk, tried: set[str], blacklist: NodeBlacklist | None = None
    ) -> str:
        """Pick the node for a retry attempt: untried replica, else any.

        Blacklisted nodes are avoided whenever a non-blacklisted candidate
        exists (a fully-blacklisted cluster still dispatches — Hadoop's
        blacklist likewise degrades to best-effort rather than deadlock).
        """
        alive = [
            n.name
            for n in self.cluster.tasktrackers()
            if n.name not in self.hdfs.dead_nodes
        ]

        def usable(node: str) -> bool:
            return blacklist is None or not blacklist.is_blacklisted(node)

        for only_usable in (True, False):
            for replica in chunk.replicas:
                if replica not in tried and replica in alive:
                    if not only_usable or usable(replica):
                        return replica
            untried = [
                n for n in alive
                if n not in tried and (not only_usable or usable(n))
            ]
            if untried:
                return untried[0]
        return alive[0]

    def _run_map_task(
        self,
        job: JobSpec,
        assignment: TaskAssignment,
        blacklist: NodeBlacklist | None = None,
    ) -> tuple[list[tuple[Any, Any]], Counters, float, int, list[tuple]]:
        """Run one map task with the retry policy.

        Returns (output pairs, local counters, simulated retry penalty,
        records emitted, failed attempts as
        (attempt, node, reason, fault kind, backoff_s)).  The penalty for
        each failed attempt is the wasted attempt's duration plus the
        exponential re-dispatch backoff the retry policy imposes.
        """
        chunk = assignment.chunk
        retry_penalty = 0.0
        tried: set[str] = set()
        node = assignment.node
        last_error: TaskFailure | None = None
        failures: list[tuple] = []
        for attempt in range(1, self.max_attempts + 1):
            tried.add(node)
            counters = Counters()
            cache = self.cache
            if self.chaos is not None and self.chaos.cache_load_fails(
                assignment.task_id, attempt
            ):
                # This attempt's tasktracker fails to localize the cache:
                # the mapper's first cache read raises CacheLoadFailure.
                cache = FaultyCacheView(self.cache, assignment.task_id, attempt)
            ctx = MapContext(job.conf, counters, cache, assignment.task_id, node)
            mapper = job.mapper()
            try:
                if self.failure_injector is not None:
                    self.failure_injector.fail_attempt(assignment.task_id, attempt)
                if self.chaos is not None:
                    self.chaos.fail_attempt(assignment.task_id, attempt, node=node)
                mapper.setup(ctx)
                mapper.run(chunk, ctx)
                mapper.cleanup(ctx)
            except TaskFailure as exc:
                last_error = exc
                backoff = self.retry_policy.backoff_s(attempt)
                failures.append((attempt, node, exc.reason, exc.kind, backoff))
                retry_penalty += assignment.duration + backoff
                if blacklist is not None:
                    blacklist.record_failure(node)
                node = self._retry_node(chunk, tried, blacklist)
                continue
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS, chunk.n_records
            )
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS, ctx.output_records
            )
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_BYTES, ctx.output_nbytes
            )
            counters.increment(
                STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1
            )
            return ctx.output, counters, retry_penalty, ctx.output_records, failures
        raise JobFailedError(
            assignment.task_id, self.max_attempts, failures
        ) from last_error

    def _apply_combiner(
        self, job: JobSpec, task_output: list[tuple[Any, Any]], task_id: str, node: str
    ) -> tuple[list[tuple[Any, Any]], Counters]:
        """Run the combiner over one map task's local output (the same
        pure function backends run worker-side)."""
        return run_combiner(
            job.combiner, job.conf, self.cache, as_pairs(task_output), task_id, node
        )

    # -- output side -----------------------------------------------------------
    def _write_output(self, path: str, records: list[tuple[Any, Any]]) -> None:
        """Write job output; columnar blocks keep the array fast path."""
        if records and all(k == ARRAY_OUTPUT_KEY for k, _ in records):
            arrays = [v for _, v in records if isinstance(v, TraceArray)]
            if len(arrays) == len(records):
                merged = TraceArray.concatenate(arrays)
                self.hdfs.put_trace_array(path, merged)
                return
        self.hdfs.put_records(path, records)

    # -- the whole job --------------------------------------------------------
    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job`` and return its :class:`JobResult`.

        Raises ``FileExistsError`` if the output path exists (as Hadoop
        refuses to clobber output directories), ``FileNotFoundError`` for
        missing inputs, and ``RuntimeError`` when a task exhausts its
        retry budget.
        """
        if self.hdfs.exists(job.output_path):
            raise FileExistsError(f"output path exists: {job.output_path}")
        job_seq = self._spill.next_job() if self._spill is not None else 0
        spill_spec = (
            self._spill.worker_spec(job_seq) if self._spill is not None else None
        )
        chunks = [c for path in job.input_paths for c in self.hdfs.chunks(path)]
        counters = Counters()
        counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.MAP_TASKS, len(chunks))

        blacklist = NodeBlacklist(self.retry_policy.blacklist_after)
        slowdown = (
            self.chaos.node_slowdown
            if self.chaos is not None and self.chaos.active()
            else None
        )
        plan = plan_map_phase(
            chunks,
            self.cluster,
            lambda c, loc: self.cost_model.map_task_time(c, loc, job.map_cost_factor),
            prefer_locality=self.prefer_locality,
            speculative=self.speculative,
            dead_nodes=self.hdfs.dead_nodes,
            node_slowdown=slowdown,
        )
        record_locality(counters, plan)

        primary = sorted(
            (a for a in plan.assignments if not a.speculative),
            key=lambda a: a.task_id,
        )

        legacy_faults = self._uses_order_dependent_faults()
        use_preagg = job.aggregation is not None and self.preagg
        pre_combined: list[tuple[list, Counters] | None] = [None] * len(primary)
        if legacy_faults:
            # Legacy in-driver path: fault decisions depend on execution
            # order / node placement, so dispatch exactly as before.
            if self.executor == "threads" and len(primary) > 1:
                workers = self.max_workers or max(self.cluster.total_map_slots(), 1)
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(
                        pool.map(
                            lambda a: self._run_map_task(job, a, blacklist), primary
                        )
                    )
            else:
                results = [self._run_map_task(job, a, blacklist) for a in primary]
        else:
            scripted = self._scripted_set()
            self._backend.prepare_job(self.cache)
            requests = [
                MapTaskRequest(
                    task_id=a.task_id,
                    node=a.node,
                    chunk=a.chunk,
                    mapper=job.mapper,
                    combiner=job.combiner,
                    conf=job.conf,
                    cache=self.cache,
                    chaos=self.chaos,
                    scripted=scripted,
                    max_attempts=self.max_attempts,
                    spill=spill_spec,
                    aggregation=job.aggregation if use_preagg else None,
                )
                for a in primary
            ]
            outcomes = self._backend.run_map_tasks(requests)
            results = []
            for i, (a, outcome) in enumerate(zip(primary, outcomes)):
                results.append(self._finalize_map_outcome(a, outcome, blacklist))
                if outcome.combined_output is not None:
                    pre_combined[i] = (
                        outcome.combined_output, outcome.combine_counters
                    )

        # Mid-phase node loss: a tasktracker+datanode dies after its map
        # attempts completed; their outputs are gone and must re-execute on
        # surviving replica holders, and HDFS re-replicates the dead node's
        # chunks.  Mutates ``results`` in place for the lost tasks.
        node_loss = self._apply_node_loss(job, primary, results, blacklist)
        if node_loss is not None:
            counters.increment(
                STANDARD.GROUP_SCHEDULER, STANDARD.NODES_LOST, 1
            )
            counters.increment(
                STANDARD.GROUP_SCHEDULER,
                STANDARD.REPLICAS_HEALED,
                len(node_loss["healed"]),
            )

        map_outputs: list[list[tuple[Any, Any]]] = []
        retry_penalty = 0.0
        map_failures: dict[str, list[tuple]] = {}
        map_spills: list[dict[str, Any]] = []
        for assignment, (output, task_counters, penalty, _, failures) in zip(
            primary, results
        ):
            counters.merge(task_counters)
            retry_penalty += penalty
            map_outputs.append(output)
            if isinstance(output, SpilledMapOutput):
                map_spills.append({
                    "task": assignment.task_id,
                    "records": output.n_records,
                    "bytes": output.nbytes,
                    "write_s": self.cost_model.spill_write_time(output.nbytes),
                })
                # Worker-side spills can't reach the driver's counters;
                # account for them as their handles come back.
                self._spill.stats.map_spills += 1
                self._spill.stats.map_spill_bytes += output.nbytes
            if failures:
                map_failures[assignment.task_id] = failures
        spill_handles = [o for o in map_outputs if isinstance(o, SpilledMapOutput)]
        if node_loss is not None:
            retry_penalty += node_loss["recovery_s"]

        if use_preagg or job.combiner is not None:
            # Backend outcomes carry worker-side combined/pre-aggregated
            # output; tasks re-executed after node loss (and legacy-path
            # tasks) fold here.  Both paths are the same pure function of
            # the task output, so the result is byte-identical either
            # way.  Pre-aggregation envelopes are always labelled with
            # the *planned* assignment node, so a chaos re-execution on
            # another node leaves the canonical merge tree — and the job
            # output — untouched.
            lost_indices = (
                set(node_loss["lost_indices"]) if node_loss is not None else set()
            )
            combined = []
            for i, (assignment, output) in enumerate(zip(primary, map_outputs)):
                pre = pre_combined[i]
                if pre is not None and i not in lost_indices:
                    out, c_counters = pre
                elif use_preagg:
                    out, c_counters = preaggregate(
                        job.aggregation,
                        as_pairs(output),
                        assignment.node,
                        assignment.task_id,
                    )
                else:
                    out, c_counters = self._apply_combiner(
                        job, output, assignment.task_id, assignment.node
                    )
                counters.merge(c_counters)
                combined.append(out)
            map_outputs = combined

        setup_s = self.cost_model.job_setup_s + self.cost_model.cache_broadcast_time(
            self.cache.nbytes()
        )

        blacklisted = sorted(blacklist.nodes())
        if blacklisted:
            counters.increment(
                STANDARD.GROUP_SCHEDULER,
                STANDARD.NODES_BLACKLISTED,
                len(blacklisted),
            )

        if job.map_only:
            flat = [pair for output in map_outputs for pair in as_pairs(output)]
            self._write_output(job.output_path, flat)
            for handle in spill_handles:
                handle.delete()
            spill_s = sum(s["write_s"] for s in map_spills)
            timing = JobTiming(setup_s, plan.makespan, 0.0, retry_penalty, spill_s)
            self._emit_history(
                job, len(chunks), plan, map_failures, None, None, None,
                timing, counters, len(primary), 0,
                recovery=self._recovery_info(node_loss, [], blacklist),
                spill=self._spill_info(map_spills, None),
            )
            return JobResult(
                job.name, job.output_path, counters, timing, plan, len(primary), 0
            )

        spiller = (
            self._spill.shuffle_spiller(job_seq, job.num_reducers, job.partitioner)
            if self._spill is not None
            else None
        )
        sh = shuffle(
            map_outputs,
            job.partitioner,
            job.num_reducers,
            spiller=spiller,
            aggregation=job.aggregation if use_preagg else None,
            metadata_only=self.metadata_shuffle,
        )
        for handle in spill_handles:
            handle.delete()
        counters.increment(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES, sh.shuffled_bytes)
        counters.increment(
            STANDARD.GROUP_SCHEDULER, STANDARD.REDUCE_TASKS, job.num_reducers
        )

        # Shuffle-fetch failures: a reducer's fetch of one map output times
        # out and is re-fetched (from the re-executed map's output or a
        # surviving replica after node loss).  Data already lives in the
        # shuffle result, so only simulated time and events are affected.
        refetches = self._plan_shuffle_refetches(job, sh, primary, node_loss)
        if refetches:
            counters.increment(
                STANDARD.GROUP_SCHEDULER,
                STANDARD.SHUFFLE_REFETCHES,
                len(refetches),
            )
            retry_penalty += sum(r[2] for r in refetches)

        reduce_output: list[tuple[Any, Any]] = []
        reduce_failures: dict[str, list[tuple]] = {}
        reduce_factory = (
            AggregationReducerFactory(job.aggregation) if use_preagg else job.reducer
        )
        if legacy_faults:
            # Materialize one partition at a time (spilled partitions stay
            # on disk until their reduce task runs).
            reduce_results = [
                self._run_reduce_task(
                    job, f"reduce-{r:04d}", sh.partition(r), blacklist,
                    factory=reduce_factory,
                )
                for r in range(sh.n_reducers)
            ]
        else:
            scripted = self._scripted_set()
            reduce_requests = [
                ReduceTaskRequest(
                    task_id=f"reduce-{r:04d}",
                    groups=sh.raw_partition(r),
                    reducer=reduce_factory,
                    conf=job.conf,
                    cache=self.cache,
                    chaos=self.chaos,
                    scripted=scripted,
                    max_attempts=self.max_attempts,
                )
                for r in range(sh.n_reducers)
            ]
            outcomes = self._backend.run_reduce_tasks(reduce_requests)
            alive = [
                n.name
                for n in self.cluster.tasktrackers()
                if n.name not in self.hdfs.dead_nodes
            ]
            reduce_results = [
                self._finalize_reduce_outcome(
                    f"reduce-{r:04d}", outcome, blacklist, alive
                )
                for r, outcome in enumerate(outcomes)
            ]
        for r, (out, r_counters, r_failed) in enumerate(reduce_results):
            task_id = f"reduce-{r:04d}"
            counters.merge(r_counters)
            reduce_output.extend(out)
            if r_failed:
                reduce_failures[task_id] = r_failed
                duration = self.cost_model.reduce_task_time(
                    sh.partition_bytes[r], job.reduce_cost_factor
                )
                for failure in r_failed:
                    backoff = float(failure[4]) if len(failure) > 4 else 0.0
                    retry_penalty += duration + backoff
        sh.release()

        blacklisted_now = sorted(blacklist.nodes())
        if len(blacklisted_now) > len(blacklisted):
            counters.increment(
                STANDARD.GROUP_SCHEDULER,
                STANDARD.NODES_BLACKLISTED,
                len(blacklisted_now) - len(blacklisted),
            )

        # Locality-aware reduce placement: pin each reducer to the alive
        # node holding the plurality of its partition's bytes (ties break
        # on node name), and charge the fetch term of its duration for
        # the bytes that actually cross nodes.  Needs the per-node byte
        # provenance only the metadata-only shuffle records.
        pinned: dict[int, str] | None = None
        if self.reduce_locality and sh.node_bytes is not None:
            alive_slotted = {
                n.name
                for n in self.cluster.tasktrackers()
                if n.name not in self.hdfs.dead_nodes and n.reduce_slots > 0
            }
            pinned = {}
            for r in range(sh.n_reducers):
                local = {
                    node: b
                    for node, b in sh.node_bytes[r].items()
                    if node in alive_slotted
                }
                if local:
                    pinned[r] = max(sorted(local), key=lambda n: local[n])

        def _reduce_duration(r: int) -> float:
            cross = None
            if pinned is not None:
                on_node = sh.node_bytes[r].get(pinned.get(r, ""), 0)
                cross = sh.partition_bytes[r] - on_node
            return self.cost_model.reduce_task_time(
                sh.partition_bytes[r], job.reduce_cost_factor, cross_nbytes=cross
            )

        reduce_placements, reduce_makespan = plan_reduce_phase(
            job.num_reducers,
            self.cluster,
            _reduce_duration,
            dead_nodes=self.hdfs.dead_nodes,
            node_slowdown=slowdown,
            pinned_nodes=pinned,
        )
        if sh.node_bytes is not None:
            node_of = {p.task_id: p.node for p in reduce_placements}
            cross_total = sum(
                sh.partition_bytes[r]
                - sh.node_bytes[r].get(node_of[f"reduce-{r:04d}"], 0)
                for r in range(sh.n_reducers)
            )
            counters.increment(
                STANDARD.GROUP_TASK,
                STANDARD.SHUFFLE_CROSS_NODE_BYTES,
                cross_total,
            )
        self._write_output(job.output_path, reduce_output)
        spill_info = self._spill_info(map_spills, sh)
        spill_s = (
            sum(s["write_s"] for s in spill_info["map"])
            + sum(s["write_s"] for s in spill_info["runs"])
            + sum(s["read_s"] for s in spill_info["merges"])
            if spill_info is not None
            else 0.0
        )
        timing = JobTiming(
            setup_s, plan.makespan, reduce_makespan, retry_penalty, spill_s
        )
        self._emit_history(
            job, len(chunks), plan, map_failures, sh, reduce_placements,
            reduce_failures, timing, counters, len(primary), job.num_reducers,
            recovery=self._recovery_info(node_loss, refetches, blacklist),
            spill=spill_info,
        )
        return JobResult(
            job.name,
            job.output_path,
            counters,
            timing,
            plan,
            len(primary),
            job.num_reducers,
            reduce_plan=reduce_placements,
        )

    def _apply_node_loss(
        self,
        job: JobSpec,
        primary: list[TaskAssignment],
        results: list[tuple],
        blacklist: NodeBlacklist,
    ) -> dict[str, Any] | None:
        """Inflict the chaos schedule's mid-phase node loss, if any.

        The victim (a tasktracker that is also a datanode) dies after its
        map attempts completed: their outputs vanish with it, so exactly
        those tasks re-execute on surviving replica holders (``results``
        is patched in place — counters are *replaced*, not merged, so
        every re-executed record is accounted once), and the namenode
        re-replicates the dead datanode's chunks
        (:meth:`SimulatedHDFS.heal_report`).  The loss is declined when it
        would strand a chunk with zero replicas or leave fewer than two
        workers — chaos tests robustness, not unrecoverable data loss.
        """
        if self.chaos is None:
            return None
        datanode_names = {n.name for n in self.cluster.datanodes()}
        candidates = sorted(
            n.name
            for n in self.cluster.tasktrackers()
            if n.name not in self.hdfs.dead_nodes and n.name in datanode_names
        )
        if len(candidates) < 2 or self.hdfs.replication < 2:
            return None
        victim = self.chaos.node_loss_victim(job.name, candidates, self._node_losses)
        if victim is None:
            return None
        doomed = self.hdfs.dead_nodes | {victim}
        for path in self.hdfs.ls():
            for replicas in self.hdfs.replica_report(path).values():
                if all(r in doomed for r in replicas):
                    return None
        self._node_losses += 1
        self.hdfs.kill_datanode(victim)

        lost = [(i, a) for i, a in enumerate(primary) if a.node == victim]
        for i, a in lost:
            _, _, penalty, _, failures = results[i]
            rerun_node = self._retry_node(a.chunk, {victim}, blacklist)
            new_failures = list(failures) + [(
                len(failures) + 1,
                victim,
                f"node {victim} lost mid-phase; map output re-dispatched",
                FaultKind.NODE_LOSS,
                0.0,
            )]
            rerun_counters = Counters()
            ctx = MapContext(
                job.conf, rerun_counters, self.cache, a.task_id, rerun_node
            )
            mapper = job.mapper()
            mapper.setup(ctx)
            mapper.run(a.chunk, ctx)
            mapper.cleanup(ctx)
            rerun_counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS, a.chunk.n_records
            )
            rerun_counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS, ctx.output_records
            )
            rerun_counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_BYTES, ctx.output_nbytes
            )
            rerun_counters.increment(
                STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, len(new_failures)
            )
            results[i] = (
                ctx.output,
                rerun_counters,
                penalty + a.duration,  # the lost attempt's wasted slot time
                ctx.output_records,
                new_failures,
            )

        healed = self.hdfs.heal_report()
        heal_bytes = sum(nbytes for _, _, nbytes in healed)
        rereplicate_s = self.cost_model.rereplication_time(heal_bytes)
        return {
            "victim": victim,
            "lost": [a for _, a in lost],
            "lost_indices": [i for i, _ in lost],
            "healed": healed,
            "heal_bytes": heal_bytes,
            "detect_s": self.cost_model.node_loss_detect_s,
            "rereplicate_s": rereplicate_s,
            "recovery_s": self.cost_model.node_loss_detect_s + rereplicate_s,
        }

    def _plan_shuffle_refetches(
        self,
        job: JobSpec,
        sh,
        primary: list[TaskAssignment],
        node_loss: dict[str, Any] | None,
    ) -> list[tuple[str, int, float, str]]:
        """Which reducers re-fetch map output, and at what simulated cost.

        Returns ``(reduce task id, bytes, refetch_s, reason)`` per
        re-fetch: chaos-scheduled fetch timeouts re-pull one map task's
        contribution (~1/n_maps of the partition); after node loss every
        reducer re-fetches the lost tasks' share from the re-executed
        outputs / surviving replicas.
        """
        refetches: list[tuple[str, int, float, str]] = []
        if self.chaos is None:
            return refetches
        n_maps = max(len(primary), 1)
        lost = node_loss["lost"] if node_loss is not None else []
        for r in range(sh.n_reducers):
            task_id = f"reduce-{r:04d}"
            for _ in range(self.chaos.shuffle_fetch_failures(task_id)):
                nbytes = sh.partition_bytes[r] // n_maps
                refetches.append((
                    task_id,
                    nbytes,
                    self.cost_model.shuffle_refetch_time(nbytes),
                    "fetch timeout",
                ))
            if lost:
                nbytes = int(sh.partition_bytes[r] * len(lost) / n_maps)
                refetches.append((
                    task_id,
                    nbytes,
                    self.cost_model.shuffle_refetch_time(nbytes),
                    f"map outputs on {node_loss['victim']} re-fetched "
                    f"after node loss",
                ))
        return refetches

    def _spill_info(
        self, map_spills: list[dict[str, Any]], sh
    ) -> dict[str, list[dict[str, Any]]] | None:
        """Bundle spill facts for history emission, with IO costs priced
        by the cost model; ``None`` when nothing spilled, so unbudgeted
        (and under-budget) histories stay byte-identical."""
        runs: list[dict[str, Any]] = []
        merges: list[dict[str, Any]] = []
        if sh is not None and sh.spilled:
            runs = [
                dict(ev, write_s=self.cost_model.spill_write_time(ev["bytes"]))
                for ev in sh.spill_runs
            ]
            merges = [
                dict(ev, read_s=self.cost_model.spill_read_time(ev["bytes"]))
                for ev in sh.spill_merges
            ]
        if not map_spills and not runs:
            return None
        return {"map": map_spills, "runs": runs, "merges": merges}

    @staticmethod
    def _recovery_info(
        node_loss: dict[str, Any] | None,
        refetches: list[tuple[str, int, float, str]],
        blacklist: NodeBlacklist,
    ) -> dict[str, Any] | None:
        """Bundle recovery facts for history emission; None when nothing
        happened, so fault-free histories stay byte-identical."""
        if node_loss is None and not refetches and not blacklist.nodes():
            return None
        return {
            "node_loss": node_loss,
            "refetches": refetches,
            "blacklist": blacklist,
        }

    def _emit_history(
        self,
        job: JobSpec,
        n_chunks: int,
        plan: MapPhasePlan,
        map_failures: dict[str, list[tuple]],
        sh,
        reduce_placements,
        reduce_failures: dict[str, list[tuple]] | None,
        timing: JobTiming,
        counters: Counters,
        n_map_tasks: int,
        n_reduce_tasks: int,
        recovery: dict[str, Any] | None = None,
        spill: dict[str, list[dict[str, Any]]] | None = None,
    ) -> None:
        """Emit the job's full event stream onto the cumulative sim clock.

        The execution is simulated, so events are materialized post-hoc in
        chronological order: job/setup at the clock origin, the map-phase
        task timeline, shuffle transfers, the reduce-phase timeline, and
        the closing ``job_finish`` carrying the timing breakdown and the
        final counter snapshot.  Phase durations exactly mirror
        :class:`JobTiming` (the acceptance invariant the history tests
        pin down); per-task retry extensions are charged to the job-wide
        retry penalty, not the phase clock.
        """
        h = self.history
        t0 = h.clock
        h.emit(
            EventKind.JOB_START,
            job.name,
            t0,
            input_paths=list(job.input_paths),
            output_path=job.output_path,
            n_chunks=n_chunks,
            map_only=job.map_only,
            num_reducers=0 if job.map_only else job.num_reducers,
            combiner=job.combiner is not None,
            **({"tenant": self.tenant} if self.tenant is not None else {}),
            **(self.job_tags or {}),
        )
        h.emit(EventKind.PHASE_START, job.name, t0, phase=Phase.SETUP)
        if len(self.cache):
            cache_nbytes = self.cache.nbytes()
            h.emit(
                EventKind.CACHE_LOAD,
                job.name,
                t0,
                entries=sorted(self.cache),
                nbytes=cache_nbytes,
                broadcast_s=self.cost_model.cache_broadcast_time(cache_nbytes),
            )
        h.emit(
            EventKind.PHASE_FINISH, job.name, t0 + timing.setup_s,
            phase=Phase.SETUP, duration_s=timing.setup_s,
        )
        t_map = t0 + timing.setup_s
        h.emit(EventKind.PHASE_START, job.name, t_map, phase=Phase.MAP)
        emit_map_phase_events(h, job.name, plan, t_map, map_failures)
        if recovery is not None and recovery["node_loss"] is not None:
            nl = recovery["node_loss"]
            # The node died once its last map attempt had completed.
            ts = t_map + min(
                max((a.end_time for a in nl["lost"]), default=0.0), timing.map_s
            )
            h.emit(
                EventKind.NODE_LOST,
                job.name,
                ts,
                node=nl["victim"],
                lost_tasks=sorted(a.task_id for a in nl["lost"]),
                detect_s=nl["detect_s"],
            )
            if nl["healed"]:
                h.emit(
                    EventKind.REPLICA_HEALED,
                    job.name,
                    ts,
                    replicas=len(nl["healed"]),
                    nbytes=nl["heal_bytes"],
                    rereplicate_s=nl["rereplicate_s"],
                )
        if spill is not None:
            # Spill IO happens on Hadoop's background spill thread while
            # the map phase runs; everything is stamped at the phase end
            # (the simulated clock has no per-task sub-timeline for it).
            ts = t_map + timing.map_s
            for s in spill["map"]:
                h.emit(
                    EventKind.SPILL_START, job.name, ts, task=s["task"],
                    source="map", records=s["records"], bytes=s["bytes"],
                    write_s=s["write_s"],
                )
            for s in spill["runs"]:
                h.emit(
                    EventKind.SPILL_START, job.name, ts, task="shuffle",
                    source="shuffle", run=s["run"], records=s["records"],
                    bytes=s["bytes"], write_s=s["write_s"],
                )
        h.emit(
            EventKind.PHASE_FINISH, job.name, t_map + timing.map_s,
            phase=Phase.MAP, duration_s=timing.map_s,
        )
        if sh is not None:
            t_reduce = t_map + timing.map_s
            emit_shuffle_events(h, job.name, sh, t_reduce)
            if sh.preagg is not None:
                preagg_data = dict(sh.preagg)
                if sh.node_bytes is not None and reduce_placements:
                    node_of = {p.task_id: p.node for p in reduce_placements}
                    preagg_data["cross_node_bytes"] = sum(
                        sh.partition_bytes[r]
                        - sh.node_bytes[r].get(node_of[f"reduce-{r:04d}"], 0)
                        for r in range(sh.n_reducers)
                    )
                h.emit(
                    EventKind.SHUFFLE_PREAGG, job.name, t_reduce, **preagg_data
                )
            if (
                self.reduce_locality
                and sh.node_bytes is not None
                and reduce_placements
            ):
                for p in sorted(reduce_placements, key=lambda p: p.task_id):
                    r = int(p.task_id.rsplit("-", 1)[1])
                    local_b = sh.node_bytes[r].get(p.node, 0)
                    h.emit(
                        EventKind.REDUCE_PLACEMENT,
                        job.name,
                        t_reduce,
                        task=p.task_id,
                        node=p.node,
                        reducer=p.task_id,
                        bytes=sh.partition_bytes[r],
                        local_bytes=local_b,
                        cross_bytes=sh.partition_bytes[r] - local_b,
                    )
            if spill is not None:
                for s in spill["merges"]:
                    h.emit(
                        EventKind.SPILL_MERGE, job.name, t_reduce,
                        task=f"reduce-{s['partition']:04d}", runs=s["runs"],
                        records=s["records"], groups=s["groups"],
                        bytes=s["bytes"], read_s=s["read_s"],
                    )
            if recovery is not None:
                emit_shuffle_refetch_events(
                    h, job.name, recovery["refetches"], t_reduce
                )
            h.emit(EventKind.PHASE_START, job.name, t_reduce, phase=Phase.REDUCE)
            records = {
                f"reduce-{r:04d}": sh.records_for(r) for r in range(sh.n_reducers)
            }
            emit_reduce_phase_events(
                h, job.name, reduce_placements, t_reduce,
                reduce_failures or {}, records,
            )
            h.emit(
                EventKind.PHASE_FINISH, job.name, t_reduce + timing.reduce_s,
                phase=Phase.REDUCE, duration_s=timing.reduce_s,
            )
        if recovery is not None:
            blacklist = recovery["blacklist"]
            for node in sorted(blacklist.nodes()):
                h.emit(
                    EventKind.NODE_BLACKLISTED,
                    job.name,
                    t_map + timing.map_s,
                    node=node,
                    failures=blacklist.failure_count(node),
                    threshold=blacklist.threshold,
                )
        h.emit(
            EventKind.JOB_FINISH,
            job.name,
            t0 + timing.total_s,
            timing={
                "setup_s": timing.setup_s,
                "map_s": timing.map_s,
                "reduce_s": timing.reduce_s,
                "retry_penalty_s": timing.retry_penalty_s,
                "total_s": timing.total_s,
                # Background spill IO, excluded from total_s; keyed only
                # when spilling happened so unbudgeted histories don't
                # change shape.
                **({"spill_s": timing.spill_s} if timing.spill_s else {}),
            },
            counters=counters.to_dict(),
            n_map_tasks=n_map_tasks,
            n_reduce_tasks=n_reduce_tasks,
            output_path=job.output_path,
        )
        h.advance(t0 + timing.total_s)

    def _run_reduce_task(
        self,
        job: JobSpec,
        task_id: str,
        groups: list[tuple[Any, list[Any]]],
        blacklist: NodeBlacklist | None = None,
        factory: Any | None = None,
    ) -> tuple[list[tuple[Any, Any]], Counters, list[tuple]]:
        """Run one reduce task with the same retry policy as map tasks.

        ``factory`` overrides the job's declared reducer (the runner
        passes the synthesized aggregation reducer for pre-aggregated
        jobs); ``None`` uses ``job.reducer``.
        """
        alive = [
            n.name
            for n in self.cluster.tasktrackers()
            if n.name not in self.hdfs.dead_nodes
        ]
        last_error: TaskFailure | None = None
        failures: list[tuple] = []
        for attempt in range(1, self.max_attempts + 1):
            usable = [
                n for n in alive
                if blacklist is None or not blacklist.is_blacklisted(n)
            ] or alive
            node = usable[(attempt - 1) % len(usable)]
            counters = Counters()
            ctx = ReduceContext(job.conf, counters, self.cache, task_id, node)
            reducer = (factory or job.reducer)()
            try:
                if self.failure_injector is not None:
                    self.failure_injector.fail_attempt(task_id, attempt)
                if self.chaos is not None:
                    self.chaos.fail_attempt(task_id, attempt, node=node)
                reducer.setup(ctx)
                reducer.run(groups, ctx)
                reducer.cleanup(ctx)
            except TaskFailure as exc:
                last_error = exc
                backoff = self.retry_policy.backoff_s(attempt)
                failures.append((attempt, node, exc.reason, exc.kind, backoff))
                if blacklist is not None:
                    blacklist.record_failure(node)
                counters = Counters()
                continue
            n_values = sum(len(v) for _, v in groups)
            counters.increment(STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_GROUPS, len(groups))
            counters.increment(STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_RECORDS, n_values)
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.REDUCE_OUTPUT_RECORDS, ctx.output_records
            )
            counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1)
            return ctx.output, counters, failures
        raise JobFailedError(task_id, self.max_attempts, failures) from last_error
