"""The job runner: executes a :class:`~repro.mapreduce.job.JobSpec`.

Execution follows the Hadoop lifecycle from Section III end-to-end:

1. the namenode supplies the input chunks and their replica locations;
2. the jobtracker plans map tasks onto tasktracker slots with locality
   preference (:mod:`repro.mapreduce.scheduler`);
3. map tasks run (serially or on a thread pool), each over one chunk,
   with failure injection + retry on another replica holder;
4. the optional combiner folds each map task's local output;
5. the shuffle partitions, transfers and sorts intermediate pairs;
6. reduce tasks aggregate their key groups; output lands in HDFS;
7. the cost model converts the executed DAG into simulated seconds.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters, STANDARD
from repro.mapreduce.failures import FailureInjector, MAX_TASK_ATTEMPTS, TaskFailure
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import (
    ARRAY_OUTPUT_KEY,
    JobSpec,
    MapContext,
    ReduceContext,
)
from repro.mapreduce.scheduler import (
    MapPhasePlan,
    TaskAssignment,
    emit_map_phase_events,
    emit_reduce_phase_events,
    plan_map_phase,
    plan_reduce_phase,
    record_locality,
)
from repro.mapreduce.shuffle import emit_shuffle_events, group_sorted, shuffle
from repro.mapreduce.simtime import CostModel, JobTiming
from repro.mapreduce.types import Chunk
from repro.observability.events import EventKind, Phase
from repro.observability.history import JobHistory

__all__ = ["JobRunner", "JobResult"]


@dataclass
class JobResult:
    """Everything a caller can observe about a finished job."""

    job_name: str
    output_path: str
    counters: Counters
    timing: JobTiming
    map_plan: MapPhasePlan
    n_map_tasks: int
    n_reduce_tasks: int

    @property
    def sim_seconds(self) -> float:
        """Simulated job duration on the modelled cluster."""
        return self.timing.total_s

    def summary(self) -> str:
        """One-line jobtracker-style report (name, tasks, locality,
        shuffle volume, simulated timing breakdown)."""
        sched = self.counters.group(STANDARD.GROUP_SCHEDULER)
        local = sched.get(STANDARD.DATA_LOCAL_MAPS, 0)
        shuffle_mb = self.counters.value(
            STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES
        ) / (1024 * 1024)
        failed = sched.get(STANDARD.FAILED_TASKS, 0)
        parts = [
            f"{self.job_name}: {self.n_map_tasks} maps ({local} node-local)",
            f"{self.n_reduce_tasks} reduces" if self.n_reduce_tasks else "map-only",
            f"shuffle {shuffle_mb:.2f} MB",
            f"sim {self.sim_seconds:.1f}s "
            f"({self.timing.setup_s:.0f}+{self.timing.map_s:.1f}"
            f"+{self.timing.reduce_s:.1f})",
        ]
        if failed:
            parts.append(f"{failed} retried attempts")
        return "  ".join(parts)


class JobRunner:
    """Executes MapReduce jobs against a :class:`SimulatedHDFS` cluster.

    Parameters
    ----------
    hdfs:
        The filesystem (and, through it, the cluster topology).
    cost_model:
        Simulated-time constants; defaults to the Table III calibration.
    cache:
        The distributed cache visible to all tasks of all jobs run here.
    failure_injector:
        Optional :class:`FailureInjector`; injected crashes are retried up
        to ``max_attempts`` per task, preferring a different replica node.
    executor:
        ``"serial"`` (default, fully deterministic) or ``"threads"`` — run
        map tasks on a thread pool sized to the cluster's map slots.
    prefer_locality / speculative:
        Scheduler knobs (DESIGN.md locality ablation; straggler
        speculation).
    history:
        The :class:`~repro.observability.history.JobHistory` receiving
        this deployment's structured trace events.  One collector spans
        every job the runner executes (successive jobs stack on one
        cumulative simulated clock), so a driver's per-iteration jobs
        land in a single exportable history.  Defaults to a fresh
        collector; pass one explicitly to share a history across runners.
    """

    def __init__(
        self,
        hdfs: SimulatedHDFS,
        cost_model: CostModel | None = None,
        cache: DistributedCache | None = None,
        failure_injector: FailureInjector | None = None,
        max_attempts: int = MAX_TASK_ATTEMPTS,
        executor: str = "serial",
        max_workers: int | None = None,
        prefer_locality: bool = True,
        speculative: bool = False,
        history: JobHistory | None = None,
    ):
        if executor not in ("serial", "threads"):
            raise ValueError(f"unknown executor {executor!r}")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.hdfs = hdfs
        self.cluster = hdfs.cluster
        self.cost_model = cost_model or CostModel()
        self.cache = cache or DistributedCache()
        self.failure_injector = failure_injector
        self.max_attempts = max_attempts
        self.executor = executor
        self.max_workers = max_workers
        self.prefer_locality = prefer_locality
        self.speculative = speculative
        self.history = history if history is not None else JobHistory()
        #: Simulated one-time deployment overhead (HDFS install + upload);
        #: reported separately, as the paper does (~25 s).
        self.deploy_overhead_s = self.cost_model.deploy_overhead_s

    # -- map side -----------------------------------------------------------
    def _retry_node(self, chunk: Chunk, tried: set[str]) -> str:
        """Pick the node for a retry attempt: untried replica, else any."""
        alive = [
            n.name
            for n in self.cluster.tasktrackers()
            if n.name not in self.hdfs.dead_nodes
        ]
        for replica in chunk.replicas:
            if replica not in tried and replica in alive:
                return replica
        untried = [n for n in alive if n not in tried]
        return untried[0] if untried else alive[0]

    def _run_map_task(
        self, job: JobSpec, assignment: TaskAssignment
    ) -> tuple[list[tuple[Any, Any]], Counters, float, int, list[tuple[int, str, str]]]:
        """Run one map task with the retry policy.

        Returns (output pairs, local counters, simulated retry penalty,
        records emitted, failed attempts as (attempt, node, reason)).
        """
        chunk = assignment.chunk
        retry_penalty = 0.0
        tried: set[str] = set()
        node = assignment.node
        last_error: TaskFailure | None = None
        failures: list[tuple[int, str, str]] = []
        for attempt in range(1, self.max_attempts + 1):
            tried.add(node)
            counters = Counters()
            ctx = MapContext(job.conf, counters, self.cache, assignment.task_id, node)
            mapper = job.mapper()
            try:
                if self.failure_injector is not None:
                    self.failure_injector.fail_attempt(assignment.task_id, attempt)
                mapper.setup(ctx)
                mapper.run(chunk, ctx)
                mapper.cleanup(ctx)
            except TaskFailure as exc:
                last_error = exc
                failures.append((attempt, node, exc.reason))
                retry_penalty += assignment.duration  # the wasted attempt
                node = self._retry_node(chunk, tried)
                continue
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS, chunk.n_records
            )
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS, ctx.output_records
            )
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_BYTES, ctx.output_nbytes
            )
            counters.increment(
                STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1
            )
            return ctx.output, counters, retry_penalty, ctx.output_records, failures
        raise RuntimeError(
            f"task {assignment.task_id} failed {self.max_attempts} attempts"
        ) from last_error

    def _apply_combiner(
        self, job: JobSpec, task_output: list[tuple[Any, Any]], task_id: str, node: str
    ) -> tuple[list[tuple[Any, Any]], Counters]:
        """Run the combiner over one map task's local output."""
        counters = Counters()
        ctx = ReduceContext(job.conf, counters, self.cache, f"{task_id}-combine", node)
        combiner = job.combiner()
        groups = group_sorted(task_output)
        combiner.setup(ctx)
        combiner.run(groups, ctx)
        combiner.cleanup(ctx)
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.COMBINE_INPUT_RECORDS, len(task_output)
        )
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.COMBINE_OUTPUT_RECORDS, len(ctx.output)
        )
        return ctx.output, counters

    # -- output side -----------------------------------------------------------
    def _write_output(self, path: str, records: list[tuple[Any, Any]]) -> None:
        """Write job output; columnar blocks keep the array fast path."""
        if records and all(k == ARRAY_OUTPUT_KEY for k, _ in records):
            arrays = [v for _, v in records if isinstance(v, TraceArray)]
            if len(arrays) == len(records):
                merged = TraceArray.concatenate(arrays)
                self.hdfs.put_trace_array(path, merged)
                return
        self.hdfs.put_records(path, records)

    # -- the whole job --------------------------------------------------------
    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job`` and return its :class:`JobResult`.

        Raises ``FileExistsError`` if the output path exists (as Hadoop
        refuses to clobber output directories), ``FileNotFoundError`` for
        missing inputs, and ``RuntimeError`` when a task exhausts its
        retry budget.
        """
        if self.hdfs.exists(job.output_path):
            raise FileExistsError(f"output path exists: {job.output_path}")
        chunks = [c for path in job.input_paths for c in self.hdfs.chunks(path)]
        counters = Counters()
        counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.MAP_TASKS, len(chunks))

        plan = plan_map_phase(
            chunks,
            self.cluster,
            lambda c, loc: self.cost_model.map_task_time(c, loc, job.map_cost_factor),
            prefer_locality=self.prefer_locality,
            speculative=self.speculative,
            dead_nodes=self.hdfs.dead_nodes,
        )
        record_locality(counters, plan)

        primary = sorted(
            (a for a in plan.assignments if not a.speculative),
            key=lambda a: a.task_id,
        )

        if self.executor == "threads" and len(primary) > 1:
            workers = self.max_workers or max(self.cluster.total_map_slots(), 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(lambda a: self._run_map_task(job, a), primary))
        else:
            results = [self._run_map_task(job, a) for a in primary]

        map_outputs: list[list[tuple[Any, Any]]] = []
        retry_penalty = 0.0
        map_failures: dict[str, list[tuple[int, str, str]]] = {}
        for assignment, (output, task_counters, penalty, _, failures) in zip(
            primary, results
        ):
            counters.merge(task_counters)
            retry_penalty += penalty
            map_outputs.append(output)
            if failures:
                map_failures[assignment.task_id] = failures

        if job.combiner is not None:
            combined = []
            for assignment, output in zip(primary, map_outputs):
                out, c_counters = self._apply_combiner(
                    job, output, assignment.task_id, assignment.node
                )
                counters.merge(c_counters)
                combined.append(out)
            map_outputs = combined

        setup_s = self.cost_model.job_setup_s + self.cost_model.cache_broadcast_time(
            self.cache.nbytes()
        )

        if job.map_only:
            flat = [pair for output in map_outputs for pair in output]
            self._write_output(job.output_path, flat)
            timing = JobTiming(setup_s, plan.makespan, 0.0, retry_penalty)
            self._emit_history(
                job, len(chunks), plan, map_failures, None, None, None,
                timing, counters, len(primary), 0,
            )
            return JobResult(
                job.name, job.output_path, counters, timing, plan, len(primary), 0
            )

        sh = shuffle(map_outputs, job.partitioner, job.num_reducers)
        counters.increment(STANDARD.GROUP_TASK, STANDARD.SHUFFLE_BYTES, sh.shuffled_bytes)
        counters.increment(
            STANDARD.GROUP_SCHEDULER, STANDARD.REDUCE_TASKS, job.num_reducers
        )

        reduce_output: list[tuple[Any, Any]] = []
        reduce_failures: dict[str, list[tuple[int, str, str]]] = {}
        for r, groups in enumerate(sh.partitions):
            task_id = f"reduce-{r:04d}"
            out, r_counters, r_failed = self._run_reduce_task(job, task_id, groups)
            counters.merge(r_counters)
            reduce_output.extend(out)
            if r_failed:
                reduce_failures[task_id] = r_failed

        reduce_placements, reduce_makespan = plan_reduce_phase(
            job.num_reducers,
            self.cluster,
            lambda r: self.cost_model.reduce_task_time(
                sh.partition_bytes[r], job.reduce_cost_factor
            ),
            dead_nodes=self.hdfs.dead_nodes,
        )
        self._write_output(job.output_path, reduce_output)
        timing = JobTiming(setup_s, plan.makespan, reduce_makespan, retry_penalty)
        self._emit_history(
            job, len(chunks), plan, map_failures, sh, reduce_placements,
            reduce_failures, timing, counters, len(primary), job.num_reducers,
        )
        return JobResult(
            job.name,
            job.output_path,
            counters,
            timing,
            plan,
            len(primary),
            job.num_reducers,
        )

    def _emit_history(
        self,
        job: JobSpec,
        n_chunks: int,
        plan: MapPhasePlan,
        map_failures: dict[str, list[tuple[int, str, str]]],
        sh,
        reduce_placements,
        reduce_failures: dict[str, list[tuple[int, str, str]]] | None,
        timing: JobTiming,
        counters: Counters,
        n_map_tasks: int,
        n_reduce_tasks: int,
    ) -> None:
        """Emit the job's full event stream onto the cumulative sim clock.

        The execution is simulated, so events are materialized post-hoc in
        chronological order: job/setup at the clock origin, the map-phase
        task timeline, shuffle transfers, the reduce-phase timeline, and
        the closing ``job_finish`` carrying the timing breakdown and the
        final counter snapshot.  Phase durations exactly mirror
        :class:`JobTiming` (the acceptance invariant the history tests
        pin down); per-task retry extensions are charged to the job-wide
        retry penalty, not the phase clock.
        """
        h = self.history
        t0 = h.clock
        h.emit(
            EventKind.JOB_START,
            job.name,
            t0,
            input_paths=list(job.input_paths),
            output_path=job.output_path,
            n_chunks=n_chunks,
            map_only=job.map_only,
            num_reducers=0 if job.map_only else job.num_reducers,
            combiner=job.combiner is not None,
        )
        h.emit(EventKind.PHASE_START, job.name, t0, phase=Phase.SETUP)
        if len(self.cache):
            cache_nbytes = self.cache.nbytes()
            h.emit(
                EventKind.CACHE_LOAD,
                job.name,
                t0,
                entries=sorted(self.cache),
                nbytes=cache_nbytes,
                broadcast_s=self.cost_model.cache_broadcast_time(cache_nbytes),
            )
        h.emit(
            EventKind.PHASE_FINISH, job.name, t0 + timing.setup_s,
            phase=Phase.SETUP, duration_s=timing.setup_s,
        )
        t_map = t0 + timing.setup_s
        h.emit(EventKind.PHASE_START, job.name, t_map, phase=Phase.MAP)
        emit_map_phase_events(h, job.name, plan, t_map, map_failures)
        h.emit(
            EventKind.PHASE_FINISH, job.name, t_map + timing.map_s,
            phase=Phase.MAP, duration_s=timing.map_s,
        )
        if sh is not None:
            t_reduce = t_map + timing.map_s
            emit_shuffle_events(h, job.name, sh, t_reduce)
            h.emit(EventKind.PHASE_START, job.name, t_reduce, phase=Phase.REDUCE)
            records = {
                f"reduce-{r:04d}": sh.records_for(r) for r in range(sh.n_reducers)
            }
            emit_reduce_phase_events(
                h, job.name, reduce_placements, t_reduce,
                reduce_failures or {}, records,
            )
            h.emit(
                EventKind.PHASE_FINISH, job.name, t_reduce + timing.reduce_s,
                phase=Phase.REDUCE, duration_s=timing.reduce_s,
            )
        h.emit(
            EventKind.JOB_FINISH,
            job.name,
            t0 + timing.total_s,
            timing={
                "setup_s": timing.setup_s,
                "map_s": timing.map_s,
                "reduce_s": timing.reduce_s,
                "retry_penalty_s": timing.retry_penalty_s,
                "total_s": timing.total_s,
            },
            counters=counters.to_dict(),
            n_map_tasks=n_map_tasks,
            n_reduce_tasks=n_reduce_tasks,
            output_path=job.output_path,
        )
        h.advance(t0 + timing.total_s)

    def _run_reduce_task(
        self, job: JobSpec, task_id: str, groups: list[tuple[Any, list[Any]]]
    ) -> tuple[list[tuple[Any, Any]], Counters, list[tuple[int, str, str]]]:
        """Run one reduce task with the same retry policy as map tasks."""
        alive = [
            n.name
            for n in self.cluster.tasktrackers()
            if n.name not in self.hdfs.dead_nodes
        ]
        last_error: TaskFailure | None = None
        failures: list[tuple[int, str, str]] = []
        for attempt in range(1, self.max_attempts + 1):
            node = alive[(attempt - 1) % len(alive)]
            counters = Counters()
            ctx = ReduceContext(job.conf, counters, self.cache, task_id, node)
            reducer = job.reducer()
            try:
                if self.failure_injector is not None:
                    self.failure_injector.fail_attempt(task_id, attempt)
                reducer.setup(ctx)
                reducer.run(groups, ctx)
                reducer.cleanup(ctx)
            except TaskFailure as exc:
                last_error = exc
                failures.append((attempt, node, exc.reason))
                counters = Counters()
                continue
            n_values = sum(len(v) for _, v in groups)
            counters.increment(STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_GROUPS, len(groups))
            counters.increment(STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_RECORDS, n_values)
            counters.increment(
                STANDARD.GROUP_TASK, STANDARD.REDUCE_OUTPUT_RECORDS, ctx.output_records
            )
            counters.increment(STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1)
            return ctx.output, counters, failures
        raise RuntimeError(
            f"task {task_id} failed {self.max_attempts} attempts"
        ) from last_error
