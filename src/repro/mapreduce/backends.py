"""Pluggable execution backends for the MapReduce runner.

The runner splits every task into two halves so that *where* a task runs
can never change *what* the job observes:

* a **pure attempt loop** (:func:`run_map_attempts` /
  :func:`run_reduce_attempts`) executes the user code with the retry
  budget.  Every fault decision it consults — scripted injector entries
  and the :class:`~repro.mapreduce.failures.ChaosSchedule`'s
  counter-hashed draws — is a pure function of ``(task_id, attempt)``,
  so the outcome is identical whether the loop runs inline, on a thread,
  or in a worker process;
* a **driver-side narrative replay** (in :mod:`repro.mapreduce.runner`)
  walks the outcomes in task order and reconstructs the node
  assignments, blacklist evolution, backoffs and retry penalties exactly
  as the original serial loop would have produced them.

Three backends implement the dispatch half:

``serial``
    Runs attempt loops inline.  The reference semantics.
``threads``
    A thread pool — concurrency for I/O-bound mappers, but GIL-bound for
    CPU work.
``processes``
    A persistent ``multiprocessing`` pool.  ``TraceArray`` chunk
    payloads travel through ``multiprocessing.shared_memory`` segments
    (workers reconstruct zero-copy NumPy views; the trace payload is
    never pickled), and distributed-cache entries are broadcast once per
    job via a versioned shared-memory segment instead of once per task.

Order-dependent fault modes (a probabilistic ``FailureInjector``'s
sequential RNG, or a chaos schedule with ``bad_nodes`` whose crash
decisions depend on node placement) cannot be computed worker-side
without changing results; the runner detects those and falls back to its
legacy in-driver loop (see ``JobRunner._uses_order_dependent_faults``).
"""

from __future__ import annotations

import pickle
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, resource_tracker
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cache import DistributedCache, FaultyCacheView
from repro.mapreduce.config import BACKENDS, MapReduceConfig
from repro.mapreduce.counters import Counters, STANDARD
from repro.mapreduce.failures import ChaosSchedule, TaskFailure
from repro.mapreduce.job import MapContext, ReduceContext
from repro.mapreduce.spill import (
    SpilledMapOutput,
    SpilledPartition,
    WorkerSpillSpec,
    as_groups,
    spill_map_output,
)
from repro.mapreduce.types import ArrayPayload, Chunk, concrete_payload

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "MapTaskRequest",
    "ReduceTaskRequest",
    "MapOutcome",
    "ReduceOutcome",
    "run_map_attempts",
    "run_reduce_attempts",
    "run_combiner",
]


# -- task requests and outcomes ---------------------------------------------


@dataclass
class MapTaskRequest:
    """Everything a map task's pure attempt loop needs."""

    task_id: str
    node: str  # planned node (context hint only; never a fault input)
    chunk: Chunk
    mapper: Callable[[], Any]
    combiner: Callable[[], Any] | None
    conf: Any
    cache: DistributedCache
    chaos: ChaosSchedule | None
    scripted: frozenset | None
    max_attempts: int
    #: When set (memory-budgeted runs), output larger than the budget is
    #: written to the spill directory *where the attempt ran* and the
    #: outcome carries a :class:`~repro.mapreduce.spill.SpilledMapOutput`
    #: handle instead of the pair list.
    spill: WorkerSpillSpec | None = None
    #: When set (a job with a declared aggregation on a pre-agg-enabled
    #: runner), the attempt loop folds the task's output into one
    #: aggregate envelope per key-group — the vectorized pre-aggregation
    #: that supersedes the object-level combiner — and the outcome's
    #: ``combined_output`` carries the envelope pairs.
    aggregation: Any | None = None


@dataclass
class ReduceTaskRequest:
    """Everything a reduce task's pure attempt loop needs.

    ``groups`` may be a :class:`~repro.mapreduce.spill.SpilledPartition`
    handle (external shuffle); the attempt loop loads it where it runs,
    so spilled reduce input crosses a process boundary as a path, not
    as data.
    """

    task_id: str
    groups: "list[tuple[Any, list[Any]]] | SpilledPartition"
    reducer: Callable[[], Any]
    conf: Any
    cache: DistributedCache
    chaos: ChaosSchedule | None
    scripted: frozenset | None
    max_attempts: int


@dataclass
class MapOutcome:
    """Result of a map task's attempt loop (node-free; the driver's
    narrative replay adds node assignments and backoffs)."""

    success: bool
    output: "list[tuple[Any, Any]] | SpilledMapOutput | None"
    counters: Counters | None
    output_records: int
    #: ``(attempt, reason, fault kind)`` per failed attempt, in order.
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    combined_output: list[tuple[Any, Any]] | None = None
    combine_counters: Counters | None = None


@dataclass
class ReduceOutcome:
    success: bool
    output: list[tuple[Any, Any]] | None
    counters: Counters | None
    failures: list[tuple[int, str, str]] = field(default_factory=list)


# -- the pure attempt loops --------------------------------------------------


def run_combiner(
    combiner_factory, conf, cache, task_output, task_id: str, node: str
) -> tuple[list[tuple[Any, Any]], Counters]:
    """Run the combiner over one map task's local output."""
    from repro.mapreduce.shuffle import group_sorted

    counters = Counters()
    ctx = ReduceContext(conf, counters, cache, f"{task_id}-combine", node)
    combiner = combiner_factory()
    groups = group_sorted(task_output)
    combiner.setup(ctx)
    combiner.run(groups, ctx)
    combiner.cleanup(ctx)
    counters.increment(
        STANDARD.GROUP_TASK, STANDARD.COMBINE_INPUT_RECORDS, len(task_output)
    )
    counters.increment(
        STANDARD.GROUP_TASK, STANDARD.COMBINE_OUTPUT_RECORDS, len(ctx.output)
    )
    return ctx.output, counters


def run_map_attempts(request: MapTaskRequest) -> MapOutcome:
    """Execute one map task's retry loop using only pure fault decisions.

    Mirrors the runner's legacy loop attempt for attempt: the same cache
    fault wrapping, the same injector-before-chaos precedence, the same
    counter increments on success — minus anything node-dependent, which
    the driver replays afterwards.
    """
    chunk = request.chunk
    failures: list[tuple[int, str, str]] = []
    for attempt in range(1, request.max_attempts + 1):
        counters = Counters()
        cache = request.cache
        if request.chaos is not None and request.chaos.cache_load_fails(
            request.task_id, attempt
        ):
            cache = FaultyCacheView(request.cache, request.task_id, attempt)
        ctx = MapContext(request.conf, counters, cache, request.task_id, request.node)
        mapper = request.mapper()
        try:
            if request.scripted and (request.task_id, attempt) in request.scripted:
                raise TaskFailure(request.task_id, attempt, "scripted failure")
            if request.chaos is not None:
                request.chaos.fail_attempt(request.task_id, attempt)
            mapper.setup(ctx)
            mapper.run(chunk, ctx)
            mapper.cleanup(ctx)
        except TaskFailure as exc:
            failures.append((attempt, exc.reason, exc.kind))
            continue
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.MAP_INPUT_RECORDS, chunk.n_records
        )
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_RECORDS, ctx.output_records
        )
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.MAP_OUTPUT_BYTES, ctx.output_nbytes
        )
        counters.increment(
            STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1
        )
        combined_output = combine_counters = None
        if request.aggregation is not None:
            # Vectorized pre-aggregation supersedes the object combiner:
            # one envelope per key-group replaces the task's raw pairs.
            from repro.mapreduce.aggregation import preaggregate

            combined_output, combine_counters = preaggregate(
                request.aggregation, ctx.output, request.node, request.task_id
            )
        elif request.combiner is not None:
            combined_output, combine_counters = run_combiner(
                request.combiner,
                request.conf,
                request.cache,
                ctx.output,
                request.task_id,
                request.node,
            )
        output: "list[tuple[Any, Any]] | SpilledMapOutput" = ctx.output
        if (
            request.spill is not None
            and ctx.output_nbytes > request.spill.threshold_bytes
        ):
            # Over-budget output spills where the attempt ran (in real
            # Hadoop, the tasktracker's local disk); the driver — and the
            # processes backend's IPC — only ever sees the handle.
            output = spill_map_output(
                request.spill, request.task_id, ctx.output, ctx.output_nbytes
            )
        return MapOutcome(
            True,
            output,
            counters,
            ctx.output_records,
            failures,
            combined_output,
            combine_counters,
        )
    return MapOutcome(False, None, None, 0, failures)


def run_reduce_attempts(request: ReduceTaskRequest) -> ReduceOutcome:
    """Execute one reduce task's retry loop using only pure fault
    decisions (the reduce twin of :func:`run_map_attempts`)."""
    failures: list[tuple[int, str, str]] = []
    groups = as_groups(request.groups)
    for attempt in range(1, request.max_attempts + 1):
        counters = Counters()
        ctx = ReduceContext(
            request.conf, counters, request.cache, request.task_id, ""
        )
        reducer = request.reducer()
        try:
            if request.scripted and (request.task_id, attempt) in request.scripted:
                raise TaskFailure(request.task_id, attempt, "scripted failure")
            if request.chaos is not None:
                request.chaos.fail_attempt(request.task_id, attempt)
            reducer.setup(ctx)
            reducer.run(groups, ctx)
            reducer.cleanup(ctx)
        except TaskFailure as exc:
            failures.append((attempt, exc.reason, exc.kind))
            continue
        n_values = sum(len(v) for _, v in groups)
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_GROUPS, len(groups)
        )
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.REDUCE_INPUT_RECORDS, n_values
        )
        counters.increment(
            STANDARD.GROUP_TASK, STANDARD.REDUCE_OUTPUT_RECORDS, ctx.output_records
        )
        counters.increment(
            STANDARD.GROUP_SCHEDULER, STANDARD.FAILED_TASKS, attempt - 1
        )
        return ReduceOutcome(True, ctx.output, counters, failures)
    return ReduceOutcome(False, None, None, failures)


# -- backends ----------------------------------------------------------------


class ExecutionBackend:
    """Dispatches pure attempt loops; subclasses choose the medium."""

    name = "base"

    def prepare_job(self, cache: DistributedCache) -> None:
        """Called once per job before the map phase (cache broadcast)."""

    def run_map_tasks(self, requests: list[MapTaskRequest]) -> list[MapOutcome]:
        raise NotImplementedError

    def run_reduce_tasks(
        self, requests: list[ReduceTaskRequest]
    ) -> list[ReduceOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and shared-memory segments."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference backend."""

    name = "serial"

    def run_map_tasks(self, requests):
        return [run_map_attempts(r) for r in requests]

    def run_reduce_tasks(self, requests):
        return [run_reduce_attempts(r) for r in requests]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution (shared address space, GIL-bound compute)."""

    name = "threads"

    def __init__(self, max_workers: int):
        self.max_workers = max(int(max_workers), 1)

    def run_map_tasks(self, requests):
        if len(requests) <= 1 or self.max_workers <= 1:
            return [run_map_attempts(r) for r in requests]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(run_map_attempts, requests))

    def run_reduce_tasks(self, requests):
        if len(requests) <= 1 or self.max_workers <= 1:
            return [run_reduce_attempts(r) for r in requests]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(run_reduce_attempts, requests))


# -- process backend ---------------------------------------------------------
#
# Worker-side globals.  Workers attach each shared-memory segment once and
# keep the mapping for the life of the pool; the distributed cache is
# unpickled once per broadcast version, not once per task.

_WORKER_SEGMENTS: dict[str, tuple[Any, np.ndarray]] = {}
_WORKER_CACHE: tuple[int, DistributedCache] = (0, DistributedCache())


def _untrack_shm(shm) -> None:
    """Stop the worker's resource tracker from owning the segment.

    On Python < 3.13 merely *attaching* registers the segment with the
    process's resource tracker, which would unlink (destroy) it when the
    worker exits — but the driver owns these segments.  That only
    applies to *spawned* workers, which run their own tracker; fork
    workers inherit the driver's tracker, where the attach-register is
    an idempotent set-add and the driver's own unlink performs the one
    unregister — unregistering here too would double-unregister and
    make the shared tracker log KeyErrors at interpreter exit.
    """
    if "fork" in get_all_start_methods():
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _attach_segment(name: str, n_traces: int) -> np.ndarray:
    entry = _WORKER_SEGMENTS.get(name)
    if entry is None:
        shm = shared_memory.SharedMemory(name=name)
        _untrack_shm(shm)
        from repro.geo.trace import _TRACE_DTYPE

        data = np.ndarray((n_traces,), dtype=_TRACE_DTYPE, buffer=shm.buf)
        entry = (shm, data)
        _WORKER_SEGMENTS[name] = entry
    return entry[1]


def _resolve_cache(token: tuple[int, str | None, int]) -> DistributedCache:
    global _WORKER_CACHE
    version, name, nbytes = token
    if version == 0 or name is None:
        return DistributedCache()
    if _WORKER_CACHE[0] != version:
        shm = shared_memory.SharedMemory(name=name)
        _untrack_shm(shm)
        try:
            entries = pickle.loads(bytes(shm.buf[:nbytes]))
        finally:
            shm.close()
        _WORKER_CACHE = (version, DistributedCache.from_snapshot(entries))
    return _WORKER_CACHE[1]


def _resolve_chunk(ref: tuple) -> Chunk:
    if ref[0] == "pickle":
        return ref[1]
    _, name, n_traces, users, record_bytes, offset, chunk_id, replicas = ref
    data = _attach_segment(name, n_traces)
    array = TraceArray(data, users)
    return Chunk(chunk_id, ArrayPayload(array, record_bytes, offset), replicas)


def _pool_run_map(message: tuple) -> MapOutcome:
    (task_id, node, chunk_ref, mapper, combiner, conf, chaos, scripted,
     max_attempts, cache_token, spill, aggregation) = message
    request = MapTaskRequest(
        task_id=task_id,
        node=node,
        chunk=_resolve_chunk(chunk_ref),
        mapper=mapper,
        combiner=combiner,
        conf=conf,
        cache=_resolve_cache(cache_token),
        chaos=chaos,
        scripted=scripted,
        max_attempts=max_attempts,
        spill=spill,
        aggregation=aggregation,
    )
    return run_map_attempts(request)


def _pool_run_reduce(message: tuple) -> ReduceOutcome:
    (task_id, groups, reducer, conf, chaos, scripted, max_attempts,
     cache_token) = message
    request = ReduceTaskRequest(
        task_id=task_id,
        groups=groups,
        reducer=reducer,
        conf=conf,
        cache=_resolve_cache(cache_token),
        chaos=chaos,
        scripted=scripted,
        max_attempts=max_attempts,
    )
    return run_reduce_attempts(request)


class _ProcessState:
    """Mutable resources a :class:`ProcessBackend` owns, separated out so
    a ``weakref.finalize`` can release them without referencing the
    backend itself."""

    def __init__(self) -> None:
        self.pool = None
        self.segments: dict[str, tuple] = {}  # chunk_id -> (shm, ref tuple)
        self.cache_shm = None


def _release_process_state(state: _ProcessState) -> None:
    if state.pool is not None:
        state.pool.terminate()
        state.pool.join()
        state.pool = None
    for shm, _ in state.segments.values():
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    state.segments.clear()
    if state.cache_shm is not None:
        try:
            state.cache_shm.close()
            state.cache_shm.unlink()
        except Exception:
            pass
        state.cache_shm = None


class ProcessBackend(ExecutionBackend):
    """Persistent process pool with shared-memory chunk transport.

    * Chunk payloads holding a :class:`TraceArray` are copied once into a
      named shared-memory segment keyed by ``chunk_id`` (chunk ids are
      unique for the life of an HDFS instance and payloads are
      immutable); workers rebuild zero-copy views, so iterative drivers
      like k-means ship each chunk across the process boundary exactly
      once no matter how many jobs read it.
    * :meth:`prepare_job` pickles the distributed cache into a versioned
      segment; workers deserialize it once per version — once per worker
      per job, not once per task.
    * The pool is forked lazily on first use and reused across jobs;
      :meth:`close` (or garbage collection, via ``weakref.finalize``)
      tears everything down and unlinks the segments.
    """

    name = "processes"

    def __init__(self, max_workers: int):
        self.max_workers = max(int(max_workers), 1)
        self._state = _ProcessState()
        self._cache_version = 0
        self._cache_token: tuple[int, str | None, int] = (0, None, 0)
        self._finalizer = weakref.finalize(
            self, _release_process_state, self._state
        )

    # -- resources --------------------------------------------------------
    def _ensure_pool(self):
        if self._state.pool is None:
            method = "fork" if "fork" in get_all_start_methods() else "spawn"
            self._state.pool = get_context(method).Pool(processes=self.max_workers)
        return self._state.pool

    def prepare_job(self, cache: DistributedCache) -> None:
        payload = pickle.dumps(cache.snapshot(), protocol=pickle.HIGHEST_PROTOCOL)
        if self._state.cache_shm is not None:
            try:
                self._state.cache_shm.close()
                self._state.cache_shm.unlink()
            except Exception:
                pass
            self._state.cache_shm = None
        self._cache_version += 1
        if len(cache) == 0:
            self._cache_token = (self._cache_version, None, 0)
            return
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        self._state.cache_shm = shm
        self._cache_token = (self._cache_version, shm.name, len(payload))

    def _chunk_ref(self, chunk: Chunk) -> tuple:
        # Paged stubs hold a loader bound to the driver's PayloadStore
        # (which refuses to pickle); materialize before crossing to a
        # worker — the shared-memory path below never pickles the data
        # anyway, and the pickle path needs a concrete chunk.
        payload = concrete_payload(chunk.payload)
        if not isinstance(payload, ArrayPayload):
            if payload is not chunk.payload:
                chunk = Chunk(chunk.chunk_id, payload, chunk.replicas)
            return ("pickle", chunk)
        entry = self._state.segments.get(chunk.chunk_id)
        if entry is None:
            array = payload.array
            nbytes = array.data_nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
            if nbytes:
                array.copy_data_into(shm.buf)
            base = (shm.name, len(array), array.users)
            entry = (shm, base)
            self._state.segments[chunk.chunk_id] = entry
        name, n_traces, users = entry[1]
        return (
            "shm",
            name,
            n_traces,
            users,
            payload.record_bytes,
            payload.offset,
            chunk.chunk_id,
            chunk.replicas,
        )

    # -- dispatch ---------------------------------------------------------
    def run_map_tasks(self, requests):
        if len(requests) <= 1 or self.max_workers <= 1:
            return [run_map_attempts(r) for r in requests]
        messages = [
            (
                r.task_id,
                r.node,
                self._chunk_ref(r.chunk),
                r.mapper,
                r.combiner,
                r.conf,
                r.chaos,
                r.scripted,
                r.max_attempts,
                self._cache_token,
                r.spill,
                r.aggregation,
            )
            for r in requests
        ]
        pool = self._ensure_pool()
        return pool.map(_pool_run_map, messages, chunksize=1)

    def run_reduce_tasks(self, requests):
        if len(requests) <= 1 or self.max_workers <= 1:
            return [run_reduce_attempts(r) for r in requests]
        messages = [
            (
                r.task_id,
                r.groups,
                r.reducer,
                r.conf,
                r.chaos,
                r.scripted,
                r.max_attempts,
                self._cache_token,
            )
            for r in requests
        ]
        pool = self._ensure_pool()
        return pool.map(_pool_run_reduce, messages, chunksize=1)

    def close(self) -> None:
        self._finalizer()


def create_backend(config: MapReduceConfig, n_workers: int) -> ExecutionBackend:
    """Build the backend named by ``config.backend``.

    ``n_workers`` is the resolved pool size (the runner applies the
    backend-specific default when ``config.max_workers`` is ``None``).
    """
    if config.backend == "serial":
        return SerialBackend()
    if config.backend == "threads":
        return ThreadBackend(n_workers)
    if config.backend == "processes":
        return ProcessBackend(n_workers)
    raise ValueError(
        f"unknown executor backend {config.backend!r}; "
        f"choose one of {', '.join(BACKENDS)}"
    )
