"""Simulated HDFS: chunked files, namenode metadata, rack-aware replicas.

Files are split into chunks of at most ``chunk_size`` modelled bytes
(64 MB by default, parametrable — the paper sweeps 32 vs 64 MB).  Replica
placement follows the policy described in Section III: the first copy is
written "locally" (on the writer's datanode), the second on a datanode in
the same rack, and the third on a datanode of a different rack chosen at
random.  The namenode keeps the file → chunks and chunk → datanodes maps
that the jobtracker later uses for locality-aware scheduling, and handles
datanode loss by serving the surviving replicas.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.geo.trace import TraceArray
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.spill import PayloadStore, SpillDirectory, SpillStats
from repro.mapreduce.types import (
    ArrayPayload,
    Chunk,
    DEFAULT_RECORD_BYTES,
    RecordPayload,
    concrete_payload,
    estimate_nbytes,
)

__all__ = ["SimulatedHDFS", "MB"]

MB = 1024 * 1024


class SimulatedHDFS:
    """An in-memory stand-in for the Hadoop Distributed File System."""

    def __init__(
        self,
        cluster: ClusterSpec,
        chunk_size: int = 64 * MB,
        replication: int = 3,
        seed: int = 0,
        memory_budget_mb: float | None = None,
        spill_root: str | None = None,
    ):
        """``memory_budget_mb`` caps the chunk payloads kept resident in
        RAM: beyond it, least-recently-used payloads page out to a spill
        directory (``spill_root``, or a private temp dir) and rehydrate
        transparently on read — the disk-backed chunk store that lets a
        file exceed this machine's memory.  ``None`` keeps everything
        resident, the historical behaviour."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        self.cluster = cluster
        self.chunk_size = chunk_size
        self.replication = replication
        self.memory_budget_mb = memory_budget_mb
        self._rng = np.random.default_rng(seed)
        self._files: dict[str, list[Chunk]] = {}
        self._versions: dict[str, int] = {}
        self._version_counter = itertools.count(1)
        self._dead_nodes: set[str] = set()
        self._chunk_counter = itertools.count()
        self._store: PayloadStore | None = None
        if memory_budget_mb is not None:
            self._store = PayloadStore(
                int(memory_budget_mb * MB), SpillDirectory(spill_root)
            )

    @property
    def spill_stats(self) -> SpillStats | None:
        """Paging counters of the budgeted chunk store (``None`` when
        running without a memory budget)."""
        return self._store.stats if self._store is not None else None

    # -- replica placement -------------------------------------------------
    def _alive_datanodes(self) -> list[str]:
        return [
            n.name
            for n in self.cluster.datanodes()
            if n.name not in self._dead_nodes
        ]

    def _place_replicas(self, writer: str | None) -> tuple[str, ...]:
        """Rack-aware replica placement (local / same-rack / other-rack)."""
        alive = self._alive_datanodes()
        if not alive:
            raise RuntimeError("no alive datanodes to place replicas on")
        if writer is None or writer not in alive:
            writer = alive[int(self._rng.integers(0, len(alive)))]
        placed = [writer]
        writer_rack = self.cluster.rack_of(writer)
        same_rack = [n for n in alive if n != writer and self.cluster.rack_of(n) == writer_rack]
        other_rack = [n for n in alive if self.cluster.rack_of(n) != writer_rack]
        if len(placed) < self.replication and same_rack:
            placed.append(same_rack[int(self._rng.integers(0, len(same_rack)))])
        if len(placed) < self.replication and other_rack:
            placed.append(other_rack[int(self._rng.integers(0, len(other_rack)))])
        # Fill any remaining replicas from whoever is left, at random.
        remaining = [n for n in alive if n not in placed]
        while len(placed) < self.replication and remaining:
            pick = int(self._rng.integers(0, len(remaining)))
            placed.append(remaining.pop(pick))
        return tuple(placed)

    # -- writes ------------------------------------------------------------
    def _new_chunk(self, payload: RecordPayload | ArrayPayload, writer: str | None) -> Chunk:
        cid = f"chunk-{next(self._chunk_counter):06d}"
        if self._store is not None:
            # Budgeted mode: the store owns residency; the chunk carries a
            # stub that answers metadata from hints and pages data in on
            # demand.  Registering may immediately page older payloads out.
            self._store.put(cid, payload)
            payload = self._store.paged_stub(cid, payload)
        return Chunk(cid, payload, replicas=self._place_replicas(writer))

    def put_records(
        self,
        path: str,
        records: Iterable[tuple[Any, Any]],
        writer: str | None = None,
        record_bytes: int | None = None,
    ) -> None:
        """Write key/value records as a chunked file.

        ``record_bytes`` overrides per-record size estimation with a flat
        modelled size (useful to control chunking deterministically).
        """
        self._check_absent(path)
        chunks: list[Chunk] = []
        current: list[tuple[Any, Any]] = []
        used = 0
        for key, value in records:
            size = record_bytes if record_bytes is not None else (
                estimate_nbytes(key) + estimate_nbytes(value)
            )
            if current and used + size > self.chunk_size:
                chunks.append(self._new_chunk(RecordPayload(current), writer))
                current, used = [], 0
            current.append((key, value))
            used += size
        if current:
            chunks.append(self._new_chunk(RecordPayload(current), writer))
        self._commit(path, chunks)

    def put_trace_array(
        self,
        path: str,
        array: TraceArray,
        writer: str | None = None,
        record_bytes: int = DEFAULT_RECORD_BYTES,
    ) -> None:
        """Write a columnar trace array, chunked by modelled bytes.

        With the default 64-byte record model, 64 MB chunks hold ~1 M
        traces — matching the paper's 128 MB / 2,033,686-trace dataset.
        """
        self._check_absent(path)
        per_chunk = max(1, self.chunk_size // record_bytes)
        chunks = []
        for start in range(0, max(len(array), 1), per_chunk):
            piece = array[start : start + per_chunk]
            if len(piece) == 0 and start > 0:
                break
            chunks.append(
                self._new_chunk(ArrayPayload(piece, record_bytes, offset=start), writer)
            )
        self._commit(path, chunks)

    def put_trace_stream(
        self,
        path: str,
        arrays: Iterable[TraceArray],
        writer: str | None = None,
        record_bytes: int = DEFAULT_RECORD_BYTES,
    ) -> int:
        """Write a *stream* of trace-array pieces as one chunked file.

        The out-of-core ingestion path: pieces (e.g. one PLT trajectory
        each, from :func:`repro.geo.geolife.stream_geolife_trails`) are
        re-chunked to ``chunk_size`` as they arrive, and under a memory
        budget each completed chunk can page straight out to disk — so
        neither the corpus nor more than ~one chunk of it is ever
        resident.  Chunk boundaries and offsets match what
        :meth:`put_trace_array` would produce for the concatenated
        stream.  Returns the number of traces written.
        """
        self._check_absent(path)
        per_chunk = max(1, self.chunk_size // record_bytes)
        chunks: list[Chunk] = []
        pending: list[TraceArray] = []
        pending_rows = 0
        offset = 0

        def cut(piece_rows: int) -> int:
            nonlocal pending, pending_rows, offset
            merged = TraceArray.concatenate(pending)
            start = 0
            while len(merged) - start >= piece_rows:
                # Copy the slice so the chunk owns its rows — a view would
                # pin the whole merged buffer and defeat paging.
                piece = merged[start : start + piece_rows].compact()
                chunks.append(
                    self._new_chunk(
                        ArrayPayload(piece, record_bytes, offset=offset), writer
                    )
                )
                offset += len(piece)
                start += piece_rows
            pending = [merged[start:].compact()] if start < len(merged) else []
            pending_rows = len(merged) - start
            return start

        for array in arrays:
            if len(array) == 0:
                continue
            pending.append(array)
            pending_rows += len(array)
            if pending_rows >= per_chunk:
                cut(per_chunk)
        if pending_rows or not chunks:
            merged = TraceArray.concatenate(pending) if pending else TraceArray.empty()
            chunks.append(
                self._new_chunk(
                    ArrayPayload(merged, record_bytes, offset=offset), writer
                )
            )
            offset += len(merged)
        self._commit(path, chunks)
        return offset

    def put_chunks(self, path: str, payloads: Sequence[RecordPayload | ArrayPayload], writer: str | None = None) -> None:
        """Write pre-chunked payloads (used by the runner for job output)."""
        self._check_absent(path)
        self._commit(path, [self._new_chunk(p, writer) for p in payloads])

    def _check_absent(self, path: str) -> None:
        if path in self._files:
            raise FileExistsError(f"HDFS path already exists: {path}")

    def _commit(self, path: str, chunks: list[Chunk]) -> None:
        """Install a file's chunks and stamp its namenode version."""
        self._files[path] = chunks
        self._versions[path] = next(self._version_counter)

    # -- reads -------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def ls(self) -> list[str]:
        return sorted(self._files)

    def chunks(self, path: str) -> list[Chunk]:
        """Readable chunks of a file; raises if any chunk lost all replicas."""
        if path not in self._files:
            raise FileNotFoundError(f"HDFS path not found: {path}")
        out = []
        for chunk in self._files[path]:
            alive = tuple(r for r in chunk.replicas if r not in self._dead_nodes)
            if not alive:
                raise IOError(
                    f"chunk {chunk.chunk_id} of {path} lost all replicas"
                )
            out.append(Chunk(chunk.chunk_id, chunk.payload, alive))
        return out

    def read_records(self, path: str) -> list[tuple[Any, Any]]:
        """All records of a file, chunk order preserved."""
        return [rec for chunk in self.chunks(path) for rec in chunk.records()]

    def iter_records(self, path: str) -> Iterator[tuple[Any, Any]]:
        """Stream a file's records chunk by chunk.

        Under a memory budget each chunk rehydrates only while it is
        being iterated, so a full-file scan stays within ~one chunk of
        resident memory (the streaming read twin of
        :meth:`put_trace_stream`)."""
        for chunk in self.chunks(path):
            yield from chunk.records()

    def read_trace_array(self, path: str) -> TraceArray:
        """All traces of a file as one columnar array."""
        arrays = [chunk.trace_array() for chunk in self.chunks(path)]
        return TraceArray.concatenate(arrays)

    def file_nbytes(self, path: str) -> int:
        return sum(c.nbytes for c in self.chunks(path))

    def file_records(self, path: str) -> int:
        return sum(c.n_records for c in self.chunks(path))

    def version(self, path: str) -> int:
        """The file's namenode mutation stamp.

        A globally monotonic counter assigned at every write: two paths
        (or the same path across delete/re-create cycles) share a version
        only if they are literally the same committed write.  This is the
        "dataset version" half of the service-layer result-cache key — a
        job resubmitted against a rewritten input must miss.
        """
        if path not in self._files:
            raise FileNotFoundError(f"HDFS path not found: {path}")
        return self._versions[path]

    # -- mutation ------------------------------------------------------------
    def delete(self, path: str, missing_ok: bool = False) -> None:
        if path in self._files:
            del self._files[path]
            del self._versions[path]
        elif not missing_ok:
            raise FileNotFoundError(f"HDFS path not found: {path}")

    def rename(self, src: str, dst: str) -> None:
        if src not in self._files:
            raise FileNotFoundError(f"HDFS path not found: {src}")
        self._check_absent(dst)
        self._files[dst] = self._files.pop(src)
        self._versions[dst] = self._versions.pop(src)

    def copy(self, src: str, dst: str, writer: str | None = None) -> int:
        """Server-side copy: clone ``src``'s chunks under a new path.

        Chunk boundaries and payload contents are preserved exactly (the
        result cache relies on a cache-hit output being byte-identical to
        the original job's output); chunk ids and replica placements are
        fresh, like any other write.  Returns the modelled bytes copied.
        Payloads are materialized one chunk at a time, so budgeted
        deployments stay within ~one chunk of extra residency.
        """
        source = self.chunks(src)
        self._check_absent(dst)
        chunks = [
            self._new_chunk(concrete_payload(c.payload), writer) for c in source
        ]
        self._commit(dst, chunks)
        return sum(c.nbytes for c in chunks)

    # -- failures ------------------------------------------------------------
    def kill_datanode(self, node_name: str) -> None:
        """Mark a datanode dead; its replicas become unreadable."""
        if node_name not in {n.name for n in self.cluster.datanodes()}:
            raise KeyError(f"not a datanode: {node_name}")
        self._dead_nodes.add(node_name)

    def heal(self) -> int:
        """Re-replicate under-replicated chunks onto alive datanodes.

        Models the namenode's background re-replication after datanode
        loss: every chunk with fewer than ``replication`` alive replicas
        (but at least one) gains copies on alive nodes, preferring nodes
        on a different rack than the surviving replicas.  Returns the
        number of new replicas created; chunks with zero alive replicas
        are left as-is (data loss — surfaced on the next read).
        """
        return len(self.heal_report())

    def heal_report(self) -> list[tuple[str, str, int]]:
        """:meth:`heal`, but returns one ``(chunk_id, node, nbytes)`` per
        new replica — the detail the chaos recovery path charges to the
        cost model and emits as ``replica_healed`` events."""
        alive = set(self._alive_datanodes())
        created: list[tuple[str, str, int]] = []
        for path, chunks in self._files.items():
            for i, chunk in enumerate(chunks):
                surviving = [r for r in chunk.replicas if r in alive]
                if not surviving or len(surviving) >= self.replication:
                    continue
                surviving_racks = {self.cluster.rack_of(r) for r in surviving}
                candidates = sorted(
                    alive - set(surviving),
                    key=lambda n: (self.cluster.rack_of(n) in surviving_racks, n),
                )
                while len(surviving) < self.replication and candidates:
                    pick = candidates.pop(0)
                    surviving.append(pick)
                    created.append((chunk.chunk_id, pick, chunk.nbytes))
                chunks[i] = Chunk(chunk.chunk_id, chunk.payload, tuple(surviving))
        return created

    def revive_datanode(self, node_name: str) -> None:
        self._dead_nodes.discard(node_name)

    @property
    def dead_nodes(self) -> frozenset[str]:
        return frozenset(self._dead_nodes)

    def replica_report(self, path: str) -> dict[str, tuple[str, ...]]:
        """chunk_id -> replica nodes, for replication-policy tests."""
        if path not in self._files:
            raise FileNotFoundError(f"HDFS path not found: {path}")
        return {c.chunk_id: c.replicas for c in self._files[path]}
